"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so legacy
``pip install -e .`` works in environments without the ``wheel``
package (PEP 660 editable builds need it, the legacy develop path
does not).
"""

from setuptools import setup

setup()
