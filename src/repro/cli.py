"""Command-line interface.

Regenerate any of the paper's tables/figures::

    repro fig1 --scale quick
    repro table2 --scale full --seed 7
    repro list

or run a one-off broadcast and print its profile::

    repro broadcast --algo AB --dims 8x8x8 --source 3,4,5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.comparison import compare_algorithms
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import EventDrivenExecutor
from repro.core.registry import algorithm_names, get_algorithm
from repro.experiments.reporting import format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh

__all__ = ["main"]


def _parse_dims(text: str):
    try:
        return tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad dims {text!r}; use e.g. 8x8x8")


def _parse_coord(text: str):
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad coordinate {text!r}; use e.g. 3,4,5")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Performance of Broadcast Algorithms in"
            " Interconnection Networks' (Al-Dubai & Ould-Khaoua, ICPP 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for experiment_id in EXPERIMENTS:
        p = sub.add_parser(experiment_id, help=f"regenerate {experiment_id}")
        p.add_argument("--scale", default="quick", choices=["smoke", "quick", "full"])
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--out",
            default=None,
            metavar="FILE",
            help="also save the rows to FILE (.json or .csv)",
        )

    b = sub.add_parser("broadcast", help="run one broadcast and print stats")
    b.add_argument("--algo", default="DB", choices=algorithm_names())
    b.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    b.add_argument("--source", type=_parse_coord, default=None)
    b.add_argument("--flits", type=int, default=100)

    c = sub.add_parser("compare", help="analytic comparison of all algorithms")
    c.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    c.add_argument("--flits", type=int, default=100)
    return parser


def _cmd_broadcast(args) -> int:
    mesh = Mesh(args.dims)
    cls = get_algorithm(args.algo)
    algorithm = cls(mesh)
    source = args.source or tuple(d // 2 for d in args.dims)
    schedule = algorithm.schedule(source)
    network = NetworkSimulator(
        mesh, NetworkConfig(ports_per_node=algorithm.ports_required)
    )
    routing = (
        AdaptiveBroadcast.make_routing(mesh) if algorithm.adaptive else None
    )
    outcome = EventDrivenExecutor(network, adaptive_routing=routing).execute(
        schedule, args.flits
    )
    print(
        f"{args.algo} broadcast on {'x'.join(map(str, args.dims))} from"
        f" {source} (L={args.flits} flits)"
    )
    print(f"  steps:            {schedule.num_steps}")
    print(f"  worms launched:   {schedule.total_sends()}")
    print(f"  delivered:        {outcome.delivered_count} nodes")
    print(f"  network latency:  {outcome.network_latency:.3f} us")
    print(f"  mean latency:     {outcome.mean_latency:.3f} us")
    print(f"  CV of arrivals:   {outcome.coefficient_of_variation:.4f}")
    return 0


def _cmd_compare(args) -> int:
    rows = [r.as_dict() for r in compare_algorithms(args.dims, args.flits)]
    print(format_table(rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:", " ".join(sorted(EXPERIMENTS)))
        return 0
    if args.command == "broadcast":
        return _cmd_broadcast(args)
    if args.command == "compare":
        return _cmd_compare(args)
    rows, text = run_experiment(args.command, args.scale, args.seed)
    print(text)
    if getattr(args, "out", None):
        from repro.experiments.export import save_rows

        path = save_rows(rows, args.out)
        print(f"\nrows saved to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
