"""Command-line interface.

Regenerate any of the paper's tables/figures::

    repro fig1 --scale quick
    repro table2 --scale full --seed 7 --workers 8
    repro list

run a parallel, resumable campaign (results land in a pluggable store
— JSONL, SQLite or a lease-arbitrated shared directory — and a re-run
skips every already-completed unit)::

    repro campaign run fig4 --scale full --workers 8 --schedule adaptive
    repro campaign run fig4 --scale full --store-backend sqlite
    repro campaign status fig4 --scale full
    repro campaign aggregate fig4 --scale full --out fig4.csv

shard the heavy units themselves (traffic points fan out into K
independent, mergeable replications; broadcast cells slice their
source axis — so even a single slow unit spreads over the worker
fleet, and ``auto`` lets the fitted cost model pick each unit's
fan-out; status reports per-unit shard progress)::

    repro campaign run fig4 --scale full --shards 8 --workers 8
    repro campaign status fig4 --scale full --shards 8
    repro campaign run fig1 --scale full --shards auto --workers 8

serve a store over HTTP so a fleet of hosts sharing nothing but a URL
drains one campaign (claim/heartbeat/append become API calls with
bounded retry and idempotent appends)::

    repro campaign serve --store campaigns/fig4-full-s0.sqlite --port 8931
    repro campaign run fig4 --scale full --workers 8 \
        --store http://coordinator:8931            # any number of hosts
    repro campaign status fig4 --scale full --store http://coordinator:8931

or run a one-off broadcast and print its profile::

    repro broadcast --algo AB --dims 8x8x8 --source 3,4,5

See ``docs/campaigns.md`` for store backends, scheduling policies and
the multi-host lease protocol.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.comparison import compare_algorithms
from repro.campaigns.aggregate import aggregate, failed_records
from repro.campaigns.pool import SCHEDULES, TooManyFailuresError, run_campaign
from repro.campaigns.remote import (
    DEFAULT_DEDUP_CAP,
    DEFAULT_PORT,
    StoreUnreachableError,
)
from repro.campaigns.store import (
    BACKENDS,
    CampaignStore,
    default_store_path,
    open_store,
)
from repro.campaigns.units import ENGINES
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import EventDrivenExecutor
from repro.core.registry import algorithm_names, get_algorithm
from repro.experiments.reporting import format_table
from repro.experiments.runner import EXPERIMENTS, campaign_for, run_experiment
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh
from repro.obs.trace import (
    export_chrome_trace,
    read_trace_dir,
    summarize_trace,
    trace_dir_for,
)
from repro.service.estimator import DEFAULT_SERVICE_PORT

__all__ = ["main"]

CAMPAIGN_HELP = "run experiment campaigns (parallel, resumable)"


def _parse_dims(text: str):
    try:
        return tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad dims {text!r}; use e.g. 8x8x8")


def _parse_coord(text: str):
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad coordinate {text!r}; use e.g. 3,4,5")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive count, got {text!r}")
    return value


def _shards_arg(text: str):
    """``--shards`` value: a positive count or the literal ``auto``."""
    if text.strip().lower() == "auto":
        return "auto"
    return _positive_int(text)


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        )
    return value


def _add_experiment_options(
    parser: argparse.ArgumentParser, workers: bool = True
) -> None:
    parser.add_argument(
        "--scale", default="quick", choices=["smoke", "quick", "full"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards",
        type=_shards_arg,
        default=1,
        metavar="K",
        help=(
            "split each heavy unit into K mergeable sub-units so workers"
            " can parallelise inside it: traffic points (fig3/fig4) run K"
            " independent replications, broadcast cells slice their"
            " source axis; 'auto' picks per-unit fan-outs from the fitted"
            " cost model; 1 = the original per-unit protocol"
        ),
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=list(ENGINES),
        help=(
            "broadcast execution engine: 'batched' advances a cell's"
            " sources together through the flat-array sweep (falling"
            " back per source where exactness cannot be proved),"
            " 'event' forces the per-source event-driven path, 'auto'"
            " (default) batches whenever eligible; results are"
            " bit-identical either way"
        ),
    )
    parser.add_argument(
        "--store-backend",
        default=None,
        choices=sorted(BACKENDS) + ["http"],
        help=(
            "campaign store backend (default: inferred from --store's"
            " suffix or URL scheme, else jsonl; http needs --store"
            " http://host:port pointing at `repro campaign serve`)"
        ),
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "spool span traces of the run (campaign/unit/merge spans,"
            " lease and cache events, store op latencies) as per-process"
            " JSONL files into DIR (default: the <store>.traces directory"
            " next to the campaign store); export with"
            " `repro campaign trace`"
        ),
    )
    parser.add_argument(
        "--retries",
        type=_nonneg_int,
        default=2,
        metavar="N",
        help=(
            "re-execute a failing unit up to N times with exponential"
            " backoff before quarantining it via its persisted failure"
            " record (default 2; racing pools share one budget through"
            " the store)"
        ),
    )
    parser.add_argument(
        "--max-failures",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help=(
            "abort the run once more than N units are quarantined"
            " (default: never abort — healthy units all complete and"
            " failed cells are reported; 0 = strict fail-fast on the"
            " first error, the pre-failure-domain behaviour)"
        ),
    )
    if workers:
        parser.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            metavar="N",
            help="shard simulation units over N worker processes",
        )
        parser.add_argument(
            "--schedule",
            default="fifo",
            choices=SCHEDULES,
            help=(
                "unit dispatch order: declaration order (fifo) or"
                " largest-estimated-cost first (adaptive)"
            ),
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Performance of Broadcast Algorithms in"
            " Interconnection Networks' (Al-Dubai & Ould-Khaoua, ICPP 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for experiment_id, help_text in EXPERIMENTS.items():
        p = sub.add_parser(experiment_id, help=help_text)
        _add_experiment_options(p)
        p.add_argument(
            "--store",
            default=None,
            metavar="PATH",
            help=(
                "also persist/reuse unit results in a campaign store"
                " (resumable; see --store-backend)"
            ),
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="FILE",
            help="also save the rows to FILE (.json or .csv)",
        )

    camp = sub.add_parser("campaign", help=CAMPAIGN_HELP)
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)
    for action, help_text in (
        ("run", "execute a campaign's pending units (resumes from --store)"),
        ("status", "show completed/pending unit counts"),
        ("aggregate", "rebuild result rows from a (complete) store"),
        (
            "fit-cost",
            "fit the adaptive scheduler's cost model from stored timings",
        ),
        (
            "trace",
            "merge a traced run's span spools and export Perfetto JSON",
        ),
        (
            "retry-failed",
            "clear quarantined/failed unit records so the next run"
            " retries them with a fresh budget",
        ),
    ):
        cp = camp_sub.add_parser(action, help=help_text)
        cp.add_argument("experiment", choices=sorted(EXPERIMENTS))
        _add_experiment_options(cp, workers=(action == "run"))
        if action == "status":
            cp.add_argument(
                "--json",
                action="store_true",
                dest="as_json",
                help=(
                    "machine-readable status: units by state, per-unit"
                    " elapsed time, shard progress and trace availability"
                ),
            )
        cp.add_argument(
            "--store",
            default=None,
            metavar="PATH",
            help=(
                "unit-result store: a .jsonl/.sqlite file or a shared"
                " directory (default: campaigns/<name>.<backend>)"
            ),
        )
        if action == "run":
            cp.add_argument(
                "--cache",
                action="append",
                default=None,
                metavar="PATH",
                help=(
                    "extra read-only store(s) to reuse matching unit"
                    " results from (repeatable); sibling-scale stores"
                    " in the campaigns/ directory are found"
                    " automatically"
                ),
            )
        if action in ("run", "aggregate"):
            cp.add_argument(
                "--out",
                default=None,
                metavar="FILE",
                help="also save the aggregated rows to FILE (.json or .csv)",
            )
        if action == "fit-cost":
            cp.add_argument(
                "--out",
                default=None,
                metavar="FILE",
                help=(
                    "where to write the fitted model (default:"
                    " campaigns/cost_model.json, which --schedule"
                    " adaptive picks up automatically)"
                ),
            )
        if action == "trace":
            cp.add_argument(
                "--out",
                default=None,
                metavar="FILE",
                help=(
                    "where to write the Chrome-trace-event JSON (default:"
                    " <trace-dir>/trace.json); load it in Perfetto"
                    " (https://ui.perfetto.dev) or chrome://tracing"
                ),
            )

    sv = camp_sub.add_parser(
        "serve",
        help=(
            "serve a campaign store over HTTP so remote pools"
            " (--store http://host:port) can drain it"
        ),
    )
    sv.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="the local backing store to serve (.jsonl/.sqlite/directory)",
    )
    sv.add_argument(
        "--store-backend",
        default=None,
        choices=sorted(BACKENDS),
        help="backing store backend (default: inferred from --store)",
    )
    sv.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (0.0.0.0 to accept remote pools)",
    )
    sv.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"port to listen on (default {DEFAULT_PORT}; 0 = ephemeral)",
    )
    sv.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "also spool the coordinator's rpc.* events (claims granted,"
            " appends deduped) as a server-<pid>.jsonl file into DIR"
            " (default: the backing store's trace directory)"
        ),
    )
    sv.add_argument(
        "--dedup-cap",
        type=_positive_int,
        default=DEFAULT_DEDUP_CAP,
        metavar="N",
        help=(
            "how many recent append idempotency keys to remember for"
            " duplicate suppression (evicted oldest-first; bounds the"
            f" coordinator's memory under long uptimes; default"
            f" {DEFAULT_DEDUP_CAP})"
        ),
    )

    srv = sub.add_parser(
        "serve",
        help=(
            "run the live estimator: answer latency queries from a"
            " campaign store, simulating misses on demand"
        ),
    )
    srv.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help=(
            "the campaign store answering queries"
            " (.jsonl/.sqlite/directory, or http://host:port of a"
            " `repro campaign serve` coordinator)"
        ),
    )
    srv.add_argument(
        "--store-backend",
        default=None,
        choices=sorted(BACKENDS) + ["http"],
        help="store backend (default: inferred from --store)",
    )
    srv.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (0.0.0.0 to accept remote queries)",
    )
    srv.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=(
            f"port to listen on (default {DEFAULT_SERVICE_PORT};"
            " 0 = ephemeral)"
        ),
    )
    srv.add_argument(
        "--engine",
        default="auto",
        choices=list(ENGINES),
        help=(
            "broadcast execution engine for miss simulations (same"
            " choices as campaign runs; results are bit-identical"
            " either way)"
        ),
    )
    srv.add_argument(
        "--retries",
        type=_nonneg_int,
        default=2,
        metavar="N",
        help=(
            "retry budget for each miss simulation before its failure"
            " record quarantines the unit (default 2)"
        ),
    )
    srv.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "spool the service's svc.* spans (queries, hits, enqueues,"
            " miss simulations, the drain) as a service-<pid>.jsonl"
            " file into DIR (default: the store's trace directory)"
        ),
    )

    b = sub.add_parser("broadcast", help="run one broadcast and print stats")
    b.add_argument("--algo", default="DB", choices=algorithm_names())
    b.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    b.add_argument("--source", type=_parse_coord, default=None)
    b.add_argument("--flits", type=int, default=100)
    b.add_argument(
        "--profile",
        action="store_true",
        help=(
            "also print the kernel's profiling counters (events by"
            " category, heap high-water mark, pool hit rates, channel"
            " wait time, wormhole batching ratio)"
        ),
    )

    c = sub.add_parser("compare", help="analytic comparison of all algorithms")
    c.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    c.add_argument("--flits", type=int, default=100)
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for experiment_id in sorted(EXPERIMENTS):
        print(f"  {experiment_id:<18s} {EXPERIMENTS[experiment_id]}")
    print(f"  {'campaign':<18s} {CAMPAIGN_HELP}")
    return 0


def _cmd_broadcast(args) -> int:
    mesh = Mesh(args.dims)
    cls = get_algorithm(args.algo)
    algorithm = cls(mesh)
    source = args.source or tuple(d // 2 for d in args.dims)
    schedule = algorithm.schedule(source)
    network = NetworkSimulator(
        mesh, NetworkConfig(ports_per_node=algorithm.ports_required)
    )
    routing = (
        AdaptiveBroadcast.make_routing(mesh) if algorithm.adaptive else None
    )
    outcome = EventDrivenExecutor(network, adaptive_routing=routing).execute(
        schedule, args.flits
    )
    print(
        f"{args.algo} broadcast on {'x'.join(map(str, args.dims))} from"
        f" {source} (L={args.flits} flits)"
    )
    print(f"  steps:            {schedule.num_steps}")
    print(f"  worms launched:   {schedule.total_sends()}")
    print(f"  delivered:        {outcome.delivered_count} nodes")
    print(f"  network latency:  {outcome.network_latency:.3f} us")
    print(f"  mean latency:     {outcome.mean_latency:.3f} us")
    print(f"  CV of arrivals:   {outcome.coefficient_of_variation:.4f}")
    if args.profile:
        prof = network.env.profile()
        print("kernel profile:")
        print(
            f"  events dispatched: {prof['dispatched']}"
            f" (holds {prof['holds']}, timeouts {prof['timeouts']},"
            f" other {prof['events']})"
        )
        print(f"  heap peak:         {prof['heap_peak']}")
        print(
            f"  timeout pool:      {prof['timeout_pool_hit_rate']:.1%} hit"
            f" ({prof['timeout_pool_hits']} hits,"
            f" {prof['timeout_pool_misses']} misses)"
        )
        print(
            f"  channel waits:     {prof['channel_waits']}"
            f" (mean {prof['mean_channel_wait_s']:.4f} us simulated)"
        )
        print(
            f"  wormhole hops:     {prof['worm_batched_ratio']:.1%} batched"
            f" ({prof['worm_hops_batched']} batched,"
            f" {prof['worm_hops_slow']} per-hop)"
        )
    return 0


def _cmd_compare(args) -> int:
    rows = [r.as_dict() for r in compare_algorithms(args.dims, args.flits)]
    print(format_table(rows))
    return 0


def _save(rows, out: Optional[str]) -> None:
    if out:
        from repro.experiments.export import save_rows

        path = save_rows(rows, out)
        print(f"\nrows saved to {path}")


def _campaign_store(args, spec) -> CampaignStore:
    """Resolve --store/--store-backend to a concrete store.

    An explicit path or URL wins (backend inferred from its suffix /
    scheme unless --store-backend pins it); otherwise the backend's
    conventional ``campaigns/<name>.<ext>`` location is used (jsonl by
    default).  The http backend has no conventional location — it
    always needs the coordinator's URL.
    """
    if args.store:
        return open_store(args.store, args.store_backend)
    backend = args.store_backend or "jsonl"
    if backend == "http":
        raise SystemExit(
            "repro: --store-backend http needs the coordinator's URL:"
            " --store http://host:port (start one with"
            " `repro campaign serve`)"
        )
    return open_store(default_store_path(spec.name, backend), backend)


def _trace_dir(args, spec, store: Optional[CampaignStore]) -> Optional[Path]:
    """Resolve ``--trace[=DIR]`` for an executing command.

    ``None`` means tracing is off.  A bare ``--trace`` spools next to
    the campaign store (``<store>.traces``) or, with no store, into
    the default campaigns/ layout.
    """
    trace = getattr(args, "trace", None)
    if trace is None:
        return None
    if trace:
        return Path(trace)
    if store is not None:
        return trace_dir_for(store)
    return default_store_path(spec.name, "jsonl").with_suffix(".traces")


def _status_trace_dir(args, store: CampaignStore) -> Path:
    """Where ``campaign status``/``trace`` look for spooled traces."""
    trace = getattr(args, "trace", None)
    if trace:
        return Path(trace)
    return trace_dir_for(store)


def _campaign_caches(args, spec) -> List[CampaignStore]:
    """Cache stores for ``campaign run``: explicit --cache paths plus
    any sibling-scale store of the same experiment/seed/backend found
    in the default campaigns/ layout (so a ``full`` run reuses every
    overlapping unit a ``quick`` or ``smoke`` run already computed)."""
    caches = [open_store(path) for path in (getattr(args, "cache", None) or [])]
    if not args.store:  # sibling discovery needs the default layout
        backend = args.store_backend or "jsonl"
        for other_scale in ("smoke", "quick", "full"):
            if other_scale == args.scale:
                continue
            sibling = campaign_for(
                args.experiment, other_scale, args.seed
            ).name
            path = default_store_path(sibling, backend)
            if path.exists():
                caches.append(open_store(path, backend))
    return caches


def _campaign_status(
    spec,
    store: CampaignStore,
    shards=1,
    trace_dir: Optional[Path] = None,
    retries: int = 2,
) -> str:
    """Status line(s) for ``spec`` in ``store``.

    Leased-but-unfinished units (claimed by a live worker pool but not
    yet completed) are reported separately — they are in flight, not
    done — and excluded from the pending count.  Sharded units count
    as *one* unit each; incomplete ones get their own progress line
    (``2/4 shards, merge pending``) instead of surfacing their shards
    as anonymous units.  Broadcast cells under ``--shards auto`` have
    no pre-agreed plan (the executing pools pick the fan-out), so
    their progress is inferred from whatever shard records the store
    already holds.

    Units with a persisted failure record get their own section with
    the attempt count and reason; a unit whose stored attempts exceed
    ``retries`` is flagged ``[quarantined]`` — a re-run with this
    budget will skip it until ``campaign retry-failed`` clears it.
    """
    from repro.campaigns.shards import (
        BROADCAST_CELL_KIND,
        BROADCAST_SHARD_KIND,
        broadcast_cell_key,
        cell_sources,
        planned_shards,
        shard_specs,
    )

    wanted = set(spec.unit_hashes())
    stored = store.completed_hashes()
    completed = wanted & stored
    leased = store.leased_hashes()
    leased_units = (leased & wanted) - completed
    failures = {
        h: r
        for h, r in store.records().items()
        if h in wanted and r.failed
    }
    quarantined = {h for h, r in failures.items() if r.attempts > retries}
    failed_idle = set(failures) - leased_units
    pending = (
        len(spec) - len(completed) - len(leased_units) - len(failed_idle)
    )
    state = (
        "complete"
        if pending == 0 and not leased_units and not failures
        else f"{pending} pending"
    )
    failed_note = (
        f" {len(failures)} failed ({len(quarantined)} quarantined),"
        if failures
        else ""
    )
    lines = [
        f"campaign {spec.name} [{store.backend}]:"
        f" {len(completed)}/{len(spec)} units complete,"
        f"{failed_note}"
        f" {len(leased_units)} leased (in flight) ({state})"
        f" — store: {store.path}"
    ]
    for unit in spec.units:
        record = failures.get(unit.unit_hash)
        if record is None:
            continue
        tag = " [quarantined]" if unit.unit_hash in quarantined else ""
        lines.append(
            f"  {unit}: failed after {record.attempts} attempt(s){tag}"
            f" — {record.failure_reason}"
        )

    auto_cells = shards == "auto" and any(
        u.kind == BROADCAST_CELL_KIND and u.unit_hash not in completed
        for u in spec.units
    )
    landed_by_cell = {}
    if auto_cells:
        # The fan-out of an auto cell is whatever the executing pools
        # picked, so read the plan off the stored shard records.
        for record in store.records().values():
            shard_spec = record.unit_spec
            if shard_spec.kind != BROADCAST_SHARD_KIND:
                continue
            offset = int(shard_spec.param("source_offset", 0))
            count = int(shard_spec.param("source_count", 0))
            landed_by_cell.setdefault(
                broadcast_cell_key(shard_spec), []
            ).append((offset, offset + count))

    def _covered(slices, sources):
        """Distinct covered sources (interval union).

        Slices from several abandoned plans may overlap, and a slice
        reaching past the cell belongs to a *larger-scale* plan of the
        same cell key (the key strips the replication count) — drop
        it, so coverage never exceeds the cell and never claims a
        merge this cell's plans cannot fire.
        """
        covered, reach = 0, 0
        for lo, hi in sorted(s for s in slices if s[1] <= sources):
            lo = max(lo, reach)
            if hi > lo:
                covered += hi - lo
                reach = hi
        return covered

    for unit in spec.units:
        if unit.unit_hash in completed:
            continue
        if unit.kind == BROADCAST_CELL_KIND and shards == "auto":
            sources = cell_sources(unit)
            slices = landed_by_cell.get(broadcast_cell_key(unit), [])
            covered = _covered(slices, sources)
            note = (
                "merge pending" if covered >= sources
                else f"{sources - covered} sources to run"
            )
            landed = sum(1 for s in slices if s[1] <= sources)
            lines.append(
                f"  {unit}: {covered}/{sources} sources in"
                f" {landed} auto shard(s), {note}"
            )
            continue
        fan_out = planned_shards(unit, requested=shards)
        if fan_out < 2:
            continue
        plan = shard_specs(unit, fan_out)
        landed = sum(1 for shard in plan if shard.unit_hash in stored)
        in_flight = sum(
            1
            for shard in plan
            if shard.unit_hash in leased and shard.unit_hash not in stored
        )
        if landed == len(plan):
            note = "merge pending"
        else:
            # Same convention as the campaign headline: in-flight
            # (leased) shards are not part of the to-run count.
            note = f"{len(plan) - landed - in_flight} to run"
            if in_flight:
                note += f", {in_flight} in flight"
        lines.append(f"  {unit}: {landed}/{len(plan)} shards, {note}")

    # Per-unit timing/queueing breakdown from a traced run, when one
    # exists.  Purely additive lines — the counts above are stable
    # whether or not the campaign was traced.
    if trace_dir is not None and trace_dir.is_dir():
        traced = summarize_trace(read_trace_dir(trace_dir)).get("units", {})
        execs = {
            h: t["spans"]["unit.execute"]
            for h, t in traced.items()
            if t.get("spans", {}).get("unit.execute")
        }
        if execs:
            queues = [
                t["queued_s"] for t in traced.values() if "queued_s" in t
            ]
            line = (
                f"  traced: {len(execs)} executed unit(s) in {trace_dir}"
                f" — execute mean {sum(execs.values()) / len(execs):.2f}s,"
                f" max {max(execs.values()):.2f}s"
            )
            if queues:
                line += (
                    f"; claim-to-start mean {sum(queues) / len(queues):.2f}s"
                )
            lines.append(line)
            slowest = sorted(execs.items(), key=lambda kv: -kv[1])[:3]
            for unit_hash, _ in slowest:
                timing = traced[unit_hash]
                parts = ", ".join(
                    f"{name.split('.', 1)[-1]} {dur:.2f}s"
                    for name, dur in sorted(timing["spans"].items())
                )
                if "queued_s" in timing:
                    parts += f", queued {timing['queued_s']:.2f}s"
                lines.append(f"    {unit_hash[:12]}: {parts}")
    return "\n".join(lines)


def _campaign_status_dict(
    spec,
    store: CampaignStore,
    shards=1,
    trace_dir: Optional[Path] = None,
    retries: int = 2,
) -> dict:
    """Machine-readable status for one store (``campaign status --json``).

    Mirrors :func:`_campaign_status`: units by state (``completed`` /
    ``failed`` / ``leased`` / ``pending``), per-unit elapsed seconds
    from stored records, failure details (error, attempts, quarantined
    under the given retry budget), shard progress for planned
    fan-outs, and — when a trace spool exists — per-unit span
    durations and claim-to-start queueing delays.
    """
    from repro.campaigns.shards import planned_shards, shard_specs

    records = store.records()
    leased = store.leased_hashes()
    traced = {}
    trace_available = trace_dir is not None and trace_dir.is_dir()
    if trace_available:
        traced = summarize_trace(read_trace_dir(trace_dir)).get("units", {})

    units = []
    counts = {"completed": 0, "failed": 0, "leased": 0, "pending": 0}
    quarantined = 0
    for unit in spec.units:
        unit_hash = unit.unit_hash
        record = records.get(unit_hash)
        if record is not None and record.ok:
            state = "completed"
        elif record is not None:
            state = "failed"
        elif unit_hash in leased:
            state = "leased"
        else:
            state = "pending"
        counts[state] += 1
        entry: dict = {"unit": str(unit), "hash": unit_hash, "state": state}
        if record is not None and record.ok:
            entry["elapsed_s"] = record.elapsed_s
        elif record is not None:
            in_quarantine = record.attempts > retries
            quarantined += in_quarantine
            entry["failure"] = {
                "error": record.result.get("error", ""),
                "message": record.result.get("message", ""),
                "attempts": record.attempts,
                "quarantined": in_quarantine,
            }
        fan_out = planned_shards(unit, requested=shards)
        if fan_out > 1:
            plan = shard_specs(unit, fan_out)
            entry["shards"] = {
                "planned": len(plan),
                "landed": sum(
                    1
                    for s in plan
                    if records.get(s.unit_hash) is not None
                    and records[s.unit_hash].ok
                ),
            }
        timing = traced.get(unit_hash)
        if timing:
            entry["trace"] = timing
        units.append(entry)

    return {
        "campaign": spec.name,
        "backend": store.backend,
        "store": str(store.path),
        "total": len(spec.units),
        **counts,
        "quarantined": quarantined,
        "trace": {
            "dir": str(trace_dir) if trace_dir is not None else None,
            "available": trace_available,
        },
        "units": units,
    }


def _fit_cost_stores(args, spec) -> List[CampaignStore]:
    """Stores to harvest timings from for ``campaign fit-cost``.

    An explicit ``--store`` wins; otherwise every default-layout store
    of the experiment/seed across all scales and backends contributes —
    the fit only gets better with more measured units.
    """
    if args.store or args.store_backend:
        return [_campaign_store(args, spec)]
    stores = []
    for scale in ("smoke", "quick", "full"):
        name = campaign_for(args.experiment, scale, args.seed).name
        for backend in sorted(BACKENDS):
            path = default_store_path(name, backend)
            if path.exists():
                stores.append(open_store(path, backend))
    return stores


def _cmd_fit_cost(args, spec) -> int:
    from repro.campaigns.costmodel import (
        DEFAULT_COST_MODEL_PATH,
        fit_cost_model,
        records_from_stores,
    )

    stores = _fit_cost_stores(args, spec)
    records = records_from_stores(stores)
    if not stores:
        print(
            f"campaign fit-cost: no stores found for {args.experiment}"
            f" (seed {args.seed}); run a campaign first"
        )
        return 1
    try:
        model = fit_cost_model(records)
    except ValueError as exc:
        print(f"campaign fit-cost: {exc}")
        return 1
    out = Path(args.out) if args.out else DEFAULT_COST_MODEL_PATH
    model.save(out)
    print(model.describe())
    print(
        f"model written to {out} — `--schedule adaptive` uses it"
        f" automatically ({len(stores)} store(s), {len(records)} records)"
    )
    return 0


def _cmd_campaign_trace(args, spec) -> int:
    """Merge a traced campaign's spool files and export Perfetto JSON."""
    store = _campaign_store(args, spec)
    trace_dir = _status_trace_dir(args, store)
    if not trace_dir.is_dir():
        print(
            f"campaign trace: no trace spool at {trace_dir};"
            f" run the campaign with --trace first"
        )
        return 1
    records = read_trace_dir(trace_dir)
    if not records:
        print(f"campaign trace: {trace_dir} holds no trace records")
        return 1
    out = Path(args.out) if args.out else trace_dir / "trace.json"
    export_chrome_trace(records, out)
    summary = summarize_trace(records)
    roles = list(summary["processes"].values())
    print(
        f"campaign {spec.name}: {summary['spans']} spans,"
        f" {summary['events']} events from {len(roles)} process(es)"
        f" ({roles.count('pool')} pool, {roles.count('worker')} worker)"
        f" over {summary['wall_s']:.2f}s"
    )
    print(f"  units traced: {len(summary['units'])}")
    failures = summary.get("failures", {})
    if failures:
        print(
            "  failure events: "
            + ", ".join(
                f"{name} x{count}"
                for name, count in sorted(failures.items())
            )
        )
    rpc = summary.get("rpc", {})
    if rpc:
        retries = rpc.get("rpc.retry", 0)
        calls = sum(n for name, n in rpc.items() if name != "rpc.retry")
        print(
            f"  coordinator rpc: {calls} call event(s),"
            f" {retries} retry(ies) — distributed run"
        )
    print(
        f"  exported {out} — open it in Perfetto (https://ui.perfetto.dev)"
        f" or chrome://tracing"
    )
    return 0


def _cmd_campaign_serve(args) -> int:
    """Run the campaign coordinator until interrupted.

    The service is stateless beyond its bounded append-dedup window:
    every record and lease lives in the backing store, so killing and
    restarting the coordinator mid-campaign is safe — clients retry,
    then resume.
    """
    import os

    from repro.campaigns.remote import CampaignCoordinator
    from repro.obs.trace import NULL_TRACER, JsonlSink, Tracer, worker_trace_path

    backing = open_store(args.store, args.store_backend)
    tracer = NULL_TRACER
    if args.trace is not None:
        spool_dir = Path(args.trace) if args.trace else trace_dir_for(backing)
        tracer = Tracer(
            JsonlSink(worker_trace_path(spool_dir, "server", os.getpid())),
            role="server",
        )
        print(f"rpc events spooling to {spool_dir}")
    coordinator = CampaignCoordinator(
        backing,
        host=args.host,
        port=args.port,
        tracer=tracer,
        dedup_cap=args.dedup_cap,
    )
    print(f"campaign coordinator listening on {coordinator.url}")
    print(f"  backing store: {backing.describe()}")
    print(
        f"  point worker pools at it with: --store {coordinator.url}",
        flush=True,
    )
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        print("campaign coordinator: shutting down")
    finally:
        coordinator.close()
        tracer.close()
    return 0


def _cmd_serve(args) -> int:
    """Run the live estimator until interrupted, then drain.

    SIGINT and SIGTERM both take the graceful path (the same
    signal→KeyboardInterrupt convention campaign pools use): the
    listener stops accepting, the in-flight miss simulation finishes
    and releases its lease through the ordinary campaign machinery,
    and the process exits 0 — every answered record is already in the
    store, so a restart resumes with a warm cache.
    """
    import os
    import signal

    from repro.obs.trace import NULL_TRACER, JsonlSink, Tracer, worker_trace_path
    from repro.service import EstimatorServer, EstimatorService

    store = open_store(args.store, args.store_backend)
    tracer = NULL_TRACER
    if args.trace is not None:
        spool_dir = Path(args.trace) if args.trace else trace_dir_for(store)
        tracer = Tracer(
            JsonlSink(worker_trace_path(spool_dir, "service", os.getpid())),
            role="service",
        )
        print(f"svc events spooling to {spool_dir}")
    service = EstimatorService(
        store,
        tracer=tracer,
        engine=args.engine,
        retries=args.retries,
    )
    server = EstimatorServer(service, host=args.host, port=args.port)

    draining = False

    def _graceful(signum: int, frame) -> None:
        # Process managers (and coreutils `timeout`) may deliver the
        # termination signal more than once; only the first one starts
        # the drain — a repeat must not interrupt the drain itself.
        nonlocal draining
        if draining:
            return
        draining = True
        raise KeyboardInterrupt(f"signal {signum}")

    restore = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            restore.append((sig, signal.signal(sig, _graceful)))
        except (ValueError, OSError):  # pragma: no cover - platform
            pass
    print(f"estimator service listening on {server.url}")
    print(f"  answer cache: {store.describe()}")
    print(
        f"  query it with: curl -X POST {server.url}/v1/query"
        " -d '{\"algorithm\": \"DB\", \"dims\": [8, 8, 8]}'",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("estimator service: draining", flush=True)
    finally:
        draining = True  # ignore repeated signals for the whole drain
        try:
            server.close()
            tracer.close()
        finally:
            for sig, previous in restore:
                signal.signal(sig, previous)
    print("estimator service: drained cleanly")
    return 0


def _cmd_campaign(args) -> int:
    if args.campaign_command == "serve":
        return _cmd_campaign_serve(args)
    spec = campaign_for(
        args.experiment, args.scale, args.seed, shards=args.shards
    )
    if args.campaign_command == "fit-cost":
        return _cmd_fit_cost(args, spec)
    if args.campaign_command == "trace":
        return _cmd_campaign_trace(args, spec)
    if args.campaign_command == "status":
        # No explicit store: report every backend found in the default
        # layout (per-backend totals), not just the jsonl one.
        if args.store or args.store_backend:
            stores = [_campaign_store(args, spec)]
        else:
            stores = [
                open_store(path, backend)
                for backend in sorted(BACKENDS)
                for path in [default_store_path(spec.name, backend)]
                if path.exists()
            ] or [_campaign_store(args, spec)]
        if args.as_json:
            import json

            payload = [
                _campaign_status_dict(
                    spec,
                    store,
                    shards=args.shards,
                    trace_dir=_status_trace_dir(args, store),
                    retries=args.retries,
                )
                for store in stores
            ]
            print(json.dumps(payload, indent=2))
            return 0
        for store in stores:
            print(
                _campaign_status(
                    spec,
                    store,
                    shards=args.shards,
                    trace_dir=_status_trace_dir(args, store),
                    retries=args.retries,
                )
            )
        return 0

    store = _campaign_store(args, spec)
    if args.campaign_command == "retry-failed":
        return _cmd_retry_failed(spec, store)
    if args.campaign_command == "run":
        trace_dir = _trace_dir(args, spec, store)
        records = run_campaign(
            spec,
            workers=args.workers,
            store=store,
            progress=print,
            schedule=args.schedule,
            cache=_campaign_caches(args, spec),
            shards=args.shards,
            trace_dir=trace_dir,
            retries=args.retries,
            max_failures=args.max_failures,
            engine=args.engine,
        )
        if trace_dir is not None:
            print(
                f"trace spooled to {trace_dir} — export with"
                f" `repro campaign trace {args.experiment}"
                f" --scale {args.scale}`"
            )
    else:  # aggregate
        stored = store.records_for(spec)
        records = [r for r in stored if r is not None]
        pending = len(spec) - len(records)
        if pending:  # aggregate needs every unit
            resume = (
                f"repro campaign run {args.experiment}"
                f" --scale {args.scale} --seed {args.seed}"
            )
            if args.shards != 1:
                resume += f" --shards {args.shards}"
            if args.store:
                resume += f" --store {args.store}"
            if args.store_backend:
                resume += f" --store-backend {args.store_backend}"
            print(
                f"campaign {spec.name}: only {len(records)}/{len(spec)}"
                f" units in {store.path}; run `{resume}` to finish it first"
            )
            return 1
    failed = failed_records(records)
    rows = aggregate(args.experiment, records)
    from repro.experiments.runner import FORMATTERS

    print(FORMATTERS[args.experiment](rows))
    for record in failed:
        print(
            f"warning: skipping failed cell {record.unit_hash[:12]}"
            f" ({record.attempts} attempt(s)): {record.failure_reason}",
            file=sys.stderr,
        )
    if failed:
        print(
            f"campaign {spec.name}: {len(failed)} unit(s) failed —"
            f" inspect with `repro campaign status {args.experiment}"
            f" --scale {args.scale}`, reset budgets with"
            f" `repro campaign retry-failed {args.experiment}"
            f" --scale {args.scale}`",
            file=sys.stderr,
        )
    _save(rows, getattr(args, "out", None))
    return 1 if failed else 0


def _cmd_retry_failed(spec, store: CampaignStore) -> int:
    """``campaign retry-failed``: reset failed units' retry budgets.

    Re-appends every failure record in the store (units *and* shards)
    with its attempt ledger zeroed — last-wins on every backend — so
    the next ``campaign run`` treats those units as never attempted
    instead of quarantined.  The failure metadata stays visible in
    ``campaign status`` until a successful run overwrites the record.
    """
    from dataclasses import replace

    failed = [r for r in store.records().values() if r.failed]
    reset = [r for r in failed if r.attempts > 0]
    for record in reset:
        result = dict(record.result)
        result["attempts"] = 0
        store.append(replace(record, result=result))
    print(
        f"campaign {spec.name} [{store.backend}]: reset"
        f" {len(reset)} of {len(failed)} failed record(s);"
        f" the next run retries them with a fresh budget"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "broadcast":
            return _cmd_broadcast(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        spec = campaign_for(
            args.command, args.scale, args.seed, shards=args.shards
        )
        store = None
        if args.store or args.store_backend:
            backend = args.store_backend
            if args.store:
                store = open_store(args.store, backend)
            elif backend == "http":
                raise SystemExit(
                    "repro: --store-backend http needs the coordinator's"
                    " URL: --store http://host:port (start one with"
                    " `repro campaign serve`)"
                )
            else:
                store = open_store(
                    default_store_path(spec.name, backend), backend
                )
        trace_dir = _trace_dir(args, spec, store)
        rows, text = run_experiment(
            args.command,
            args.scale,
            args.seed,
            workers=args.workers,
            store=store,
            schedule=args.schedule,
            shards=args.shards,
            spec=spec,
            trace_dir=trace_dir,
            retries=args.retries,
            max_failures=args.max_failures,
            engine=args.engine,
        )
        print(text)
        if trace_dir is not None:
            print(f"\ntrace spooled to {trace_dir}")
        _save(rows, getattr(args, "out", None))
        return 0
    except StoreUnreachableError as exc:
        # A down/unreachable coordinator is an operational condition,
        # not a bug: one actionable line, not a traceback.
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except TooManyFailuresError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # The pool already released its leases and printed a takeover
        # summary; exit with the conventional SIGINT status.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:  # e.g. `repro fig1 | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
