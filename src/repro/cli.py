"""Command-line interface.

Regenerate any of the paper's tables/figures::

    repro fig1 --scale quick
    repro table2 --scale full --seed 7 --workers 8
    repro list

run a parallel, resumable campaign (results land in a JSONL store,
and a re-run skips every already-completed unit)::

    repro campaign run fig4 --scale full --workers 8
    repro campaign status fig4 --scale full
    repro campaign aggregate fig4 --scale full --out fig4.csv

or run a one-off broadcast and print its profile::

    repro broadcast --algo AB --dims 8x8x8 --source 3,4,5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.comparison import compare_algorithms
from repro.campaigns.aggregate import aggregate
from repro.campaigns.pool import run_campaign
from repro.campaigns.store import ResultStore
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import EventDrivenExecutor
from repro.core.registry import algorithm_names, get_algorithm
from repro.experiments.reporting import format_table
from repro.experiments.runner import EXPERIMENTS, campaign_for, run_experiment
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh

__all__ = ["main"]

CAMPAIGN_HELP = "run experiment campaigns (parallel, resumable)"


def _parse_dims(text: str):
    try:
        return tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad dims {text!r}; use e.g. 8x8x8")


def _parse_coord(text: str):
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad coordinate {text!r}; use e.g. 3,4,5")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive count, got {text!r}")
    return value


def _add_experiment_options(
    parser: argparse.ArgumentParser, workers: bool = True
) -> None:
    parser.add_argument(
        "--scale", default="quick", choices=["smoke", "quick", "full"]
    )
    parser.add_argument("--seed", type=int, default=0)
    if workers:
        parser.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            metavar="N",
            help="shard simulation units over N worker processes",
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Performance of Broadcast Algorithms in"
            " Interconnection Networks' (Al-Dubai & Ould-Khaoua, ICPP 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for experiment_id, help_text in EXPERIMENTS.items():
        p = sub.add_parser(experiment_id, help=help_text)
        _add_experiment_options(p)
        p.add_argument(
            "--out",
            default=None,
            metavar="FILE",
            help="also save the rows to FILE (.json or .csv)",
        )

    camp = sub.add_parser("campaign", help=CAMPAIGN_HELP)
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)
    for action, help_text in (
        ("run", "execute a campaign's pending units (resumes from --store)"),
        ("status", "show completed/pending unit counts"),
        ("aggregate", "rebuild result rows from a (complete) store"),
    ):
        cp = camp_sub.add_parser(action, help=help_text)
        cp.add_argument("experiment", choices=sorted(EXPERIMENTS))
        _add_experiment_options(cp, workers=(action == "run"))
        cp.add_argument(
            "--store",
            default=None,
            metavar="FILE",
            help=(
                "JSONL unit-result store"
                " (default: campaigns/<name>.jsonl)"
            ),
        )
        if action in ("run", "aggregate"):
            cp.add_argument(
                "--out",
                default=None,
                metavar="FILE",
                help="also save the aggregated rows to FILE (.json or .csv)",
            )

    b = sub.add_parser("broadcast", help="run one broadcast and print stats")
    b.add_argument("--algo", default="DB", choices=algorithm_names())
    b.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    b.add_argument("--source", type=_parse_coord, default=None)
    b.add_argument("--flits", type=int, default=100)

    c = sub.add_parser("compare", help="analytic comparison of all algorithms")
    c.add_argument("--dims", type=_parse_dims, default=(8, 8, 8))
    c.add_argument("--flits", type=int, default=100)
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for experiment_id in sorted(EXPERIMENTS):
        print(f"  {experiment_id:<18s} {EXPERIMENTS[experiment_id]}")
    print(f"  {'campaign':<18s} {CAMPAIGN_HELP}")
    return 0


def _cmd_broadcast(args) -> int:
    mesh = Mesh(args.dims)
    cls = get_algorithm(args.algo)
    algorithm = cls(mesh)
    source = args.source or tuple(d // 2 for d in args.dims)
    schedule = algorithm.schedule(source)
    network = NetworkSimulator(
        mesh, NetworkConfig(ports_per_node=algorithm.ports_required)
    )
    routing = (
        AdaptiveBroadcast.make_routing(mesh) if algorithm.adaptive else None
    )
    outcome = EventDrivenExecutor(network, adaptive_routing=routing).execute(
        schedule, args.flits
    )
    print(
        f"{args.algo} broadcast on {'x'.join(map(str, args.dims))} from"
        f" {source} (L={args.flits} flits)"
    )
    print(f"  steps:            {schedule.num_steps}")
    print(f"  worms launched:   {schedule.total_sends()}")
    print(f"  delivered:        {outcome.delivered_count} nodes")
    print(f"  network latency:  {outcome.network_latency:.3f} us")
    print(f"  mean latency:     {outcome.mean_latency:.3f} us")
    print(f"  CV of arrivals:   {outcome.coefficient_of_variation:.4f}")
    return 0


def _cmd_compare(args) -> int:
    rows = [r.as_dict() for r in compare_algorithms(args.dims, args.flits)]
    print(format_table(rows))
    return 0


def _save(rows, out: Optional[str]) -> None:
    if out:
        from repro.experiments.export import save_rows

        path = save_rows(rows, out)
        print(f"\nrows saved to {path}")


def _campaign_store(args, spec) -> ResultStore:
    path = args.store or Path("campaigns") / f"{spec.name}.jsonl"
    return ResultStore(path)


def _cmd_campaign(args) -> int:
    spec = campaign_for(args.experiment, args.scale, args.seed)
    store = _campaign_store(args, spec)
    if args.campaign_command == "run":
        records = run_campaign(
            spec, workers=args.workers, store=store, progress=print
        )
    else:
        stored = store.records_for(spec)  # one parse serves both commands
        records = [r for r in stored if r is not None]
        pending = len(spec) - len(records)
        if args.campaign_command == "status":
            state = "complete" if pending == 0 else f"{pending} pending"
            print(
                f"campaign {spec.name}: {len(records)}/{len(spec)} units"
                f" complete ({state}) — store: {store.path}"
            )
            return 0
        if pending:  # aggregate needs every unit
            resume = (
                f"repro campaign run {args.experiment}"
                f" --scale {args.scale} --seed {args.seed}"
            )
            if args.store:
                resume += f" --store {args.store}"
            print(
                f"campaign {spec.name}: only {len(records)}/{len(spec)}"
                f" units in {store.path}; run `{resume}` to finish it first"
            )
            return 1
    rows = aggregate(args.experiment, records)
    from repro.experiments.runner import FORMATTERS

    print(FORMATTERS[args.experiment](rows))
    _save(rows, getattr(args, "out", None))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "broadcast":
            return _cmd_broadcast(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        rows, text = run_experiment(
            args.command, args.scale, args.seed, workers=args.workers
        )
        print(text)
        _save(rows, getattr(args, "out", None))
        return 0
    except BrokenPipeError:  # e.g. `repro fig1 | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
