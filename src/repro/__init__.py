"""repro — reproduction of Al-Dubai & Ould-Khaoua, ICPP 2005.

A wormhole-switched interconnection-network simulator and the four
broadcast algorithms the paper compares:

* **RD** — Recursive Doubling (Barnett et al.)
* **EDN** — Extended Dominating Nodes (Tsai & McKinley)
* **DB** — Deterministic Broadcast (coded-path routing)
* **AB** — Adaptive Broadcast (coded-path + west-first turn model)

Quickstart
----------
>>> from repro import Mesh, broadcast
>>> outcome = broadcast("AB", Mesh((8, 8, 8)), source=(3, 4, 5))
>>> outcome.delivered_count
511

Subpackages
-----------
``repro.sim``
    process-oriented discrete-event kernel (the CSIM substitute);
``repro.network``
    meshes/tori/hypercubes, channels, wormhole path transmission;
``repro.routing``
    dimension-ordered and turn-model routing, CPR paths, deadlock
    analysis;
``repro.core``
    the four broadcast algorithms, schedules, executors;
``repro.traffic``
    Poisson mixed unicast/broadcast workloads;
``repro.metrics``
    CV, confidence intervals, batch means;
``repro.analysis``
    closed-form step counts and latency models;
``repro.experiments``
    regenerates every table and figure of the paper.
"""

from typing import Optional, Sequence

from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.base import BroadcastAlgorithm
from repro.core.deterministic_broadcast import DeterministicBroadcast
from repro.core.edn import ExtendedDominatingNodes
from repro.core.executors import (
    BroadcastOutcome,
    EventDrivenExecutor,
    UnitStepExecutor,
)
from repro.core.recursive_doubling import RecursiveDoubling
from repro.core.registry import ALGORITHMS, algorithm_names, get_algorithm
from repro.network.hypercube import Hypercube
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh, Topology
from repro.network.torus import Torus

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdaptiveBroadcast",
    "BroadcastAlgorithm",
    "BroadcastOutcome",
    "DeterministicBroadcast",
    "EventDrivenExecutor",
    "ExtendedDominatingNodes",
    "Hypercube",
    "Mesh",
    "NetworkConfig",
    "NetworkSimulator",
    "RecursiveDoubling",
    "Topology",
    "Torus",
    "UnitStepExecutor",
    "algorithm_names",
    "broadcast",
    "get_algorithm",
]


def broadcast(
    algorithm: str,
    mesh: Mesh,
    source: Sequence[int],
    length_flits: int = 100,
    config: Optional[NetworkConfig] = None,
    seed: Optional[int] = 0,
) -> BroadcastOutcome:
    """One-call convenience API: simulate a single broadcast.

    Builds the algorithm's schedule from ``source``, runs it on a fresh
    event-driven network with the paper's timing constants, and returns
    the :class:`BroadcastOutcome` (arrival times, latency, CV).

    Parameters
    ----------
    algorithm:
        "RD", "EDN", "DB" or "AB".
    mesh:
        The target mesh.
    source:
        Broadcasting node.
    length_flits:
        Worm length ``L``.
    config:
        Optional timing/port overrides (defaults to the paper's
        constants with the algorithm's own port budget).
    seed:
        Master seed for the simulation's RNG streams.
    """
    cls = get_algorithm(algorithm)
    algo = cls(mesh)
    cfg = config or NetworkConfig(ports_per_node=algo.ports_required)
    network = NetworkSimulator(mesh, cfg, seed=seed)
    routing = AdaptiveBroadcast.make_routing(mesh) if algo.adaptive else None
    executor = EventDrivenExecutor(network, adaptive_routing=routing)
    return executor.execute(algo.schedule(tuple(source)), length_flits)
