"""Broadcast on the binary hypercube (paper's future-work topology #2).

The canonical dimension-sweep broadcast: in step ``i`` every node that
holds the message forwards it across dimension ``i``.  Coverage doubles
each step, giving exactly ``n = log2 N`` steps with single-hop worms —
the hypercube is the topology recursive doubling was born on, so this
also serves as the reference point the paper's conclusion gestures at
("an interesting line of research would be to propose ... broadcast
algorithms for these common topologies").
"""

from __future__ import annotations

from typing import List

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.hypercube import Hypercube
from repro.network.message import ControlField
from repro.routing.paths import Path

__all__ = ["HypercubeBroadcast"]


class HypercubeBroadcast(BroadcastAlgorithm):
    """Dimension-sweep broadcast on an n-cube.

    Examples
    --------
    >>> from repro.network import Hypercube
    >>> hb = HypercubeBroadcast(Hypercube(6))
    >>> hb.step_count()
    6
    """

    name = "HCUBE"
    ports_required = 1
    adaptive = False

    def __init__(self, topology):
        if not isinstance(topology, Hypercube):
            raise TypeError("HypercubeBroadcast requires a Hypercube topology")
        super().__init__(topology)

    def step_count(self) -> int:
        return self.topology.order

    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        cube: Hypercube = self.topology
        steps: List[BroadcastStep] = []
        holders: List[Coordinate] = [source]
        for axis in range(cube.order):
            sends = []
            new_holders = []
            for holder in holders:
                partner = cube.flip(holder, axis)
                sends.append(
                    PathSend(
                        source=holder,
                        deliveries=frozenset({partner}),
                        path=Path([holder, partner]),
                        control=ControlField.RECEIVE,
                    )
                )
                new_holders.append(partner)
            holders.extend(new_holders)
            steps.append(BroadcastStep(index=axis + 1, sends=sends))
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)
