"""Coded-path broadcast on the k-ary n-cube (paper's future-work topology #1).

A DB-style construction that exploits the torus's wraparound links:
one message-passing step per dimension.  In step ``d`` every holder
launches two multidestination ring worms along dimension ``d`` — one in
each direction, each covering half the ring — so coverage multiplies by
the full radix every step.  ``n`` steps total (vs DB's 4 on the 3-D
mesh, but with a 2-worm port budget and ring paths half the mesh-path
length), and every ring position receives within the same step — the
coded-path low-variance property carried over to the torus.

This is the kind of algorithm the paper's conclusion proposes as future
work; DESIGN.md lists the supporting experiment
(`benchmarks/bench_extension_topologies.py`).
"""

from __future__ import annotations

from typing import List

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.network.torus import Torus
from repro.routing.paths import Path

__all__ = ["TorusRingBroadcast"]


class TorusRingBroadcast(BroadcastAlgorithm):
    """Two-directional ring broadcast on a torus, one step per dimension.

    Examples
    --------
    >>> from repro.network import Torus
    >>> tb = TorusRingBroadcast(Torus((8, 8, 8)))
    >>> tb.step_count()
    3
    >>> schedule = tb.schedule((1, 2, 3))
    >>> len(schedule.covered_nodes())
    512
    """

    name = "TORUS-RING"
    ports_required = 2
    adaptive = False

    def __init__(self, topology):
        if not isinstance(topology, Torus):
            raise TypeError("TorusRingBroadcast requires a Torus topology")
        super().__init__(topology)

    def step_count(self) -> int:
        return sum(1 for d in self.topology.dims if d > 1)

    def _ring_sends(self, holder: Coordinate, axis: int) -> List[PathSend]:
        """The two half-ring worms from ``holder`` along ``axis``."""
        radix = self.topology.dims[axis]
        forward_count = radix // 2           # positions +1 .. +radix//2
        backward_count = radix - 1 - forward_count
        sends: List[PathSend] = []
        for direction, count in ((+1, forward_count), (-1, backward_count)):
            if count == 0:
                continue
            nodes = [holder]
            for step in range(1, count + 1):
                value = (holder[axis] + direction * step) % radix
                nodes.append(holder[:axis] + (value,) + holder[axis + 1 :])
            sends.append(
                PathSend(
                    source=holder,
                    deliveries=frozenset(nodes[1:]),
                    path=Path(nodes, deliveries=nodes[1:]),
                    control=ControlField.PASS_AND_RECEIVE,
                )
            )
        return sends

    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        torus: Torus = self.topology
        steps: List[BroadcastStep] = []
        holders: List[Coordinate] = [source]
        index = 0
        for axis, radix in enumerate(torus.dims):
            if radix == 1:
                continue
            sends: List[PathSend] = []
            for holder in holders:
                sends.extend(self._ring_sends(holder, axis))
            index += 1
            steps.append(BroadcastStep(index=index, sends=sends))
            holders = [
                h[:axis] + (v,) + h[axis + 1 :] for h in holders for v in range(radix)
            ]
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)
