"""Batched single-source broadcasts, byte-identical to the event engine.

:func:`run_batch_broadcasts` is the drop-in batched counterpart of
:func:`repro.experiments.common.run_single_broadcasts`: same arguments,
same ordered list of :class:`~repro.core.executors.BroadcastOutcome`
results, the same floats bit for bit — but eligible sources advance
together through the structure-of-arrays sweep of
:mod:`repro.sim.batch` instead of each paying for a fresh
:class:`~repro.network.network.NetworkSimulator` (thousands of node /
channel / resource objects) and a private event heap.

Fallback mirrors the hop-batched wormhole walk's guard philosophy:
whenever exactness cannot be *proved*, the affected source silently
re-runs on the event-driven engine —

* adaptive schedules (AB) resolve routing against live channel load,
  so the whole batch falls back;
* any declared channel fault falls back too (the event engine is the
  defined semantics for faulty topologies, delivering or raising
  :class:`~repro.network.faults.FaultyChannelError` per source);
* per-source dynamic checks (channel-occupancy conflicts, a walk that
  outruns its first delivery) hand just that source back.

Duplicate sources — common under the paper's uniform random draw —
are planned and swept once and share their outcome; the event engine
would recompute identical floats for each copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import BroadcastOutcome, EventDrivenExecutor
from repro.core.registry import get_algorithm
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh
from repro.sim.batch import plan_broadcast, sweep_broadcasts

__all__ = ["run_batch_broadcasts"]


def _event_outcome(
    mesh: Mesh,
    algorithm,
    config: NetworkConfig,
    source: Tuple[int, ...],
    length_flits: int,
    faults: Sequence[Tuple[Tuple[int, ...], Tuple[int, ...]]],
) -> BroadcastOutcome:
    """One event-driven broadcast, exactly as ``run_single_broadcasts``."""
    schedule = algorithm.schedule(source)
    network = NetworkSimulator(mesh, config)
    if faults:
        from repro.network.faults import FaultModel

        model = FaultModel(network)
        for u, v in faults:
            model.fail_channel(u, v)
    routing = (
        type(algorithm).make_routing(mesh)
        if getattr(algorithm, "adaptive", False)
        else None
    )
    executor = EventDrivenExecutor(network, adaptive_routing=routing)
    return executor.execute(schedule, length_flits)


def run_batch_broadcasts(
    algorithm_name: str,
    dims: Tuple[int, ...],
    sources: List[Tuple[int, ...]],
    length_flits: int,
    startup_latency: float = 1.5,
    max_destinations_per_path: Optional[int] = None,
    ports_override: Optional[int] = None,
    faults: Sequence[Tuple[Tuple[int, ...], Tuple[int, ...]]] = (),
    profile=None,
) -> List[BroadcastOutcome]:
    """Batched single-source broadcasts, one outcome per source.

    Bit-identical to
    :func:`repro.experiments.common.run_single_broadcasts` on the same
    arguments (which is property-tested across dims, algorithms,
    fan-outs and seeds); ``faults`` — absent from the event-only
    runner, whose networks are always pristine — marks channels faulty
    and forces the per-source event fallback.  ``profile`` is an
    optional :class:`~repro.obs.simprof.SimProfile` whose
    ``batch_sources_batched`` / ``batch_sources_fallback`` counters
    record how many of the requested sources each path served.
    """
    mesh = Mesh(dims)
    cls = get_algorithm(algorithm_name)
    if cls is AdaptiveBroadcast and max_destinations_per_path is not None:
        algorithm = cls(mesh, max_destinations_per_path=max_destinations_per_path)
    else:
        algorithm = cls(mesh)
    ports = ports_override or algorithm.ports_required
    config = NetworkConfig(
        startup_latency=startup_latency, flit_time=0.003, ports_per_node=ports
    )
    if not sources:
        return []

    unique: Dict[Tuple[int, ...], int] = {}
    order: List[Tuple[int, ...]] = []
    for source in sources:
        key = tuple(source)
        if key not in unique:
            unique[key] = len(order)
            order.append(key)

    adaptive = bool(getattr(algorithm, "adaptive", False))
    outcomes: List[Optional[BroadcastOutcome]] = [None] * len(order)
    swept_ok = [False] * len(order)

    if not adaptive and not faults:
        node_index = {coord: i for i, coord in enumerate(mesh.nodes())}
        n_nodes = len(node_index)
        plans = []
        plan_source = []
        for idx, source in enumerate(order):
            plan = plan_broadcast(
                algorithm.schedule(source), node_index, n_nodes
            )
            if plan is not None:
                plans.append(plan)
                plan_source.append(idx)
        if plans:
            timing = config.timing
            swept = sweep_broadcasts(
                plans,
                startup=config.startup_latency,
                hop_time=timing.header_hop_time,
                body=timing.body_time(length_flits),
                length_flits=length_flits,
                ports=ports,
            )
            for row, (plan, idx) in enumerate(zip(plans, plan_source)):
                if not swept.ok[row]:
                    continue
                values = swept.node_time[row, plan.delivered_nodes]
                # The event-driven arrivals dict fills in hook order ==
                # nondecreasing arrival time (an eligibility guarantee),
                # so any nondecreasing arrangement of the same values
                # reproduces its latency array byte for byte.
                by_time = np.argsort(values, kind="stable")
                arrivals = {
                    plan.delivered_coords[i]: float(values[i])
                    for i in by_time
                }
                outcomes[idx] = BroadcastOutcome(
                    algorithm=plan.algorithm,
                    source=plan.source,
                    start_time=0.0,
                    arrivals=arrivals,
                    total_sends=plan.total_sends,
                )
                swept_ok[idx] = True

    for idx, source in enumerate(order):
        if outcomes[idx] is None:
            outcomes[idx] = _event_outcome(
                mesh, algorithm, config, source, length_flits, faults
            )

    if profile is not None:
        for source in sources:
            if swept_ok[unique[tuple(source)]]:
                profile.batch_sources_batched += 1
            else:
                profile.batch_sources_fallback += 1
    return [outcomes[unique[tuple(source)]] for source in sources]
