"""Multicast on wormhole meshes (paper's future-work operation).

The paper's conclusion proposes extending the coded-path approach to
*multicast* — delivery to an arbitrary subset of nodes.  This module
provides the two classic path-based schemes the broadcast literature
builds on (Lin & Ni [10]; McKinley et al. [12]):

:class:`DualPathMulticast`
    destinations are ranked along a Hamiltonian (boustrophedon) walk of
    the mesh; the source launches one multidestination worm *up-rank*
    and one *down-rank*, each visiting its destinations in rank order
    along the walk.  Routing along a fixed Hamiltonian ranking is
    deadlock-free (channels are used in strictly monotone rank order),
    and one step suffices — the same property that gives DB/AB their
    step counts.

:class:`UnicastMulticast`
    the naive baseline: one separate unicast worm per destination,
    serialised on the source's ports.  This is what the
    multidestination literature improves on; the benchmark shows the
    gap.

Both produce ordinary :class:`~repro.core.schedule.BroadcastSchedule`
objects (with non-total coverage), so the existing executors run them
unchanged; :func:`validate_multicast` adapts the coverage check to a
destination subset.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.core.validation import ScheduleValidationError, check_causality, check_paths
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.network.topology import Mesh
from repro.routing.dimension_ordered import DimensionOrdered
from repro.routing.paths import Path

__all__ = [
    "hamiltonian_rank",
    "hamiltonian_walk",
    "DualPathMulticast",
    "UnicastMulticast",
    "validate_multicast",
]


def hamiltonian_walk(dims: Sequence[int]) -> List[Coordinate]:
    """A Hamiltonian walk of the mesh (generalised boustrophedon).

    Dimension 0 sweeps fastest; each higher dimension reverses the
    sweep direction of the walk beneath it, so consecutive walk entries
    are always mesh-adjacent.

    Examples
    --------
    >>> hamiltonian_walk((2, 2))
    [(0, 0), (1, 0), (1, 1), (0, 1)]
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise ValueError(f"bad dims {dims}")
    walk: List[Tuple[int, ...]] = [()]
    for axis_size in reversed(dims):
        extended: List[Tuple[int, ...]] = []
        for i, prefix in enumerate(walk):
            values = range(axis_size) if i % 2 == 0 else range(axis_size - 1, -1, -1)
            extended.extend(prefix + (v,) for v in values)
        walk = extended
    # Tuples were built highest-dimension first; flip so dim 0 is first
    # (it is the axis added last, hence the fastest-sweeping one).
    return [tuple(reversed(c)) for c in walk]


def hamiltonian_rank(dims: Sequence[int]) -> Dict[Coordinate, int]:
    """Map every node to its position on the Hamiltonian walk."""
    return {coord: i for i, coord in enumerate(hamiltonian_walk(dims))}


class DualPathMulticast:
    """One-step dual-path multicast over the Hamiltonian ranking.

    Parameters
    ----------
    topology:
        The mesh to multicast on.

    Notes
    -----
    The worm's route between consecutive destinations is the segment of
    the Hamiltonian walk connecting them, so the route is a valid
    channel walk and channel usage is rank-monotone (deadlock-free).
    Path lengths can exceed minimal routes — the classic dual-path
    trade-off.
    """

    name = "DUAL-PATH"
    ports_required = 2

    def __init__(self, topology: Mesh):
        self.topology = topology
        self._walk = hamiltonian_walk(topology.dims)
        self._rank = {coord: i for i, coord in enumerate(self._walk)}

    def schedule(
        self, source: Coordinate, destinations: Sequence[Coordinate]
    ) -> BroadcastSchedule:
        """Build the one-step dual-path schedule."""
        source = tuple(source)
        dest_set = self._check_destinations(source, destinations)
        src_rank = self._rank[source]
        up = sorted(
            (d for d in dest_set if self._rank[d] > src_rank),
            key=lambda d: self._rank[d],
        )
        down = sorted(
            (d for d in dest_set if self._rank[d] < src_rank),
            key=lambda d: -self._rank[d],
        )
        sends: List[PathSend] = []
        for group, direction in ((up, +1), (down, -1)):
            if not group:
                continue
            last = self._rank[group[-1]]
            stop = last + direction
            if direction == -1 and stop < 0:
                nodes = self._walk[src_rank::-1]
            else:
                nodes = self._walk[src_rank:stop:direction]
            sends.append(
                PathSend(
                    source=source,
                    deliveries=frozenset(group),
                    path=Path(nodes, deliveries=group),
                    control=ControlField.PASS_AND_RECEIVE,
                )
            )
        steps = [BroadcastStep(index=1, sends=sends)] if sends else []
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)

    def _check_destinations(
        self, source: Coordinate, destinations: Sequence[Coordinate]
    ) -> Set[Coordinate]:
        dest_set = {tuple(d) for d in destinations}
        if not dest_set:
            raise ValueError("multicast needs at least one destination")
        dest_set.discard(source)
        for dest in dest_set:
            if not self.topology.contains(dest):
                raise ValueError(f"destination {dest} outside {self.topology!r}")
        if not dest_set:
            raise ValueError("all destinations equal the source")
        return dest_set


class UnicastMulticast:
    """The naive baseline: one dimension-ordered unicast per destination."""

    name = "UNICAST-MC"
    ports_required = 1

    def __init__(self, topology: Mesh):
        self.topology = topology
        self._dor = DimensionOrdered(topology)

    def schedule(
        self, source: Coordinate, destinations: Sequence[Coordinate]
    ) -> BroadcastSchedule:
        source = tuple(source)
        dest_set = sorted({tuple(d) for d in destinations} - {source})
        if not dest_set:
            raise ValueError("multicast needs at least one destination != source")
        sends = []
        for dest in dest_set:
            if not self.topology.contains(dest):
                raise ValueError(f"destination {dest} outside {self.topology!r}")
            nodes = self._dor.path(source, dest)
            sends.append(
                PathSend(
                    source=source,
                    deliveries=frozenset({dest}),
                    path=Path(nodes, deliveries=[dest]),
                    control=ControlField.RECEIVE,
                )
            )
        return BroadcastSchedule(
            algorithm=self.name,
            source=source,
            steps=[BroadcastStep(index=1, sends=sends)],
        )


def validate_multicast(
    schedule: BroadcastSchedule,
    topology: Mesh,
    destinations: Sequence[Coordinate],
) -> None:
    """Structural checks for a multicast schedule.

    Every requested destination (except the source) is delivered exactly
    once, nothing else is delivered, causality holds, and every path is
    a real channel walk.
    """
    expected = {tuple(d) for d in destinations} - {schedule.source}
    counts: Dict[Coordinate, int] = {}
    for _, send in schedule.all_sends():
        for node in send.deliveries:
            counts[node] = counts.get(node, 0) + 1
    missing = expected - set(counts)
    if missing:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: destinations never covered: {sorted(missing)[:5]}"
        )
    extra = set(counts) - expected
    if extra:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: deliveries outside the destination set:"
            f" {sorted(extra)[:5]}"
        )
    duplicates = {n: c for n, c in counts.items() if c > 1}
    if duplicates:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: duplicate deliveries: {sorted(duplicates)[:5]}"
        )
    check_causality(schedule)
    check_paths(schedule, topology)
