"""Algorithm registry.

Maps the paper's algorithm names ("RD", "EDN", "DB", "AB") to their
classes so experiments and the CLI can be parameterised by name.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.base import BroadcastAlgorithm
from repro.core.deterministic_broadcast import DeterministicBroadcast
from repro.core.edn import ExtendedDominatingNodes
from repro.core.recursive_doubling import RecursiveDoubling

__all__ = ["ALGORITHMS", "get_algorithm", "algorithm_names"]

#: The paper's four algorithms, in the order its figures list them.
ALGORITHMS: Dict[str, Type[BroadcastAlgorithm]] = {
    "RD": RecursiveDoubling,
    "EDN": ExtendedDominatingNodes,
    "DB": DeterministicBroadcast,
    "AB": AdaptiveBroadcast,
}


def get_algorithm(name: str) -> Type[BroadcastAlgorithm]:
    """Look up an algorithm class by (case-insensitive) name."""
    key = name.upper()
    try:
        return ALGORITHMS[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None


def algorithm_names() -> List[str]:
    """The registered algorithm names, figure order."""
    return list(ALGORITHMS)
