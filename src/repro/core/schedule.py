"""Broadcast schedules.

A broadcast algorithm's output is a :class:`BroadcastSchedule`: an
ordered list of :class:`BroadcastStep`\\ s, each holding the
:class:`PathSend`\\ s issued in that message-passing step.  The schedule
is *declarative* — executors decide how steps map to simulated time
(locally causal launching for the event-driven executor, closed-form
accumulation for the analytic one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.routing.paths import Path

__all__ = ["PathSend", "BroadcastStep", "BroadcastSchedule"]


@dataclass(frozen=True)
class PathSend:
    """One worm launched during a broadcast step.

    Exactly one of ``path`` (deterministic, pre-routed) or
    ``waypoints`` (adaptive, routed at simulation time) is set.

    Parameters
    ----------
    source:
        The launching node.
    deliveries:
        Nodes that absorb a copy of this worm.
    path:
        Pre-built route (deterministic algorithms).
    waypoints:
        Nodes the worm must visit in order, source first; the route
        between consecutive waypoints is chosen by the executor's
        adaptive routing function.
    control:
        CPR control field the worm's header carries.
    """

    source: Coordinate
    deliveries: FrozenSet[Coordinate]
    path: Optional[Path] = None
    waypoints: Optional[Tuple[Coordinate, ...]] = None
    control: ControlField = ControlField.RECEIVE

    def __post_init__(self) -> None:
        if (self.path is None) == (self.waypoints is None):
            raise ValueError("PathSend needs exactly one of path= or waypoints=")
        object.__setattr__(self, "deliveries", frozenset(self.deliveries))
        if not self.deliveries:
            raise ValueError("PathSend must deliver to at least one node")
        if self.source in self.deliveries:
            raise ValueError("a send cannot deliver to its own source")
        if self.path is not None:
            if self.path.source != self.source:
                raise ValueError(
                    f"path source {self.path.source} != send source {self.source}"
                )
            stray = self.deliveries - set(self.path.nodes)
            if stray:
                raise ValueError(f"deliveries {sorted(stray)} not on the path")
        else:
            wp = tuple(tuple(w) for w in self.waypoints)
            object.__setattr__(self, "waypoints", wp)
            if wp[0] != self.source:
                raise ValueError(f"waypoints must start at source {self.source}")
            stray = self.deliveries - set(wp)
            if stray:
                raise ValueError(
                    f"deliveries {sorted(stray)} are not waypoints; adaptive"
                    " sends must pin every delivery as a waypoint"
                )

    @property
    def is_adaptive(self) -> bool:
        return self.waypoints is not None

    @property
    def fanout(self) -> int:
        """Number of nodes this worm delivers to."""
        return len(self.deliveries)

    def min_hops(self, topology) -> int:
        """Lower bound on the worm's path length."""
        if self.path is not None:
            return self.path.hop_count
        total = 0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            total += topology.distance(a, b)
        return total


@dataclass
class BroadcastStep:
    """All worms launched in one message-passing step."""

    index: int
    sends: List[PathSend] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("step indices are 1-based")

    def senders(self) -> Set[Coordinate]:
        return {s.source for s in self.sends}

    def deliveries(self) -> Set[Coordinate]:
        out: Set[Coordinate] = set()
        for send in self.sends:
            out |= send.deliveries
        return out

    def sends_from(self, node: Coordinate) -> List[PathSend]:
        return [s for s in self.sends if s.source == node]


@dataclass
class BroadcastSchedule:
    """A complete broadcast plan for one (algorithm, topology, source).

    Parameters
    ----------
    algorithm:
        Producing algorithm's name (for reports).
    source:
        The broadcasting node.
    steps:
        Message-passing steps in execution order (indices 1..n).
    """

    algorithm: str
    source: Coordinate
    steps: List[BroadcastStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        for expected, step in enumerate(self.steps, start=1):
            if step.index != expected:
                raise ValueError(
                    f"step indices must be 1..n in order; found {step.index}"
                    f" at position {expected}"
                )

    # -- shape ----------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def all_sends(self) -> List[Tuple[int, PathSend]]:
        """Every send as ``(step_index, send)`` in schedule order."""
        return [(step.index, send) for step in self.steps for send in step.sends]

    def total_sends(self) -> int:
        return sum(len(step.sends) for step in self.steps)

    def covered_nodes(self) -> Set[Coordinate]:
        """Source plus every delivery target."""
        cached = getattr(self, "_covered_cache", None)
        if cached is None:
            cached = {self.source}
            for step in self.steps:
                cached |= step.deliveries()
            self._covered_cache = frozenset(cached)
        # Fresh set per call: schedules are shared (and memoised across
        # simulations), so callers must be free to mutate the result.
        return set(cached)

    def receive_step(self) -> Dict[Coordinate, int]:
        """Step at which each node first receives (source maps to 0)."""
        seen: Dict[Coordinate, int] = {self.source: 0}
        for step in self.steps:
            for send in step.sends:
                for node in send.deliveries:
                    seen.setdefault(node, step.index)
        return seen

    def sends_by_node(self) -> Dict[Coordinate, List[Tuple[int, PathSend]]]:
        """Map sender → its sends (with step indices), in step order.

        The mapping is built once and shallow-copied per call (every
        broadcast launch consumes one by popping nodes as they
        receive); the per-sender lists are shared and must not be
        mutated.
        """
        template = getattr(self, "_by_node_cache", None)
        if template is None:
            template = {}
            for step in self.steps:
                for send in step.sends:
                    template.setdefault(send.source, []).append(
                        (step.index, send)
                    )
            self._by_node_cache = template
        return dict(template)

    def max_concurrent_sends(self) -> int:
        """Largest per-node send count within a single step."""
        worst = 0
        for step in self.steps:
            per_node: Dict[Coordinate, int] = {}
            for send in step.sends:
                per_node[send.source] = per_node.get(send.source, 0) + 1
            if per_node:
                worst = max(worst, max(per_node.values()))
        return worst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastSchedule {self.algorithm} from {self.source}:"
            f" {self.num_steps} steps, {self.total_sends()} sends>"
        )
