"""Deterministic Broadcast (DB) — Al-Dubai & Ould-Khaoua [28].

The coded-path deterministic broadcast, here in the 3-D form the paper
simulates (§2 describes the 2-D version and notes the extension):

Step 1 — the source unicasts to the two opposite corner nodes
    ``A = (0, 0, 0)`` and ``B = (kx-1, ky-1, kz-1)`` over
    dimension-ordered routes.
Step 2 — A and B each launch one multidestination worm along their
    z-pillar, handing two opposite corners of *every* xy-plane a copy
    in parallel.
Step 3 — in every plane, corner ``(0, 0, z)`` covers boundary row
    ``y = 0`` eastward and corner ``(kx-1, ky-1, z)`` covers boundary
    row ``y = ky-1`` westward, each with one coded-path worm.
Step 4 — every node of the two boundary rows launches one column worm
    toward the middle; the south row covers the lower interior rows,
    the north row the upper ones, splitting the interior into the
    "comparable partitions" the paper credits for DB's low
    arrival-time variance.

Steps that have nothing to do on degenerate dimensions (``kz = 1``,
``ky = 2``) are dropped, so the step count is
``2 + [kz > 1] + [ky > 2]`` — 4 on all the paper's 3-D configurations.
Every worm follows a dimension-ordered route; the source needs 2
injection ports, every other sender 1.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.network.topology import Mesh
from repro.routing.cpr import straight_line_path
from repro.routing.dimension_ordered import DimensionOrdered
from repro.routing.paths import Path

__all__ = ["DeterministicBroadcast"]


class DeterministicBroadcast(BroadcastAlgorithm):
    """DB broadcast on a 2-D or 3-D mesh (radix >= 2 in x and y).

    Examples
    --------
    >>> from repro.network import Mesh
    >>> db = DeterministicBroadcast(Mesh((8, 8, 8)))
    >>> db.step_count()
    4
    """

    name = "DB"
    ports_required = 2
    adaptive = False

    def __init__(self, topology):
        super().__init__(topology)
        mesh = self._require_mesh(min_dims=2)
        if mesh.ndim not in (2, 3):
            raise ValueError(f"DB supports 2-D/3-D meshes, got {mesh.ndim}-D")
        if mesh.dims[0] < 2 or mesh.dims[1] < 2:
            raise ValueError("DB needs radix >= 2 in the x and y dimensions")
        self._dor = DimensionOrdered(mesh)
        self._kz = mesh.dims[2] if mesh.ndim == 3 else 1

    def step_count(self) -> int:
        ky = self.topology.dims[1]
        return 2 + (1 if self._kz > 1 else 0) + (1 if ky > 2 else 0)

    # -- helpers ----------------------------------------------------------
    def _with_z(self, x: int, y: int, z: int) -> Coordinate:
        return (x, y) if self.topology.ndim == 2 else (x, y, z)

    def _multidest(
        self,
        src: Coordinate,
        axis: int,
        end: int,
        exclude: Coordinate,
        control: ControlField,
    ) -> Optional[PathSend]:
        """A straight coded-path worm along ``axis``, skipping ``exclude``."""
        if end == src[axis]:
            return None
        path = straight_line_path(src, axis, end)
        deliveries = frozenset(path.deliveries) - {exclude}
        if not deliveries:
            return None
        return PathSend(
            source=src,
            deliveries=deliveries,
            path=Path(path.nodes, deliveries=sorted(deliveries)),
            control=control,
        )

    # -- schedule -----------------------------------------------------------
    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        mesh: Mesh = self.topology
        kx, ky = mesh.dims[0], mesh.dims[1]
        kz = self._kz
        sz = source[2] if mesh.ndim == 3 else 0
        corner_a = self._with_z(0, 0, 0)
        corner_b = self._with_z(kx - 1, ky - 1, kz - 1)

        raw_steps: List[List[PathSend]] = []

        # Step 1: source -> the two opposite corners of the whole mesh.
        step1: List[PathSend] = []
        for corner in (corner_a, corner_b):
            if corner != source:
                nodes = self._dor.path(source, corner)
                step1.append(
                    PathSend(
                        source=source,
                        deliveries=frozenset({corner}),
                        path=Path(nodes, deliveries=[corner]),
                        control=ControlField.PASS_AND_RECEIVE,
                    )
                )
        raw_steps.append(step1)

        # Step 2: corner pillars hand every plane two opposite corners.
        if kz > 1:
            step2: List[PathSend] = []
            for corner, end_z in ((corner_a, kz - 1), (corner_b, 0)):
                send = self._multidest(
                    corner, axis=2, end=end_z, exclude=source,
                    control=ControlField.RECEIVE_AND_REPLICATE,
                )
                if send is not None:
                    step2.append(send)
            raw_steps.append(step2)

        # Step 3: per plane, the two corners cover their boundary rows.
        step3: List[PathSend] = []
        for z in range(kz):
            south = self._with_z(0, 0, z)
            north = self._with_z(kx - 1, ky - 1, z)
            for holder, end_x in ((south, kx - 1), (north, 0)):
                send = self._multidest(
                    holder, axis=0, end=end_x, exclude=source,
                    control=ControlField.RECEIVE_AND_REPLICATE,
                )
                if send is not None:
                    step3.append(send)
        raw_steps.append(step3)

        # Step 4: boundary rows fill the interior columns toward the middle.
        if ky > 2:
            mid = (ky - 1) // 2  # south covers rows 1..mid, north mid+1..ky-2
            step4: List[PathSend] = []
            for z in range(kz):
                for x in range(kx):
                    if mid >= 1:
                        send = self._multidest(
                            self._with_z(x, 0, z), axis=1, end=mid,
                            exclude=source,
                            control=ControlField.PASS_AND_RECEIVE,
                        )
                        if send is not None:
                            step4.append(send)
                    if mid + 1 <= ky - 2:
                        send = self._multidest(
                            self._with_z(x, ky - 1, z), axis=1, end=mid + 1,
                            exclude=source,
                            control=ControlField.PASS_AND_RECEIVE,
                        )
                        if send is not None:
                            step4.append(send)
            raw_steps.append(step4)

        steps = [
            BroadcastStep(index=i + 1, sends=sends)
            for i, sends in enumerate(raw_steps)
        ]
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)
