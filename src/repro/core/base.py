"""The broadcast-algorithm interface.

Every algorithm is a factory of :class:`~repro.core.schedule.BroadcastSchedule`
objects plus a little static metadata (port budget, routing style,
closed-form step count where one exists).
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedule import BroadcastSchedule
from repro.network.coordinates import Coordinate
from repro.network.topology import Mesh, Topology

__all__ = ["BroadcastAlgorithm"]


class BroadcastAlgorithm:
    """Abstract broadcast algorithm.

    Subclasses set the class attributes and implement
    :meth:`build_schedule`; :meth:`schedule` adds shared validation.
    """

    #: Short name used by the registry and reports ("RD", "EDN", ...).
    name: str = "abstract"
    #: Injection ports the algorithm's router model assumes.
    ports_required: int = 1
    #: True when sends are resolved by adaptive routing at run time.
    adaptive: bool = False

    def __init__(self, topology: Topology):
        if topology.num_nodes < 2:
            raise ValueError("broadcast needs at least two nodes")
        self.topology = topology
        self._check_topology(topology)

    # -- hooks ------------------------------------------------------------
    def _check_topology(self, topology: Topology) -> None:
        """Reject unsupported topologies (subclass hook)."""

    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        """Construct the schedule (subclass responsibility)."""
        raise NotImplementedError

    def step_count(self) -> Optional[int]:
        """Closed-form number of message-passing steps, if known."""
        return None

    # -- public entry -------------------------------------------------------
    def schedule(self, source: Coordinate) -> BroadcastSchedule:
        """Build and sanity-check the schedule for ``source``."""
        source = tuple(source)
        if not self.topology.contains(source):
            raise ValueError(f"source {source} is outside {self.topology!r}")
        built = self.build_schedule(source)
        expected = self.step_count()
        if expected is not None and built.num_steps != expected:
            raise AssertionError(
                f"{self.name}: built {built.num_steps} steps, closed form"
                f" says {expected} — constructor bug"
            )
        return built

    # -- shared helpers -------------------------------------------------------
    def _require_mesh(self, min_dims: int = 2) -> Mesh:
        if not isinstance(self.topology, Mesh):
            raise TypeError(f"{self.name} requires a Mesh topology")
        if self.topology.ndim < min_dims:
            raise ValueError(
                f"{self.name} requires a mesh of >= {min_dims} dimensions"
            )
        return self.topology

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} on {self.topology!r}>"
