"""Adaptive Broadcast (AB) — Al-Dubai, Ould-Khaoua & Mackenzie [27].

The coded-path adaptive broadcast, plane-based as the paper describes
(§2), running over west-first turn-model routing:

Step 1 — the source sends to the *nearest* corner of its own xy-plane
    and to the *opposite* corner of that plane (control field ``10``).
    These worms are routed adaptively (west-first, least-loaded
    channel) at simulation time.
Step 2 — each of the two corners relays along its z-pillar to the
    corresponding corners of every other plane (control field ``11``),
    so every plane receives the message via two corners in parallel.
Step 3 — every plane is divided into two halves of rows; each corner
    covers its half with a long coded-path worm.  The worms are
    *west-first legal*: a corner on the west edge sweeps its half with
    north/south column runs moving east; a corner on the east edge
    first exhausts all its west moves along its own row, then sweeps
    east — a west-first path may contain only one west phase, at the
    start.  The paper highlights exactly this property: AB needs only
    three steps but "uses longer paths in its third step".

``max_destinations_per_path`` reproduces AB's "strategy of limiting
the number of destination nodes for each message path": the coverage
worm is split into several bounded-fan-out worms that serialise on the
corner's two injection ports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.network.topology import Mesh
from repro.routing.cpr import split_deliveries
from repro.routing.paths import Path
from repro.routing.turn_model import WestFirst, WestFirstPlanar

__all__ = ["AdaptiveBroadcast"]


class AdaptiveBroadcast(BroadcastAlgorithm):
    """AB broadcast on a 2-D or 3-D mesh (radix >= 2 in x and y).

    Parameters
    ----------
    topology:
        The mesh to broadcast on.
    max_destinations_per_path:
        Optional bound on deliveries per step-3 worm (``None`` keeps
        one long worm per corner per plane, the paper's default
        behaviour whose cost/benefit §3.2–3.3 discusses).

    Examples
    --------
    >>> from repro.network import Mesh
    >>> ab = AdaptiveBroadcast(Mesh((8, 8, 8)))
    >>> ab.step_count()
    3
    """

    name = "AB"
    ports_required = 2
    adaptive = True

    def __init__(self, topology, max_destinations_per_path: Optional[int] = None):
        super().__init__(topology)
        mesh = self._require_mesh(min_dims=2)
        if mesh.ndim not in (2, 3):
            raise ValueError(f"AB supports 2-D/3-D meshes, got {mesh.ndim}-D")
        if mesh.dims[0] < 2 or mesh.dims[1] < 2:
            raise ValueError("AB needs radix >= 2 in the x and y dimensions")
        if max_destinations_per_path is not None and max_destinations_per_path < 1:
            raise ValueError("max_destinations_per_path must be >= 1")
        self.max_destinations_per_path = max_destinations_per_path
        self._kz = mesh.dims[2] if mesh.ndim == 3 else 1

    @classmethod
    def make_routing(cls, topology: Mesh):
        """The runtime routing function AB's adaptive worms use."""
        if topology.ndim == 3:
            return WestFirstPlanar(topology)
        return WestFirst(topology)

    def step_count(self) -> int:
        return 2 + (1 if self._kz > 1 else 0)

    # -- helpers ----------------------------------------------------------
    def _with_z(self, x: int, y: int, z: int) -> Coordinate:
        return (x, y) if self.topology.ndim == 2 else (x, y, z)

    def _plane_corners(self, source: Coordinate) -> Tuple[Coordinate, Coordinate]:
        """(nearest corner, opposite corner) of the source's plane."""
        kx, ky = self.topology.dims[0], self.topology.dims[1]
        sz = source[2] if self.topology.ndim == 3 else 0
        cx = 0 if source[0] <= (kx - 1) / 2 else kx - 1
        cy = 0 if source[1] <= (ky - 1) / 2 else ky - 1
        near = self._with_z(cx, cy, sz)
        far = self._with_z(kx - 1 - cx, ky - 1 - cy, sz)
        return near, far

    # -- west-first-legal coverage worms -------------------------------------
    def _half_cover_path(
        self, corner: Coordinate, rows: List[int], exclude: Coordinate
    ) -> Optional[Path]:
        """One west-first-legal worm from ``corner`` covering ``rows``.

        ``rows`` is the contiguous row set of the corner's half plane,
        with the corner's own row at one end.
        """
        kx = self.topology.dims[0]
        z = corner[2] if self.topology.ndim == 3 else None
        x0, y0 = corner[0], corner[1]
        assert rows[0] == y0 or rows[-1] == y0, "corner row must bound its half"
        ordered = rows if rows[0] == y0 else list(reversed(rows))

        def cell(x: int, y: int) -> Coordinate:
            return (x, y) if z is None else (x, y, z)

        nodes: List[Coordinate] = []
        if x0 == 0:
            # West-edge corner: pure column sweep moving east.
            sweep_rows = ordered
            for i, x in enumerate(range(kx)):
                run = sweep_rows if i % 2 == 0 else list(reversed(sweep_rows))
                nodes.extend(cell(x, y) for y in run)
        else:
            # East-edge corner: one west phase along the corner's own
            # row, then an eastward column sweep over the other rows.
            nodes.extend(cell(x, y0) for x in range(kx - 1, -1, -1))
            rest = ordered[1:]
            for i, x in enumerate(range(kx)):
                run = rest if i % 2 == 0 else list(reversed(rest))
                if run:
                    nodes.extend(cell(x, y) for y in run)
        deliveries = [n for n in nodes[1:] if n != exclude]
        if not deliveries:
            return None
        return Path(nodes, deliveries=deliveries)

    def _coverage_sends(
        self, corner: Coordinate, rows: List[int], exclude: Coordinate
    ) -> List[PathSend]:
        path = self._half_cover_path(corner, rows, exclude)
        if path is None:
            return []
        pieces = (
            [path]
            if self.max_destinations_per_path is None
            else split_deliveries(path, self.max_destinations_per_path)
        )
        return [
            PathSend(
                source=corner,
                deliveries=piece.deliveries,
                path=piece,
                control=ControlField.PASS_AND_RECEIVE,
            )
            for piece in pieces
        ]

    # -- schedule -----------------------------------------------------------
    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        mesh: Mesh = self.topology
        kx, ky = mesh.dims[0], mesh.dims[1]
        kz = self._kz
        sz = source[2] if mesh.ndim == 3 else 0
        near, far = self._plane_corners(source)

        raw_steps: List[List[PathSend]] = []

        # Step 1: source -> nearest and opposite plane corners (adaptive).
        step1: List[PathSend] = []
        for corner in (near, far):
            if corner != source:
                step1.append(
                    PathSend(
                        source=source,
                        deliveries=frozenset({corner}),
                        waypoints=(source, corner),
                        control=ControlField.PASS_AND_RECEIVE,
                    )
                )
        raw_steps.append(step1)

        # Step 2: corner pillars to the corresponding corners of all planes.
        if kz > 1:
            step2: List[PathSend] = []
            for corner in (near, far):
                step2.extend(self._pillar_sends(corner, sz, kz, source))
            raw_steps.append(step2)

        # Step 3: per plane, each corner covers its half of the rows.
        half = ky // 2
        step3: List[PathSend] = []
        for z in range(kz):
            for corner2d in (near, far):
                corner = self._with_z(corner2d[0], corner2d[1], z)
                if corner2d[1] == 0:
                    rows = list(range(0, half))
                else:
                    rows = list(range(half, ky))
                step3.extend(self._coverage_sends(corner, rows, source))
        raw_steps.append(step3)

        steps = [
            BroadcastStep(index=i + 1, sends=sends)
            for i, sends in enumerate(raw_steps)
            if sends
        ]
        # Re-index after dropping empty steps (degenerate meshes).
        steps = [
            BroadcastStep(index=i + 1, sends=s.sends) for i, s in enumerate(steps)
        ]
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)

    def _pillar_sends(
        self, corner: Coordinate, sz: int, kz: int, exclude: Coordinate
    ) -> List[PathSend]:
        """Step-2 worms from a source-plane corner along its z-pillar."""
        out: List[PathSend] = []
        x, y = corner[0], corner[1]
        for z_end in (0, kz - 1):
            if (z_end < sz and sz > 0) or (z_end > sz and sz < kz - 1):
                step = -1 if z_end < sz else 1
                nodes = [(x, y, z) for z in range(sz, z_end + step, step)]
                deliveries = [n for n in nodes[1:] if n != exclude]
                if not deliveries:
                    continue
                out.append(
                    PathSend(
                        source=corner,
                        deliveries=frozenset(deliveries),
                        waypoints=tuple(nodes),
                        control=ControlField.RECEIVE_AND_REPLICATE,
                    )
                )
        return out
