"""Broadcast executors.

Two ways to turn a :class:`~repro.core.schedule.BroadcastSchedule` into
arrival times:

:class:`UnitStepExecutor`
    closed-form, contention-free: every send begins the moment its
    sender holds the message and a free port, and takes
    ``Ts + hops·(β + tr) + (L−1)·β``.  This is the timing analysis the
    paper verifies its simulator against, and the oracle our tests
    compare the event-driven executor to.

:class:`EventDrivenExecutor`
    full wormhole simulation on :mod:`repro.sim`: worms are
    *locally causal* — a node launches its scheduled sends the instant
    its own copy arrives — and contend for channels and ports exactly
    as the paper's CSIM path processes do.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.schedule import BroadcastSchedule, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import DeliveryRecord, Message, MessageKind
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Topology
from repro.network.wormhole import PathTransmission
from repro.routing.base import RoutingFunction

__all__ = [
    "BroadcastOutcome",
    "UnitStepExecutor",
    "BarrierStepExecutor",
    "EventDrivenExecutor",
]


@dataclass
class BroadcastOutcome:
    """Arrival times and derived statistics of one broadcast operation.

    Parameters
    ----------
    algorithm:
        Name of the algorithm that produced the schedule.
    source:
        Broadcasting node.
    start_time:
        Simulation time the broadcast was initiated.
    arrivals:
        Absolute full-message arrival time per destination node.
    total_sends:
        Worms launched by the schedule.
    """

    algorithm: str
    source: Coordinate
    start_time: float
    arrivals: Dict[Coordinate, float]
    total_sends: int

    @property
    def delivered_count(self) -> int:
        return len(self.arrivals)

    def latencies(self) -> np.ndarray:
        """Per-destination latency (arrival − start), unsorted."""
        return np.asarray(
            [t - self.start_time for t in self.arrivals.values()], dtype=float
        )

    @property
    def network_latency(self) -> float:
        """The paper's network-level metric: time until the last arrival."""
        if not self.arrivals:
            raise ValueError("broadcast delivered nothing")
        return max(self.arrivals.values()) - self.start_time

    @property
    def mean_latency(self) -> float:
        """Mean destination latency (the paper's ``Mnl``)."""
        return float(self.latencies().mean())

    @property
    def latency_std(self) -> float:
        """Standard deviation of destination latencies (``SD``)."""
        return float(self.latencies().std())

    @property
    def coefficient_of_variation(self) -> float:
        """The paper's node-level metric ``CV = SD / Mnl``."""
        mean = self.mean_latency
        if mean == 0:
            return 0.0 if self.latency_std == 0 else math.inf
        return self.latency_std / mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastOutcome {self.algorithm} from {self.source}:"
            f" {self.delivered_count} delivered,"
            f" net={self.network_latency:.3f}, cv={self.coefficient_of_variation:.3f}>"
        )


def _delivery_offsets(
    send: PathSend, topology: Topology
) -> Tuple[List[Tuple[Coordinate, int]], int]:
    """Hop offset of each delivery along the send's route, plus total hops."""
    if send.path is not None:
        offsets = [
            (node, i)
            for i, node in enumerate(send.path.nodes)
            if node in send.deliveries
        ]
        return offsets, send.path.hop_count
    offsets = []
    hops = 0
    previous = send.waypoints[0]
    for waypoint in send.waypoints[1:]:
        hops += topology.distance(previous, waypoint)
        previous = waypoint
        if waypoint in send.deliveries:
            offsets.append((waypoint, hops))
    return offsets, hops


class UnitStepExecutor:
    """Contention-free closed-form execution of a broadcast schedule.

    Parameters
    ----------
    topology:
        Shape the schedule runs on (for adaptive waypoint distances).
    config:
        Timing constants and the port budget.
    """

    def __init__(self, topology: Topology, config: Optional[NetworkConfig] = None):
        self.topology = topology
        self.config = config or NetworkConfig()

    def execute(
        self,
        schedule: BroadcastSchedule,
        length_flits: int,
        start_time: float = 0.0,
    ) -> BroadcastOutcome:
        """Compute every node's arrival time analytically."""
        timing = self.config.timing
        startup = self.config.startup_latency
        hop_time = timing.header_hop_time
        body = timing.body_time(length_flits)

        ready: Dict[Coordinate, float] = {schedule.source: start_time}
        port_heaps: Dict[Coordinate, List[float]] = {}
        arrivals: Dict[Coordinate, float] = {}

        for step in schedule.steps:
            for send in step.sends:
                sender_ready = ready.get(send.source)
                if sender_ready is None:
                    raise ValueError(
                        f"sender {send.source} acts in step {step.index} without"
                        " having received — schedule violates causality"
                    )
                heap = port_heaps.get(send.source)
                if heap is None:
                    heap = [sender_ready] * self.config.ports_per_node
                    port_heaps[send.source] = heap
                port_free = heapq.heappop(heap)
                begin = max(port_free, sender_ready)
                offsets, total_hops = _delivery_offsets(send, self.topology)
                for node, hops in offsets:
                    arrival = begin + startup + hops * hop_time + body
                    arrivals[node] = arrival
                    ready.setdefault(node, arrival)
                completion = begin + startup + total_hops * hop_time + body
                heapq.heappush(heap, completion)

        return BroadcastOutcome(
            algorithm=schedule.algorithm,
            source=schedule.source,
            start_time=start_time,
            arrivals=arrivals,
            total_sends=schedule.total_sends(),
        )


class BarrierStepExecutor:
    """Step-synchronised closed-form execution.

    Models the literal "message-passing step" abstraction: step ``t+1``
    begins only when *every* worm of step ``t`` has completed (a global
    barrier).  This is the semantics under which the paper's step-count
    arguments — and its node-level CV comparisons — are exact: a node's
    arrival time is determined by the step it receives in plus its
    position on its worm's path, with no cross-plane pipelining skew.

    Compare with :class:`UnitStepExecutor` (locally causal, no
    barriers) and :class:`EventDrivenExecutor` (locally causal with
    channel contention); EXPERIMENTS.md discusses how the choice
    affects the CV tables.
    """

    def __init__(self, topology: Topology, config: Optional[NetworkConfig] = None):
        self.topology = topology
        self.config = config or NetworkConfig()

    def execute(
        self,
        schedule: BroadcastSchedule,
        length_flits: int,
        start_time: float = 0.0,
    ) -> BroadcastOutcome:
        """Compute arrival times under global step barriers."""
        timing = self.config.timing
        startup = self.config.startup_latency
        hop_time = timing.header_hop_time
        body = timing.body_time(length_flits)

        barrier = start_time
        arrivals: Dict[Coordinate, float] = {}
        for step in schedule.steps:
            port_heaps: Dict[Coordinate, List[float]] = {}
            step_end = barrier
            for send in step.sends:
                heap = port_heaps.get(send.source)
                if heap is None:
                    heap = [barrier] * self.config.ports_per_node
                    port_heaps[send.source] = heap
                begin = heapq.heappop(heap)
                offsets, total_hops = _delivery_offsets(send, self.topology)
                for node, hops in offsets:
                    arrivals[node] = begin + startup + hops * hop_time + body
                completion = begin + startup + total_hops * hop_time + body
                heapq.heappush(heap, completion)
                step_end = max(step_end, completion)
            barrier = step_end

        return BroadcastOutcome(
            algorithm=schedule.algorithm,
            source=schedule.source,
            start_time=start_time,
            arrivals=arrivals,
            total_sends=schedule.total_sends(),
        )


class EventDrivenExecutor:
    """Event-driven execution of broadcast schedules on a network.

    Parameters
    ----------
    network:
        The simulator (provides the clock, channels, ports).
    adaptive_routing:
        Routing function for adaptive (waypoint) sends; required when
        the schedule contains any.

    Notes
    -----
    Launching is *locally causal*: a node's scheduled sends are issued
    (in step order, through its FIFO injection ports) the moment its
    own copy fully arrives.  No global step barrier exists — exactly
    like a real implementation, where the arriving header's control
    field tells the router what to forward next.
    """

    def __init__(
        self,
        network: NetworkSimulator,
        adaptive_routing: Optional[RoutingFunction] = None,
    ):
        self.network = network
        self.adaptive_routing = adaptive_routing

    # -- public API -------------------------------------------------------
    def launch(
        self,
        schedule: BroadcastSchedule,
        length_flits: int,
        kind: MessageKind = MessageKind.BROADCAST,
    ):
        """Start the broadcast now; returns a process yielding the outcome."""
        return self.network.env.process(
            self._run(schedule, length_flits, kind)
        )

    def execute(
        self, schedule: BroadcastSchedule, length_flits: int
    ) -> BroadcastOutcome:
        """Run the network until this broadcast completes; return outcome."""
        process = self.launch(schedule, length_flits)
        return self.network.env.run(until=process)

    # -- internals -----------------------------------------------------------
    def _make_transmission(
        self, send: PathSend, step: int, length_flits: int, kind: MessageKind
    ) -> PathTransmission:
        message = Message(
            source=send.source,
            destinations=send.deliveries,
            length_flits=length_flits,
            kind=kind,
            control=send.control,
            created_at=self.network.env.now,
            step=step,
        )
        if send.path is not None:
            return PathTransmission(self.network, message, path=send.path)
        if self.adaptive_routing is None:
            raise ValueError(
                "schedule contains adaptive sends but no adaptive_routing"
                " was supplied"
            )
        return PathTransmission(
            self.network,
            message,
            waypoints=send.waypoints,
            routing=self.adaptive_routing,
            adaptive=True,
        )

    def _run(self, schedule: BroadcastSchedule, length_flits: int, kind: MessageKind):
        env = self.network.env
        start_time = env.now
        pending = schedule.sends_by_node()
        expected = len(schedule.covered_nodes()) - 1
        arrivals: Dict[Coordinate, float] = {}
        our_uids: set = set()
        done = env.event()
        transmissions = []

        def launch_from(node: Coordinate) -> None:
            for step, send in pending.pop(node, ()):
                transmission = self._make_transmission(
                    send, step, length_flits, kind
                )
                uid = transmission.message.uid
                our_uids.add(uid)
                # uid-keyed dispatch: this broadcast's deliveries reach
                # only this hook, however many run concurrently.
                self.network.add_uid_hook(uid, on_delivery)
                transmissions.append(transmission.start())

        def on_delivery(record: DeliveryRecord) -> None:
            if record.node in arrivals:  # pragma: no cover - exactly-once guard
                return
            arrivals[record.node] = record.time
            launch_from(record.node)
            if len(arrivals) == expected and not done.triggered:
                done.succeed()

        try:
            launch_from(schedule.source)
            if expected:
                yield done
            # Let the last worms drain their channels before reporting,
            # so back-to-back broadcasts see a consistent network.
            alive = [p for p in transmissions if p.is_alive]
            if alive:
                yield env.all_of(alive)
        finally:
            for uid in our_uids:
                self.network.remove_uid_hook(uid)

        return BroadcastOutcome(
            algorithm=schedule.algorithm,
            source=schedule.source,
            start_time=start_time,
            arrivals=arrivals,
            total_sends=schedule.total_sends(),
        )
