"""Extended Dominating Nodes (EDN) — Tsai & McKinley [20].

A multiport (3-port) broadcast built on dominating-node levels.  The
reproduction uses the three-phase construction documented in DESIGN.md
(the full dominating-set tables of the original paper are not
reproduced in the paper under study, which only quotes the step-count
formula):

Phase A — *plane distribution* (``k`` steps on conforming sizes):
    the source's xy-plane is tiled into 4×4 blocks; recursive quadrant
    splitting of the block grid hands a representative of every block a
    copy, using up to 3 ports per step.
Phase B — *z spread* (``m + 2`` steps):
    each block representative recursively doubles along the z
    dimension, giving every (block, plane) pair a holder.
Phase C — *block coverage* (2 steps):
    each holder covers its ≤ 4×4 block with 3-port quadrant splitting
    (1 → 4 → 16 nodes in two steps).

On the paper's conforming sizes ``(4·2^k) × (4·2^k) × (4·2^m)`` the
total is exactly the quoted ``k + m + 4``.  Non-conforming sizes (the
paper's EDN "requires that the number of nodes along a given dimension
be a multiple of 4") are handled by uneven quadrant splits — e.g. the
10×10×10 point of Fig. 1 — with step counts from the same recursions.

All sends are unicast worms on dimension-ordered routes.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.network.topology import Mesh
from repro.routing.cpr import straight_line_path
from repro.routing.dimension_ordered import DimensionOrdered
from repro.routing.paths import Path

__all__ = ["ExtendedDominatingNodes"]

#: Edge length of the basic dominated block.
BLOCK = 4

Rect = Tuple[int, int, int, int]  # x0, y0, width, height (in block units or cells)


def _clog2(n: int) -> int:
    return math.ceil(math.log2(n)) if n > 1 else 0


class ExtendedDominatingNodes(BroadcastAlgorithm):
    """EDN broadcast on a 2-D or 3-D mesh.

    Examples
    --------
    >>> from repro.network import Mesh
    >>> edn = ExtendedDominatingNodes(Mesh((8, 8, 8)))   # k=1, m=1
    >>> edn.step_count()                                 # k + m + 4
    6
    """

    name = "EDN"
    ports_required = 3
    adaptive = False

    def __init__(self, topology):
        super().__init__(topology)
        mesh = self._require_mesh(min_dims=2)
        if mesh.ndim not in (2, 3):
            raise ValueError(f"EDN supports 2-D/3-D meshes, got {mesh.ndim}-D")
        self._dor = DimensionOrdered(mesh)
        kx, ky = mesh.dims[0], mesh.dims[1]
        self._kz = mesh.dims[2] if mesh.ndim == 3 else 1
        self._bx = math.ceil(kx / BLOCK)
        self._by = math.ceil(ky / BLOCK)

    # -- step count -------------------------------------------------------
    def phase_steps(self) -> Tuple[int, int, int]:
        """(phase A, phase B, phase C) step counts."""
        mesh: Mesh = self.topology  # checked in __init__
        kx, ky = mesh.dims[0], mesh.dims[1]
        a = _clog2(max(self._bx, self._by))
        b = _clog2(self._kz)
        wmax = min(BLOCK, kx)
        hmax = min(BLOCK, ky)
        c = _clog2(max(wmax, hmax))
        return a, b, c

    def step_count(self) -> int:
        return sum(self.phase_steps())

    @staticmethod
    def conforming_parameters(dims) -> Tuple[int, int] | None:
        """Return ``(k, m)`` when ``dims`` matches the paper's family.

        The paper's formula targets ``(4·2^k) × (4·2^k) × (4·2^m)``
        networks; for those this returns ``(k, m)`` with step count
        ``k + m + 4``; otherwise ``None``.
        """
        if len(dims) != 3:
            return None
        kx, ky, kz = dims
        if kx != ky:
            return None
        for base, out in ((kx, 0), (kz, 1)):
            if base < 4 or base % 4:
                return None
            q = base // 4
            if q & (q - 1):
                return None
        return (kx // 4).bit_length() - 1, (kz // 4).bit_length() - 1

    # -- geometry helpers ----------------------------------------------------
    def _block_of(self, coord: Coordinate) -> Tuple[int, int]:
        return coord[0] // BLOCK, coord[1] // BLOCK

    def _block_cells(self, bx: int, by: int) -> Rect:
        """Cell rectangle (x0, y0, w, h) of block ``(bx, by)``."""
        mesh: Mesh = self.topology
        x0, y0 = bx * BLOCK, by * BLOCK
        w = min(BLOCK, mesh.dims[0] - x0)
        h = min(BLOCK, mesh.dims[1] - y0)
        return (x0, y0, w, h)

    def _rep(self, bx: int, by: int, z: int) -> Coordinate:
        """The dominating (representative) node of a block in plane z."""
        x0, y0, w, h = self._block_cells(bx, by)
        rep2d = (x0 + (w - 1) // 2, y0 + (h - 1) // 2)
        return self._with_z(rep2d, z)

    def _with_z(self, xy: Tuple[int, int], z: int) -> Coordinate:
        if self.topology.ndim == 2:
            return xy
        return (xy[0], xy[1], z)

    def _unicast(self, src: Coordinate, dst: Coordinate) -> PathSend:
        nodes = self._dor.path(src, dst)
        return PathSend(
            source=src,
            deliveries=frozenset({dst}),
            path=Path(nodes, deliveries=[dst]),
            control=ControlField.RECEIVE,
        )

    # -- schedule construction --------------------------------------------------
    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        a_steps, b_steps, c_steps = self.phase_steps()
        total = a_steps + b_steps + c_steps
        level_sends: List[List[PathSend]] = [[] for _ in range(total)]
        sz = source[2] if self.topology.ndim == 3 else 0

        # Phase A: quadrant recursion over the block grid in the source plane.
        # holders: block -> node holding the copy for that block.
        holders = {self._block_of(source): source}
        self._split_rect(
            rect=(0, 0, self._bx, self._by),
            holder_block=self._block_of(source),
            holders=holders,
            z=sz,
            level=0,
            out=level_sends,
            rep_fn=lambda bx, by: self._rep(bx, by, sz),
        )

        # Phase B: recursive doubling along z from every block holder.
        plane_holders = {}  # (block, z) -> node
        for block, node in holders.items():
            plane_holders[(block, sz)] = node
            if self._kz > 1:
                self._cover_z(
                    block, node, 0, self._kz, a_steps, level_sends, plane_holders
                )

        # Phase C: quadrant recursion over the cells of each block, per plane.
        for (block, z), node in plane_holders.items():
            x0, y0, w, h = self._block_cells(*block)
            cell_holders = {(node[0], node[1]): node}
            self._split_cells(
                rect=(x0, y0, w, h),
                holder_xy=(node[0], node[1]),
                holders=cell_holders,
                z=z,
                level=a_steps + b_steps,
                out=level_sends,
            )

        steps = [
            BroadcastStep(index=i + 1, sends=sends)
            for i, sends in enumerate(level_sends)
        ]
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)

    def _split_rect(self, rect, holder_block, holders, z, level, out, rep_fn) -> None:
        """Quadrant recursion over a rectangle of *blocks*."""
        x0, y0, w, h = rect
        if w <= 1 and h <= 1:
            return
        wx = (w + 1) // 2
        wy = (h + 1) // 2
        quads = []
        for qx0, qw in ((x0, wx), (x0 + wx, w - wx)):
            for qy0, qh in ((y0, wy), (y0 + wy, h - wy)):
                if qw > 0 and qh > 0:
                    quads.append((qx0, qy0, qw, qh))
        hx, hy = holder_block
        own = next(
            q for q in quads if q[0] <= hx < q[0] + q[2] and q[1] <= hy < q[1] + q[3]
        )
        holder_node = holders[holder_block]
        for q in quads:
            if q is own:
                continue
            # Target block: the holder's relative position clipped into q.
            tbx = min(q[0] + (hx - own[0]), q[0] + q[2] - 1)
            tby = min(q[1] + (hy - own[1]), q[1] + q[3] - 1)
            target_node = rep_fn(tbx, tby)
            out[level].append(self._unicast(holder_node, target_node))
            holders[(tbx, tby)] = target_node
            self._split_rect(q, (tbx, tby), holders, z, level + 1, out, rep_fn)
        self._split_rect(own, holder_block, holders, z, level + 1, out, rep_fn)

    def _cover_z(self, block, holder, lo, hi, level, out, plane_holders) -> None:
        """Recursive doubling over planes ``[lo, hi)`` along z."""
        n = hi - lo
        if n <= 1:
            return
        half = (n + 1) // 2
        z = holder[2]
        if z < lo + half:
            partner_z = min(z + half, hi - 1)
        else:
            partner_z = z - half
        partner = self._rep(*block, partner_z)
        out[level].append(self._unicast(holder, partner))
        plane_holders[(block, partner_z)] = partner
        left, right = (lo, lo + half), (lo + half, hi)
        own_part, other_part = (left, right) if z < lo + half else (right, left)
        self._cover_z(block, holder, own_part[0], own_part[1], level + 1, out, plane_holders)
        self._cover_z(block, partner, other_part[0], other_part[1], level + 1, out, plane_holders)

    def _split_cells(self, rect, holder_xy, holders, z, level, out) -> None:
        """Quadrant recursion over the *cells* of one block in plane z."""
        x0, y0, w, h = rect
        if w <= 1 and h <= 1:
            return
        wx = (w + 1) // 2
        wy = (h + 1) // 2
        quads = []
        for qx0, qw in ((x0, wx), (x0 + wx, w - wx)):
            for qy0, qh in ((y0, wy), (y0 + wy, h - wy)):
                if qw > 0 and qh > 0:
                    quads.append((qx0, qy0, qw, qh))
        hx, hy = holder_xy
        own = next(
            q for q in quads if q[0] <= hx < q[0] + q[2] and q[1] <= hy < q[1] + q[3]
        )
        holder_node = holders[holder_xy]
        for q in quads:
            if q is own:
                continue
            tx = min(q[0] + (hx - own[0]), q[0] + q[2] - 1)
            ty = min(q[1] + (hy - own[1]), q[1] + q[3] - 1)
            target = self._with_z((tx, ty), z)
            out[level].append(self._unicast(holder_node, target))
            holders[(tx, ty)] = target
            self._split_cells(q, (tx, ty), holders, z, level + 1, out)
        self._split_cells(own, holder_xy, holders, z, level + 1, out)
