"""The paper's contribution: broadcast algorithms for wormhole meshes.

Four algorithms, expressed as *schedule generators*: given a topology
and a source node, each produces a :class:`BroadcastSchedule` — an
ordered list of message-passing steps, each a set of (possibly
multidestination coded-path) sends.  Two executors realise a schedule:
the analytic :class:`UnitStepExecutor` (contention-free closed-form
timing) and the :class:`EventDrivenExecutor` (full wormhole simulation
with channel contention on the :mod:`repro.sim` kernel).

Algorithms
----------
RecursiveDoubling (RD)
    Barnett et al. — ``log2 N`` unicast steps, dimension-ordered.
ExtendedDominatingNodes (EDN)
    Tsai & McKinley — multiport dominating-node levels,
    ``k + m + 4`` steps on conforming sizes.
DeterministicBroadcast (DB)
    Al-Dubai & Ould-Khaoua — coded-path routing, 4 steps.
AdaptiveBroadcast (AB)
    Al-Dubai et al. — coded-path + west-first turn model, 3 steps.
"""

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.core.recursive_doubling import RecursiveDoubling
from repro.core.edn import ExtendedDominatingNodes
from repro.core.deterministic_broadcast import DeterministicBroadcast
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.registry import ALGORITHMS, get_algorithm, algorithm_names
from repro.core.executors import (
    BarrierStepExecutor,
    BroadcastOutcome,
    EventDrivenExecutor,
    UnitStepExecutor,
)
from repro.core.validation import (
    ScheduleValidationError,
    check_causality,
    check_coverage,
    check_paths,
    check_ports,
    validate_schedule,
)

__all__ = [
    "ALGORITHMS",
    "AdaptiveBroadcast",
    "BarrierStepExecutor",
    "BroadcastAlgorithm",
    "BroadcastOutcome",
    "BroadcastSchedule",
    "BroadcastStep",
    "DeterministicBroadcast",
    "EventDrivenExecutor",
    "ExtendedDominatingNodes",
    "PathSend",
    "RecursiveDoubling",
    "ScheduleValidationError",
    "UnitStepExecutor",
    "algorithm_names",
    "check_causality",
    "check_coverage",
    "check_paths",
    "check_ports",
    "get_algorithm",
    "validate_schedule",
]
