"""Recursive Doubling (RD) — Barnett et al. [2].

The classic dimension-sweep broadcast: dimensions are processed in
order, and inside each dimension every holder repeatedly halves the
line segment it is responsible for, sending one unicast to the node at
its own relative position in the other half.  ``⌈log2 k⌉`` steps per
radix-``k`` dimension, so ``log2 N`` steps on power-of-two meshes —
the step count the paper quotes.

All sends are single-destination worms on dimension-ordered routes
(each is in fact a straight line within one dimension).  RD needs only
one injection port; the paper notes it cannot exploit multiport
routers.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.base import BroadcastAlgorithm
from repro.core.schedule import BroadcastSchedule, BroadcastStep, PathSend
from repro.network.coordinates import Coordinate
from repro.network.message import ControlField
from repro.routing.cpr import straight_line_path
from repro.routing.paths import Path

__all__ = ["RecursiveDoubling"]


class RecursiveDoubling(BroadcastAlgorithm):
    """RD broadcast on an n-dimensional mesh.

    Examples
    --------
    >>> from repro.network import Mesh
    >>> rd = RecursiveDoubling(Mesh((8, 8, 8)))
    >>> rd.step_count()
    9
    >>> rd.schedule((0, 0, 0)).num_steps
    9
    """

    name = "RD"
    ports_required = 1
    adaptive = False

    def step_count(self) -> int:
        return sum(
            math.ceil(math.log2(d)) for d in self.topology.dims if d > 1
        )

    def build_schedule(self, source: Coordinate) -> BroadcastSchedule:
        dims = self.topology.dims
        steps: List[BroadcastStep] = []
        holders: List[Coordinate] = [source]
        step_index = 0
        for axis, radix in enumerate(dims):
            if radix == 1:
                continue
            levels = math.ceil(math.log2(radix))
            level_sends: List[List[PathSend]] = [[] for _ in range(levels)]
            for holder in holders:
                self._cover_line(holder, axis, 0, radix, 0, level_sends)
            for sends in level_sends:
                step_index += 1
                steps.append(BroadcastStep(index=step_index, sends=sends))
            holders = [
                h[:axis] + (v,) + h[axis + 1 :] for h in holders for v in range(radix)
            ]
        return BroadcastSchedule(algorithm=self.name, source=source, steps=steps)

    def _cover_line(
        self,
        holder: Coordinate,
        axis: int,
        lo: int,
        hi: int,
        level: int,
        out: List[List[PathSend]],
    ) -> None:
        """Recursive halving of positions ``[lo, hi)`` along ``axis``.

        ``holder`` owns the segment and holds the message.  The segment
        splits into a left part of ``⌈n/2⌉`` and a right part of
        ``⌊n/2⌋`` positions; the holder unicasts to the node at its own
        relative offset in the opposite part (no send when the opposite
        part has no such offset), then both recurse.
        """
        n = hi - lo
        if n <= 1:
            return
        half = (n + 1) // 2  # size of the left part
        pos = holder[axis]
        if pos < lo + half:
            # Mirror into the (possibly smaller) right part; when the
            # exact mirror does not exist, the rightmost node stands in
            # so the part still gains a holder.
            partner_pos = min(pos + half, hi - 1)
        else:
            partner_pos = pos - half
        partner = holder[:axis] + (partner_pos,) + holder[axis + 1 :]
        path = straight_line_path(holder, axis, partner_pos)
        out[level].append(
            PathSend(
                source=holder,
                deliveries=frozenset({partner}),
                path=Path(path.nodes, deliveries=[partner]),
                control=ControlField.RECEIVE,
            )
        )
        left = (lo, lo + half)
        right = (lo + half, hi)
        own_part, other_part = (
            (left, right) if pos < lo + half else (right, left)
        )
        self._cover_line(holder, axis, own_part[0], own_part[1], level + 1, out)
        self._cover_line(partner, axis, other_part[0], other_part[1], level + 1, out)
