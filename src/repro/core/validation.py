"""Schedule validation.

Independent checkers for the invariants every broadcast schedule must
satisfy; the test suite runs them (plus hypothesis-generated cases)
over all four algorithms, and experiments may run them defensively.

Invariants
----------
coverage
    every non-source node receives exactly once; the source never.
causality
    no node sends in a step earlier than (or equal to) the step it
    first receives in.
paths
    every deterministic path is a real channel walk on the topology;
    every adaptive send's waypoints are pairwise routable.
ports
    no node launches more sends in one step than its port budget
    (optionally relaxed — AB's destination-limited mode deliberately
    queues extra worms on its ports).
"""

from __future__ import annotations

from typing import Dict

from repro.core.schedule import BroadcastSchedule
from repro.network.coordinates import Coordinate
from repro.network.topology import Topology

__all__ = [
    "ScheduleValidationError",
    "check_coverage",
    "check_causality",
    "check_paths",
    "check_ports",
    "validate_schedule",
]


class ScheduleValidationError(AssertionError):
    """A broadcast schedule violates a structural invariant."""


def check_coverage(schedule: BroadcastSchedule, topology: Topology) -> None:
    """Every non-source node delivered exactly once; the source never."""
    counts: Dict[Coordinate, int] = {}
    for _, send in schedule.all_sends():
        for node in send.deliveries:
            counts[node] = counts.get(node, 0) + 1
    if schedule.source in counts:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: source {schedule.source} receives its own"
            " broadcast"
        )
    missing = [n for n in topology.nodes() if n != schedule.source and n not in counts]
    if missing:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: {len(missing)} nodes never covered,"
            f" e.g. {missing[:5]}"
        )
    duplicates = {n: c for n, c in counts.items() if c > 1}
    if duplicates:
        sample = sorted(duplicates.items())[:5]
        raise ScheduleValidationError(
            f"{schedule.algorithm}: {len(duplicates)} nodes covered more than"
            f" once, e.g. {sample}"
        )
    outside = [n for n in counts if not topology.contains(n)]
    if outside:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: deliveries outside the topology: {outside[:5]}"
        )


def check_causality(schedule: BroadcastSchedule) -> None:
    """A node only sends strictly after the step it receives in."""
    received = schedule.receive_step()
    for step_index, send in schedule.all_sends():
        got = received.get(send.source)
        if got is None:
            raise ScheduleValidationError(
                f"{schedule.algorithm}: step {step_index} sender {send.source}"
                " never receives the message"
            )
        if got >= step_index:
            raise ScheduleValidationError(
                f"{schedule.algorithm}: {send.source} sends in step"
                f" {step_index} but only receives in step {got}"
            )


def check_paths(schedule: BroadcastSchedule, topology: Topology) -> None:
    """Deterministic paths are valid channel walks; waypoints in range."""
    for step_index, send in schedule.all_sends():
        if send.path is not None:
            try:
                send.path.validate(topology)
            except ValueError as exc:
                raise ScheduleValidationError(
                    f"{schedule.algorithm}: step {step_index} path invalid: {exc}"
                ) from exc
        else:
            for waypoint in send.waypoints:
                if not topology.contains(waypoint):
                    raise ScheduleValidationError(
                        f"{schedule.algorithm}: waypoint {waypoint} outside"
                        " the topology"
                    )


def check_ports(
    schedule: BroadcastSchedule, ports: int, strict: bool = True
) -> None:
    """Per-step per-node send counts fit the port budget."""
    worst = schedule.max_concurrent_sends()
    if strict and worst > ports:
        raise ScheduleValidationError(
            f"{schedule.algorithm}: a node launches {worst} sends in one step"
            f" but has only {ports} ports"
        )


def validate_schedule(
    schedule: BroadcastSchedule,
    topology: Topology,
    ports: int,
    strict_ports: bool = True,
) -> None:
    """Run every structural check (raises on the first violation)."""
    check_coverage(schedule, topology)
    check_causality(schedule)
    check_paths(schedule, topology)
    check_ports(schedule, ports, strict=strict_ports)
