"""Global combine (reduction) — the broadcast's dual.

Tsai & McKinley's EDN paper treats *broadcast and global combine*
as a pair: a reduction gathers a value from every node to a root,
combining partial results on the way — the same tree as a broadcast,
traversed leaf-to-root.  This module derives a reduction from any
:class:`~repro.core.schedule.BroadcastSchedule`:

* the broadcast's delivery relation defines the tree: the worm that
  delivered node ``n``'s copy defines ``parent(n)``;
* the reduction runs the tree bottom-up: a node combines its own value
  with its children's partials and sends one worm to its parent once
  the last child's partial has arrived.

:class:`ReductionExecutor` computes completion analytically with the
same timing model as the broadcast executors; by tree symmetry a
reduction over a broadcast tree costs the same as the broadcast under
step-synchronised semantics, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.schedule import BroadcastSchedule
from repro.network.coordinates import Coordinate
from repro.network.network import NetworkConfig
from repro.network.topology import Topology

__all__ = ["ReductionTree", "ReductionOutcome", "ReductionExecutor"]


@dataclass(frozen=True)
class ReductionTree:
    """The combining tree extracted from a broadcast schedule.

    Parameters
    ----------
    root:
        The reduction target (the broadcast's source).
    parent:
        Map child → (parent, hops) where ``hops`` is the worm-path
        distance between them in the originating schedule.
    """

    root: Coordinate
    parent: Dict[Coordinate, Tuple[Coordinate, int]]

    @property
    def num_nodes(self) -> int:
        return len(self.parent) + 1

    def children(self) -> Dict[Coordinate, List[Coordinate]]:
        """Map node → its children (leaves absent)."""
        out: Dict[Coordinate, List[Coordinate]] = {}
        for child, (par, _) in self.parent.items():
            out.setdefault(par, []).append(child)
        return out

    def depth(self) -> int:
        """Longest child-chain length (send rounds needed)."""
        memo: Dict[Coordinate, int] = {}

        def depth_of(node: Coordinate) -> int:
            if node == self.root:
                return 0
            if node not in memo:
                memo[node] = 1 + depth_of(self.parent[node][0])
            return memo[node]

        return max((depth_of(n) for n in self.parent), default=0)

    @classmethod
    def from_broadcast(
        cls,
        schedule: BroadcastSchedule,
        topology: Optional[Topology] = None,
    ) -> "ReductionTree":
        """Extract the tree: each node's parent is the worm that fed it.

        For a multidestination worm the parent of every delivery is the
        worm's *source* (the combining worm retraces the path), and the
        hop count is the delivery's offset along the path.  Waypoint
        (adaptive) sends need ``topology`` for minimal-distance offsets;
        without it each waypoint gap counts as one hop.
        """
        parent: Dict[Coordinate, Tuple[Coordinate, int]] = {}
        for _, send in schedule.all_sends():
            if send.path is not None:
                offsets = {
                    node: i for i, node in enumerate(send.path.nodes)
                }
            else:
                offsets = {send.waypoints[0]: 0}
                hops = 0
                previous = send.waypoints[0]
                for waypoint in send.waypoints[1:]:
                    hops += (
                        topology.distance(previous, waypoint)
                        if topology is not None
                        else 1
                    )
                    offsets[waypoint] = hops
                    previous = waypoint
            for node in send.deliveries:
                if node not in parent:  # first delivery wins (exactly-once)
                    parent[node] = (send.source, max(offsets.get(node, 1), 1))
        return cls(root=schedule.source, parent=parent)


@dataclass(frozen=True)
class ReductionOutcome:
    """Result of one analytic reduction run."""

    root: Coordinate
    completion_time: float
    send_times: Dict[Coordinate, float]
    combine_count: int

    @property
    def latency(self) -> float:
        return self.completion_time


class ReductionExecutor:
    """Analytic bottom-up execution of a reduction tree.

    Parameters
    ----------
    topology:
        Used only for waypoint-based distance corrections.
    config:
        Timing constants; ``ports_per_node`` bounds a node's parallel
        receive-combine capacity the way it bounds broadcast sends.
    combine_time:
        Extra per-combine computation time (default 0: pure
        communication, as in the paper's latency analyses).
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        combine_time: float = 0.0,
    ):
        if combine_time < 0:
            raise ValueError("combine_time must be >= 0")
        self.topology = topology
        self.config = config or NetworkConfig()
        self.combine_time = combine_time

    def execute(
        self,
        tree: ReductionTree,
        length_flits: int,
        start_time: float = 0.0,
    ) -> ReductionOutcome:
        """Compute when each partial is sent and when the root finishes."""
        timing = self.config.timing
        startup = self.config.startup_latency
        body = timing.body_time(length_flits)
        children = tree.children()

        ready: Dict[Coordinate, float] = {}

        def ready_time(node: Coordinate) -> float:
            """When ``node`` holds its fully combined partial."""
            cached = ready.get(node)
            if cached is not None:
                return cached
            arrivals = []
            for child in children.get(node, ()):  # leaves: no children
                hops = tree.parent[child][1]
                sent = ready_time(child) + startup
                arrivals.append(
                    sent + hops * timing.header_hop_time + body
                )
            value = start_time
            if arrivals:
                value = max(arrivals) + self.combine_time
            ready[node] = value
            return value

        # Recursion depth equals the tree height, which is bounded by
        # the originating schedule's step count (<= ~12 on 4096 nodes).
        completion = ready_time(tree.root)
        for node in tree.parent:
            ready_time(node)

        send_times = {
            child: ready[child] + startup for child in tree.parent
        }
        return ReductionOutcome(
            root=tree.root,
            completion_time=completion,
            send_times=send_times,
            combine_count=len(tree.parent),
        )

    def reduce_from_broadcast(
        self,
        schedule: BroadcastSchedule,
        length_flits: int,
    ) -> ReductionOutcome:
        """Convenience: derive the tree and run the reduction."""
        return self.execute(
            ReductionTree.from_broadcast(schedule, self.topology), length_flits
        )
