"""Turn-model adaptive routing (Glass & Ni).

The turn model derives deadlock-free *partially adaptive* routing by
prohibiting just enough turns to break every channel-dependence cycle.
The paper's AB algorithm uses the **west-first** model: all west (x−)
moves must be made before any other move, which prohibits exactly the
(north→west) and (south→west) turns.  Once the header has no west
component left it may adapt freely among the remaining minimal
directions.

Conventions (2-D): dimension 0 is the x axis, west = x−, east = x+;
dimension 1 is the y axis, south = y−, north = y+.

For 3-D the AB algorithm treats the network as a stack of xy planes
(paper §2), so :class:`WestFirstPlanar` routes the plane-crossing (z)
component first as a straight line and then applies 2-D west-first
inside the destination plane.  Dependences then flow one way
(z-channels → plane channels) and the plane sub-graphs are acyclic by
the turn model, so the composition stays deadlock-free.
"""

from __future__ import annotations

from typing import List

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology
from repro.routing.base import RoutingFunction

__all__ = ["WestFirst", "NorthLast", "NegativeFirst", "WestFirstPlanar"]


def _move(coord: Coordinate, axis: int, step: int) -> Coordinate:
    return coord[:axis] + (coord[axis] + step,) + coord[axis + 1 :]


class WestFirst(RoutingFunction):
    """West-first minimal adaptive routing on a 2-D mesh.

    If the target lies to the west, the header travels west exclusively
    until the x offset is corrected; afterwards it may choose any
    minimal move among east/north/south.
    """

    name = "west-first"

    def __init__(self, topology: Topology):
        if topology.ndim != 2:
            raise ValueError(
                f"WestFirst is a 2-D turn model; got {topology.ndim}-D topology"
                " (use WestFirstPlanar for 3-D)"
            )
        super().__init__(topology)

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        if current == target:
            return []
        dx = target[0] - current[0]
        if dx < 0:
            return [_move(current, 0, -1)]  # west moves first, exclusively
        out: List[Coordinate] = []
        if dx > 0:
            out.append(_move(current, 0, +1))  # east
        dy = target[1] - current[1]
        if dy > 0:
            out.append(_move(current, 1, +1))  # north
        elif dy < 0:
            out.append(_move(current, 1, -1))  # south
        return out


class NorthLast(RoutingFunction):
    """North-last minimal adaptive routing on a 2-D mesh.

    North (y+) moves are deferred until no other offset remains; turns
    out of the north direction are prohibited.
    """

    name = "north-last"

    def __init__(self, topology: Topology):
        if topology.ndim != 2:
            raise ValueError("NorthLast is a 2-D turn model")
        super().__init__(topology)

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        if current == target:
            return []
        dx = target[0] - current[0]
        dy = target[1] - current[1]
        out: List[Coordinate] = []
        if dx > 0:
            out.append(_move(current, 0, +1))
        elif dx < 0:
            out.append(_move(current, 0, -1))
        if dy < 0:
            out.append(_move(current, 1, -1))
        if out:
            return out
        # Only the north component remains: go north, deterministically.
        return [_move(current, 1, +1)]


class NegativeFirst(RoutingFunction):
    """Negative-first minimal adaptive routing (any dimensionality).

    All negative-direction moves precede all positive-direction moves;
    the header adapts freely within each phase.  This is the turn
    model's n-dimensional member, included for the ablation comparing
    adaptive substrates.
    """

    name = "negative-first"

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        if current == target:
            return []
        negatives: List[Coordinate] = []
        positives: List[Coordinate] = []
        for axis in range(len(current)):
            delta = target[axis] - current[axis]
            if delta < 0:
                negatives.append(_move(current, axis, -1))
            elif delta > 0:
                positives.append(_move(current, axis, +1))
        return negatives if negatives else positives


class WestFirstPlanar(RoutingFunction):
    """West-first routing for the 3-D mesh, plane-based (AB's scheme).

    The z (dimension 2) offset is corrected first as a straight line —
    AB's inter-plane worms travel pure-z corner columns — and the
    remaining xy offset is routed with 2-D west-first adaptivity inside
    the destination plane.
    """

    name = "west-first-planar"

    def __init__(self, topology: Topology):
        if topology.ndim != 3:
            raise ValueError(
                f"WestFirstPlanar needs a 3-D topology, got {topology.ndim}-D"
            )
        super().__init__(topology)

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        if current == target:
            return []
        dz = target[2] - current[2]
        if dz != 0:
            return [_move(current, 2, +1 if dz > 0 else -1)]
        dx = target[0] - current[0]
        if dx < 0:
            return [_move(current, 0, -1)]
        out: List[Coordinate] = []
        if dx > 0:
            out.append(_move(current, 0, +1))
        dy = target[1] - current[1]
        if dy > 0:
            out.append(_move(current, 1, +1))
        elif dy < 0:
            out.append(_move(current, 1, -1))
        return out
