"""Coded-path routing (CPR) path builders.

CPR [Al-Dubai & Ould-Khaoua, IPCCC'01] lets a single worm deliver to
every router it passes: the header's 2-bit control field tells each
router to pass, absorb-and-forward, or sink.  The broadcast algorithms
in :mod:`repro.core` are built from a small vocabulary of
multidestination paths, constructed here:

* straight lines along one dimension (rows, columns, pillars);
* boustrophedon ("snake") walks covering a rectangular region;
* destination-limited splits of long paths (the AB algorithm "limits
  the number of destination nodes for each message path").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.network.coordinates import Coordinate
from repro.routing.paths import Path

__all__ = [
    "straight_line_path",
    "row_path",
    "column_path",
    "snake_path",
    "split_deliveries",
]


def straight_line_path(start: Coordinate, axis: int, end_value: int) -> Path:
    """A path from ``start`` along ``axis`` to coordinate ``end_value``.

    Every node after the start absorbs a copy (control field 10 —
    pass-and-receive).

    Examples
    --------
    >>> p = straight_line_path((0, 0), axis=1, end_value=3)
    >>> p.nodes
    ((0, 0), (0, 1), (0, 2), (0, 3))
    >>> sorted(p.deliveries)
    [(0, 1), (0, 2), (0, 3)]
    """
    if not 0 <= axis < len(start):
        raise ValueError(f"axis {axis} out of range for {start}")
    begin = start[axis]
    if end_value == begin:
        raise ValueError("straight line path must span at least one hop")
    step = 1 if end_value > begin else -1
    nodes = [
        start[:axis] + (v,) + start[axis + 1 :]
        for v in range(begin, end_value + step, step)
    ]
    return Path(nodes, deliveries=nodes[1:])


def row_path(start: Coordinate, end_x: int) -> Path:
    """Straight multidestination path along dimension 0 (a mesh row)."""
    return straight_line_path(start, axis=0, end_value=end_x)


def column_path(start: Coordinate, end_y: int) -> Path:
    """Straight multidestination path along dimension 1 (a mesh column)."""
    return straight_line_path(start, axis=1, end_value=end_y)


def snake_path(
    start: Coordinate,
    xs: Sequence[int],
    ys: Sequence[int],
) -> Path:
    """A boustrophedon walk covering the rectangle ``xs × ys``.

    The worm starts at ``start`` (which must sit on one corner of the
    rectangle in the plane of ``start``'s remaining coordinates), sweeps
    the first column of ``xs`` through all of ``ys``, steps to the next
    column, sweeps back, and so on.  Every visited node except the start
    absorbs a copy.  This is the long third-step path shape of the AB
    algorithm.

    Parameters
    ----------
    start:
        The corner node the worm is launched from.
    xs:
        Column coordinates, in sweep order (consecutive values must be
        adjacent, i.e. differ by 1).
    ys:
        Row coordinates for the first column, in sweep order
        (consecutive values must differ by 1); alternate columns
        reverse this order.
    """
    if not xs or not ys:
        raise ValueError("snake needs at least one column and one row")
    for seq, label in ((xs, "xs"), (ys, "ys")):
        for a, b in zip(seq, seq[1:]):
            if abs(a - b) != 1:
                raise ValueError(f"{label} must step by 1, got {a} -> {b}")
    tail = start[2:]
    nodes: List[Coordinate] = []
    for i, x in enumerate(xs):
        sweep = list(ys) if i % 2 == 0 else list(reversed(ys))
        for y in sweep:
            nodes.append((x, y) + tail)
    if nodes[0] != start:
        raise ValueError(
            f"snake must start at {start}, but the sweep begins at {nodes[0]}"
        )
    if len(nodes) < 2:
        raise ValueError("snake must cover at least two nodes")
    return Path(nodes, deliveries=nodes[1:])


def split_deliveries(path: Path, max_destinations: int) -> List[Path]:
    """Split a multidestination path into chunks of bounded fan-out.

    Reproduces AB's "limiting the number of destination nodes for each
    message path": the original walk is cut into consecutive segments,
    each delivering to at most ``max_destinations`` nodes.  Every
    segment starts where the previous one ended... at the *source* —
    all segments are launched by the original source, so the first
    nodes of a later segment are transit-only (control field ``00``).

    Parameters
    ----------
    path:
        A multidestination path whose deliveries are exactly its nodes
        after the source (the builders above guarantee this).
    max_destinations:
        Upper bound on deliveries per returned path.
    """
    if max_destinations < 1:
        raise ValueError("max_destinations must be >= 1")
    targets = [n for n in path.nodes[1:] if n in path.deliveries]
    if len(targets) <= max_destinations:
        return [path]
    pieces: List[Path] = []
    source = path.source
    nodes = list(path.nodes)
    for lo in range(0, len(targets), max_destinations):
        chunk = targets[lo : lo + max_destinations]
        last = chunk[-1]
        end_index = nodes.index(last)
        pieces.append(Path(nodes[: end_index + 1], deliveries=chunk))
    return pieces
