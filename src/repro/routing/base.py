"""The routing-function interface.

A :class:`RoutingFunction` answers one question: *from this node,
heading for that node, which adjacent nodes may the header advance to?*
Deterministic schemes return exactly one candidate; adaptive schemes
return several, and the router picks among them with a selection
function (here: least channel load, as is standard for wormhole
adaptive routers).

All routing functions here are *minimal*: every candidate reduces the
distance to the target, so path lengths equal the topology distance and
livelock is impossible.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology

__all__ = ["RoutingError", "RoutingFunction"]

#: Signature of the congestion oracle handed to :meth:`RoutingFunction.next_hop`:
#: maps a directed channel ``(u, v)`` to its current load (occupancy + queue).
LoadOracle = Callable[[Coordinate, Coordinate], float]


class RoutingError(RuntimeError):
    """Raised when no legal move exists (malformed request or faults)."""


class RoutingFunction:
    """Abstract routing function over a topology.

    Parameters
    ----------
    topology:
        The network shape routes are computed on.
    """

    #: Human-readable scheme name (subclasses override).
    name = "abstract"

    def __init__(self, topology: Topology):
        self.topology = topology

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        """Legal next nodes from ``current`` towards ``target``.

        Must be non-empty whenever ``current != target``; order encodes
        the scheme's preference for deterministic tie-breaking.
        """
        raise NotImplementedError

    # -- derived operations ------------------------------------------------
    def next_hop(
        self,
        current: Coordinate,
        target: Coordinate,
        load: Optional[LoadOracle] = None,
    ) -> Coordinate:
        """Pick the next node, using ``load`` to break adaptive choices.

        With no oracle (or a deterministic scheme) the first candidate
        wins; otherwise the least-loaded candidate channel wins, with
        candidate order breaking ties.
        """
        options = self.candidates(current, target)
        if not options:
            raise RoutingError(f"{self.name}: no legal move {current} -> {target}")
        if load is None or len(options) == 1:
            return options[0]
        best = options[0]
        best_load = load(current, best)
        for option in options[1:]:
            option_load = load(current, option)
            if option_load < best_load:
                best, best_load = option, option_load
        return best

    def path(self, source: Coordinate, target: Coordinate) -> List[Coordinate]:
        """The deterministic (first-candidate) route, inclusive of both ends."""
        if source == target:
            return [source]
        route = [source]
        current = source
        limit = self.topology.num_nodes + 1
        while current != target:
            current = self.next_hop(current, target)
            route.append(current)
            if len(route) > limit:  # pragma: no cover - defensive
                raise RoutingError(
                    f"{self.name}: no progress routing {source} -> {target}"
                )
        return route

    def is_legal_hop(
        self, current: Coordinate, nxt: Coordinate, target: Coordinate
    ) -> bool:
        """True when ``nxt`` is among the legal moves towards ``target``."""
        return nxt in self.candidates(current, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} on {self.topology!r}>"
