"""Routing algorithms.

Deterministic dimension-ordered routing (the baseline the paper's RD,
EDN and DB run on), the west-first turn model (the adaptive scheme AB
runs on), path objects, coded-path (multidestination) path builders,
and channel-dependence-graph deadlock analysis.
"""

from repro.routing.base import RoutingFunction, RoutingError
from repro.routing.dimension_ordered import DimensionOrdered
from repro.routing.turn_model import (
    NegativeFirst,
    NorthLast,
    WestFirst,
    WestFirstPlanar,
)
from repro.routing.paths import Path
from repro.routing.cpr import (
    column_path,
    row_path,
    snake_path,
    split_deliveries,
    straight_line_path,
)
from repro.routing.deadlock import (
    build_channel_dependence_graph,
    find_dependence_cycle,
    is_deadlock_free,
)

__all__ = [
    "DimensionOrdered",
    "NegativeFirst",
    "NorthLast",
    "Path",
    "RoutingError",
    "RoutingFunction",
    "WestFirst",
    "WestFirstPlanar",
    "build_channel_dependence_graph",
    "column_path",
    "find_dependence_cycle",
    "is_deadlock_free",
    "row_path",
    "snake_path",
    "split_deliveries",
    "straight_line_path",
]
