"""Channel-dependence-graph deadlock analysis.

Duato's classic criterion: a routing function is deadlock-free on
wormhole networks if its channel-dependence graph — nodes are directed
channels, with an edge ``(u→v) ⇒ (v→w)`` whenever the routing function
can forward a header from channel ``(u,v)`` onto channel ``(v,w)`` —
is acyclic.  We build that graph exhaustively (every source/target
pair, every adaptive branch) and run an iterative DFS cycle search, so
the property tests can *prove* the configurations used by the
experiments are deadlock-free rather than assume it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology
from repro.routing.base import RoutingFunction

__all__ = [
    "build_channel_dependence_graph",
    "find_dependence_cycle",
    "is_deadlock_free",
]

ChannelId = Tuple[Coordinate, Coordinate]


def build_channel_dependence_graph(
    routing: RoutingFunction,
) -> Dict[ChannelId, Set[ChannelId]]:
    """Enumerate every channel-to-channel dependence ``routing`` allows.

    For each (source, target) pair we walk the *set* of reachable
    (node, arrival-channel) states, following every adaptive candidate,
    and record each possible hand-off from an input channel to an
    output channel.
    """
    topology = routing.topology
    graph: Dict[ChannelId, Set[ChannelId]] = {
        ch: set() for ch in topology.channels()
    }
    nodes = list(topology.nodes())
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            # BFS over (current, in_channel) states.
            frontier: List[Tuple[Coordinate, Optional[ChannelId]]] = [(source, None)]
            seen: Set[Tuple[Coordinate, Optional[ChannelId]]] = set(frontier)
            while frontier:
                current, in_ch = frontier.pop()
                if current == target:
                    continue
                for nxt in routing.candidates(current, target):
                    out_ch = (current, nxt)
                    if in_ch is not None:
                        graph[in_ch].add(out_ch)
                    state = (nxt, out_ch)
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
    return graph


def find_dependence_cycle(
    graph: Dict[ChannelId, Set[ChannelId]],
) -> Optional[List[ChannelId]]:
    """Return one cycle of the dependence graph, or ``None`` if acyclic.

    Iterative three-colour DFS (the graphs reach ~10^4 channels, beyond
    Python's recursion limit).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {ch: WHITE for ch in graph}
    parent: Dict[ChannelId, Optional[ChannelId]] = {}

    for root in graph:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[ChannelId, object]] = [(root, iter(graph[root]))]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if colour[succ] == GREY:
                    # Reconstruct the cycle succ -> ... -> node -> succ.
                    cycle = [succ]
                    walk: Optional[ChannelId] = node
                    while walk is not None and walk != succ:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.append(succ)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def is_deadlock_free(routing: RoutingFunction) -> bool:
    """True when the routing function's dependence graph is acyclic."""
    return find_dependence_cycle(build_channel_dependence_graph(routing)) is None


def dependence_count(graph: Dict[ChannelId, Set[ChannelId]]) -> int:
    """Total number of dependence edges (adaptivity measure)."""
    return sum(len(v) for v in graph.values())
