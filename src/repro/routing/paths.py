"""Path objects.

A :class:`Path` is the alternating node/channel sequence a worm
traverses — the paper's "path is an alternating sequence of nodes and
channels traversed by a message".  Paths know how to validate
themselves against a topology and enumerate their channels, and CPR
multidestination paths carry the subset of on-path nodes that must
absorb a copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology

__all__ = ["Path"]


@dataclass(frozen=True)
class Path:
    """An ordered walk through the network.

    Parameters
    ----------
    nodes:
        Visited nodes, source first.  Consecutive nodes must be
        adjacent in the topology the path is used on.
    deliveries:
        The on-path nodes that absorb a copy (CPR).  Defaults to just
        the final node (plain unicast semantics).
    """

    nodes: Tuple[Coordinate, ...]
    deliveries: FrozenSet[Coordinate] = field(default_factory=frozenset)

    def __init__(
        self,
        nodes: Sequence[Coordinate],
        deliveries: Sequence[Coordinate] | None = None,
    ):
        nodes_t = tuple(tuple(n) for n in nodes)
        if len(nodes_t) < 1:
            raise ValueError("a path needs at least one node")
        if deliveries is None:
            deliveries_f = frozenset({nodes_t[-1]}) if len(nodes_t) > 1 else frozenset()
        else:
            deliveries_f = frozenset(tuple(d) for d in deliveries)
        on_path = set(nodes_t)
        stray = deliveries_f - on_path
        if stray:
            raise ValueError(f"deliveries {sorted(stray)} are not on the path")
        if nodes_t[0] in deliveries_f:
            raise ValueError("the source cannot be a delivery target")
        object.__setattr__(self, "nodes", nodes_t)
        object.__setattr__(self, "deliveries", deliveries_f)

    # -- shape ------------------------------------------------------------
    @property
    def source(self) -> Coordinate:
        return self.nodes[0]

    @property
    def terminus(self) -> Coordinate:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        """Number of channels traversed."""
        return len(self.nodes) - 1

    def channels(self) -> Iterator[Tuple[Coordinate, Coordinate]]:
        """The directed channels the worm occupies, in order."""
        for i in range(len(self.nodes) - 1):
            yield (self.nodes[i], self.nodes[i + 1])

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Coordinate]:
        return iter(self.nodes)

    # -- validation --------------------------------------------------------
    def validate(self, topology: Topology) -> None:
        """Raise ``ValueError`` unless every hop is a real channel."""
        for node in self.nodes:
            if not topology.contains(node):
                raise ValueError(f"path node {node} is outside {topology!r}")
        seen = set()
        for u, v in self.channels():
            if not topology.are_adjacent(u, v):
                raise ValueError(f"path hop {u} -> {v} is not a channel")
            if (u, v) in seen:
                raise ValueError(f"path reuses channel {u} -> {v}")
            seen.add((u, v))

    def is_minimal(self, topology: Topology) -> bool:
        """True when the walk length equals the topological distance."""
        return self.hop_count == topology.distance(self.source, self.terminus)

    def prefix_lengths(self) -> List[int]:
        """Hop index at which each node is reached (0 for the source)."""
        return list(range(len(self.nodes)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Path {self.source}->{self.terminus} hops={self.hop_count}"
            f" deliveries={len(self.deliveries)}>"
        )
