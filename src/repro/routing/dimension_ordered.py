"""Dimension-ordered (e-cube / XY / XYZ) routing.

The deterministic workhorse of practical mesh machines and the scheme
the paper's RD, EDN and DB algorithms rely on: the header corrects
dimension offsets in a fixed order, never revisiting a dimension.
Deadlock-free because the channel-dependence graph is acyclic (no turn
from a higher-ordered dimension back into a lower-ordered one).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology
from repro.routing.base import RoutingFunction

__all__ = ["DimensionOrdered"]


class DimensionOrdered(RoutingFunction):
    """Deterministic dimension-ordered routing on a mesh.

    Parameters
    ----------
    topology:
        The mesh to route on.
    order:
        Permutation of dimension indices giving the correction order.
        Defaults to ``(0, 1, …, n-1)`` — the classic XY/XYZ routing.

    Examples
    --------
    >>> from repro.network import Mesh
    >>> dor = DimensionOrdered(Mesh((4, 4)))
    >>> dor.path((0, 0), (2, 2))
    [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]
    """

    name = "dimension-ordered"

    def __init__(self, topology: Topology, order: Optional[Sequence[int]] = None):
        super().__init__(topology)
        ndim = topology.ndim
        self.order: Tuple[int, ...] = (
            tuple(range(ndim)) if order is None else tuple(order)
        )
        if sorted(self.order) != list(range(ndim)):
            raise ValueError(
                f"order {self.order} is not a permutation of 0..{ndim - 1}"
            )

    def candidates(self, current: Coordinate, target: Coordinate) -> List[Coordinate]:
        if current == target:
            return []
        for axis in self.order:
            delta = target[axis] - current[axis]
            if delta != 0:
                step = 1 if delta > 0 else -1
                nxt = (
                    current[:axis] + (current[axis] + step,) + current[axis + 1 :]
                )
                return [nxt]
        return []  # pragma: no cover - current == target handled above
