"""Destination-selection patterns for unicast traffic.

The paper's experiments use uniformly random destinations
(:class:`UniformPattern`); the other classic synthetic patterns are
included for the extension/ablation studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.coordinates import Coordinate
from repro.network.topology import Topology

__all__ = [
    "DestinationPattern",
    "UniformPattern",
    "HotspotPattern",
    "TransposePattern",
    "BitComplementPattern",
]


class DestinationPattern:
    """Maps a source node to a destination for each generated unicast."""

    name = "abstract"

    def __init__(self, topology: Topology):
        self.topology = topology

    def pick(self, source: Coordinate, rng: np.random.Generator) -> Coordinate:
        """Choose a destination != source."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} on {self.topology!r}>"


class UniformPattern(DestinationPattern):
    """Uniformly random destination over all other nodes (the paper's)."""

    name = "uniform"

    def pick(self, source: Coordinate, rng: np.random.Generator) -> Coordinate:
        n = self.topology.num_nodes
        src_index = self.topology.index(source)
        # Draw from n-1 slots, skipping the source's own index.
        draw = int(rng.integers(0, n - 1))
        if draw >= src_index:
            draw += 1
        return self.topology.coordinate(draw)


class HotspotPattern(DestinationPattern):
    """With probability ``hotspot_fraction`` target one hot node,
    otherwise fall back to uniform — the classic hotspot stressor.
    """

    name = "hotspot"

    def __init__(
        self,
        topology: Topology,
        hotspot: Optional[Coordinate] = None,
        hotspot_fraction: float = 0.1,
    ):
        super().__init__(topology)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be within [0, 1]")
        centre = tuple(d // 2 for d in topology.dims)
        self.hotspot = tuple(hotspot) if hotspot is not None else centre
        if not topology.contains(self.hotspot):
            raise ValueError(f"hotspot {self.hotspot} outside {topology!r}")
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformPattern(topology)

    def pick(self, source: Coordinate, rng: np.random.Generator) -> Coordinate:
        if source != self.hotspot and rng.random() < self.hotspot_fraction:
            return self.hotspot
        return self._uniform.pick(source, rng)


class TransposePattern(DestinationPattern):
    """Matrix-transpose permutation: ``(x, y, …) → (y, x, …)``.

    Nodes on the diagonal (fixed points) fall back to uniform.
    """

    name = "transpose"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        if len(topology.dims) < 2 or topology.dims[0] != topology.dims[1]:
            raise ValueError("transpose needs equal first two dimensions")
        self._uniform = UniformPattern(topology)

    def pick(self, source: Coordinate, rng: np.random.Generator) -> Coordinate:
        dest = (source[1], source[0]) + tuple(source[2:])
        if dest == source:
            return self._uniform.pick(source, rng)
        return dest


class BitComplementPattern(DestinationPattern):
    """Complement permutation: ``x_i → (k_i - 1) - x_i`` per dimension."""

    name = "bit-complement"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._uniform = UniformPattern(topology)

    def pick(self, source: Coordinate, rng: np.random.Generator) -> Coordinate:
        dest = tuple(d - 1 - c for c, d in zip(source, self.topology.dims))
        if dest == source:
            return self._uniform.pick(source, rng)
        return dest
