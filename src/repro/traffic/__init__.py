"""Traffic generation.

Reproduces the paper's §3.3 workload: every node generates messages
with exponentially distributed inter-arrival times; 90 % are unicasts
to uniformly random destinations, 10 % are broadcast operations.  Also
provides the classic synthetic destination patterns (hotspot,
transpose, bit-complement) for the extension studies.
"""

from repro.traffic.arrivals import ExponentialArrivals, rate_per_us
from repro.traffic.patterns import (
    BitComplementPattern,
    DestinationPattern,
    HotspotPattern,
    TransposePattern,
    UniformPattern,
)
from repro.traffic.workload import (
    MixedTrafficConfig,
    MixedTrafficSimulation,
    TrafficStats,
)

__all__ = [
    "BitComplementPattern",
    "DestinationPattern",
    "ExponentialArrivals",
    "HotspotPattern",
    "MixedTrafficConfig",
    "MixedTrafficSimulation",
    "TrafficStats",
    "TransposePattern",
    "UniformPattern",
    "rate_per_us",
]
