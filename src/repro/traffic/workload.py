"""The mixed unicast/broadcast workload of §3.3.

Every node runs a Poisson generator.  Each generated operation is a
unicast (probability 0.9) to a uniformly random destination, or a
broadcast (probability 0.1) of the configured algorithm from that node.
Communication latencies are measured per completed operation and fed
to the paper's batch-means procedure (21 batches, first discarded).

The generator is *open-loop*: operations are injected at their arrival
instant regardless of network state, so queueing at injection ports and
channels shows up as latency — exactly how the paper's latency-vs-load
curves saturate.

Measurement protocol: the run generates exactly
``batch_size × num_batches`` operations, then waits for all of them to
complete (bounded by ``max_sim_time_us``).  Batches are formed in
*generation* order, not completion order — otherwise, near saturation,
fast unicasts would fill the quota while the slow broadcasts that
define the knee went uncounted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.base import BroadcastAlgorithm
from repro.core.executors import EventDrivenExecutor
from repro.core.registry import get_algorithm
from repro.metrics.batch_means import BatchMeans
from repro.metrics.collectors import LatencyCollector, ThroughputCollector
from repro.network.message import Message, MessageKind
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh
from repro.network.wormhole import PathTransmission
from repro.routing.dimension_ordered import DimensionOrdered
from repro.routing.paths import Path
from repro.traffic.arrivals import ExponentialArrivals, rate_per_us
from repro.traffic.patterns import DestinationPattern, UniformPattern

#: Process-wide broadcast-schedule memo (pure construction results,
#: shared across simulations; bounded to keep long campaigns lean).
_SCHEDULE_MEMO: Dict = {}
_SCHEDULE_MEMO_MAX = 512

__all__ = ["MixedTrafficConfig", "MixedTrafficSimulation", "TrafficStats"]


@dataclass(frozen=True)
class MixedTrafficConfig:
    """Parameters of one traffic-sweep point.

    Parameters
    ----------
    load_messages_per_ms:
        Per-node generation rate on the paper's load axis.
    broadcast_fraction:
        Share of operations that are broadcasts (paper: 0.1).
    message_length_flits:
        Worm length ``L`` (paper Figs. 3-4: 32 flits).
    batch_size:
        Operations per measurement batch.
    num_batches / discard:
        Batch-means protocol (paper: 21 collected, 1 discarded).
    max_sim_time_us:
        Safety cap on simulated time (saturated networks may never
        drain; the run then reports what completed).
    seed:
        Master seed for all randomness.
    shard:
        ``None`` (the default) draws from the master seed's root
        streams — bit-for-bit today's serial protocol.  An integer
        ``k`` scopes *every* stream to the ``shard{k}`` namespace, so
        the run is an independent replication that is a pure function
        of ``(config minus shard, k)`` — the per-replica substream
        trick that makes sharded units deterministic (see
        :mod:`repro.campaigns.shards`).
    """

    load_messages_per_ms: float
    broadcast_fraction: float = 0.1
    message_length_flits: int = 32
    batch_size: int = 25
    num_batches: int = 21
    discard: int = 1
    max_sim_time_us: float = 2_000_000.0
    seed: int = 0
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.load_messages_per_ms <= 0:
            raise ValueError("load must be positive")
        if not 0.0 <= self.broadcast_fraction <= 1.0:
            raise ValueError("broadcast_fraction must be in [0, 1]")
        if self.message_length_flits < 1:
            raise ValueError("message_length_flits must be >= 1")
        if self.shard is not None and self.shard < 0:
            raise ValueError("shard index must be >= 0")

    @property
    def rng_namespace(self) -> str:
        """Stream-name prefix implementing the shard substream."""
        return "" if self.shard is None else f"shard{self.shard}/"

    @property
    def target_operations(self) -> int:
        """Operations generated (and measured) per run."""
        return self.batch_size * self.num_batches


@dataclass
class TrafficStats:
    """Results of one traffic simulation point.

    Besides the reported summary figures, the stats carry their own
    *mergeable decomposition* — the generation-order latency stream as
    a :class:`~repro.metrics.partial.PartialStat`, per-bucket latency
    sums, and the throughput window — so a sharded campaign can store
    each shard's contribution and reduce shards into one point without
    access to the raw simulation.
    """

    load_messages_per_ms: float
    mean_latency_us: float
    unicast_mean_latency_us: Optional[float]
    broadcast_mean_latency_us: Optional[float]
    throughput_msgs_per_us: float
    operations_completed: int
    operations_generated: int
    batches_completed: int
    saturated: bool
    extras: Dict[str, float] = field(default_factory=dict)
    #: simulated time at the end of the run (µs).
    sim_time_us: float = 0.0
    #: generation-order latency stream (PartialStat.to_dict form).
    latency_partial: Optional[Dict] = None
    #: per-bucket observation counts / latency sums (mergeable form of
    #: the bucket means).
    bucket_counts: Dict[str, int] = field(default_factory=dict)
    bucket_totals: Dict[str, float] = field(default_factory=dict)
    #: mergeable form of ``throughput_msgs_per_us`` (count over span).
    throughput_count: int = 0
    throughput_span_us: float = 0.0


class MixedTrafficSimulation:
    """One (algorithm, network, load) traffic-sweep point.

    Parameters
    ----------
    topology:
        The mesh under test.
    algorithm_name:
        "RD" / "EDN" / "DB" / "AB" — the broadcast algorithm carried
        by the broadcast share of the traffic.
    config:
        Load-point parameters.
    network_config:
        Timing/port parameters; when omitted, the algorithm's own port
        requirement and the paper's timing constants are used.
    pattern:
        Destination pattern for unicasts (default uniform, as in the
        paper).
    """

    def __init__(
        self,
        topology: Mesh,
        algorithm_name: str,
        config: MixedTrafficConfig,
        network_config: Optional[NetworkConfig] = None,
        pattern: Optional[DestinationPattern] = None,
    ):
        self.topology = topology
        self.config = config
        algorithm_cls = get_algorithm(algorithm_name)
        self.network_config = network_config or NetworkConfig(
            ports_per_node=algorithm_cls.ports_required
        )
        self.network = NetworkSimulator(
            topology,
            self.network_config,
            seed=config.seed,
            rng_namespace=config.rng_namespace,
        )
        self.algorithm: BroadcastAlgorithm = algorithm_cls(topology)
        self.pattern = pattern or UniformPattern(topology)
        self._dor = DimensionOrdered(topology)
        self._adaptive_routing = (
            type(self.algorithm).make_routing(topology)
            if hasattr(type(self.algorithm), "make_routing")
            else None
        )
        self._executor = EventDrivenExecutor(
            self.network, adaptive_routing=self._adaptive_routing
        )
        self.latencies = LatencyCollector()
        self.throughput = ThroughputCollector()
        self._schedule_cache: Dict = {}
        self._path_cache: Dict = {}
        self._generated = 0
        self._completed: Dict[int, float] = {}
        self._done = self.network.env.event()

    # -- generator processes ---------------------------------------------
    def _node_generator(self, source):
        env = self.network.env
        rng = self.network.random[f"traffic{source}"]
        arrivals = ExponentialArrivals(
            rng, rate_per_us(self.config.load_messages_per_ms)
        )
        while True:
            yield env.hold(arrivals.next_gap())
            if self._generated >= self.config.target_operations:
                return
            op_id = self._generated
            self._generated += 1
            if rng.random() < self.config.broadcast_fraction:
                self._launch_broadcast(source, op_id)
            else:
                self._launch_unicast(source, rng, op_id)

    def _launch_unicast(self, source, rng, op_id: int) -> None:
        destination = self.pattern.pick(source, rng)
        message = Message(
            source=source,
            destinations=frozenset({destination}),
            length_flits=self.config.message_length_flits,
            kind=MessageKind.UNICAST,
            created_at=self.network.env.now,
        )
        # DOR paths are pure functions of (source, destination): cache
        # the immutable Path objects across the run's many unicasts.
        path = self._path_cache.get((source, destination))
        if path is None:
            nodes = self._dor.path(source, destination)
            path = Path(nodes, deliveries=[destination])
            self._path_cache[(source, destination)] = path
        transmission = PathTransmission(self.network, message, path=path)
        process = transmission.start()
        process.add_callback(
            lambda event: self._operation_done(event, op_id, "unicast")
        )

    def _launch_broadcast(self, source, op_id: int) -> None:
        schedule = self._schedule_cache.get(source)
        if schedule is None:
            # Schedules are pure functions of (algorithm, mesh, source):
            # share them process-wide so every load point of a sweep
            # reuses the sibling points' construction work.
            key = (type(self.algorithm).__name__, self.topology.dims, source)
            schedule = _SCHEDULE_MEMO.get(key)
            if schedule is None:
                if len(_SCHEDULE_MEMO) >= _SCHEDULE_MEMO_MAX:
                    _SCHEDULE_MEMO.clear()
                schedule = self.algorithm.schedule(source)
                _SCHEDULE_MEMO[key] = schedule
            self._schedule_cache[source] = schedule
        process = self._executor.launch(
            schedule, self.config.message_length_flits
        )
        process.add_callback(
            lambda event: self._operation_done(event, op_id, "broadcast")
        )

    def _operation_done(self, event, op_id: int, bucket: str) -> None:
        if not event.ok:  # pragma: no cover - transmissions never fail here
            return
        latency = event.value.network_latency
        self._completed[op_id] = latency
        self.latencies.record(latency, bucket)
        self.latencies.record(latency, "all")
        self.throughput.record(self.network.env.now)
        if (
            len(self._completed) >= self.config.target_operations
            and not self._done.triggered
        ):
            self._done.succeed()

    # -- running -------------------------------------------------------------
    def run(self) -> TrafficStats:
        """Generate the target operations and drain them (or hit the cap)."""
        env = self.network.env
        for node in self.topology.nodes():
            env.process(self._node_generator(node))
        cap = env.timeout(self.config.max_sim_time_us)
        env.run(until=env.any_of([self._done, cap]))
        saturated = len(self._completed) < self.config.target_operations

        # Batch means in generation order (paper protocol, minus the
        # ops a saturated run never finished).
        batches = BatchMeans(
            batch_size=self.config.batch_size,
            num_batches=self.config.num_batches,
            discard=self.config.discard,
        )
        for op_id in sorted(self._completed):
            batches.add(self._completed[op_id])

        def bucket_mean(bucket: str) -> Optional[float]:
            try:
                return self.latencies.summary(bucket).mean
            except KeyError:
                return None

        completed = len(self._completed)
        try:
            mean_latency = batches.result().mean
        except ValueError:
            mean_latency = (
                self.latencies.summary("all").mean if completed else float("nan")
            )
        throughput_count, throughput_span = self.throughput.window(env.now)
        return TrafficStats(
            load_messages_per_ms=self.config.load_messages_per_ms,
            mean_latency_us=mean_latency,
            unicast_mean_latency_us=bucket_mean("unicast"),
            broadcast_mean_latency_us=bucket_mean("broadcast"),
            throughput_msgs_per_us=self.throughput.throughput(env.now),
            operations_completed=completed,
            operations_generated=self._generated,
            batches_completed=batches.batches_collected,
            saturated=saturated,
            sim_time_us=float(env.now),
            latency_partial=batches.partial().to_dict(),
            bucket_counts={
                bucket: self.latencies.count(bucket)
                for bucket in ("unicast", "broadcast")
            },
            bucket_totals={
                bucket: math.fsum(self.latencies.values(bucket))
                for bucket in ("unicast", "broadcast")
            },
            throughput_count=throughput_count,
            throughput_span_us=throughput_span,
        )
