"""Arrival processes.

The paper: "Nodes generate messages at time intervals chosen from an
exponential distribution", with traffic load expressed in messages/ms.
Internally the simulator clock runs in µs (the unit of ``Ts`` and
``β``), so loads convert via :func:`rate_per_us`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ExponentialArrivals", "rate_per_us"]

#: Simulator clock units (µs) per load unit (ms).
US_PER_MS = 1000.0


def rate_per_us(load_messages_per_ms: float) -> float:
    """Convert the paper's load axis (messages/ms) to messages/µs."""
    if load_messages_per_ms < 0:
        raise ValueError(f"load must be >= 0, got {load_messages_per_ms}")
    return load_messages_per_ms / US_PER_MS


class ExponentialArrivals:
    """A Poisson arrival process: exponential inter-arrival gaps.

    Parameters
    ----------
    rng:
        Numpy generator supplying the randomness.
    rate:
        Mean arrivals per time unit (must be positive).
    """

    def __init__(self, rng: np.random.Generator, rate: float):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rng = rng
        self.rate = rate

    def next_gap(self) -> float:
        """One inter-arrival time draw."""
        return float(self.rng.exponential(1.0 / self.rate))

    def gaps(self) -> Iterator[float]:
        """Endless stream of inter-arrival times."""
        while True:
            yield self.next_gap()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExponentialArrivals rate={self.rate}>"
