"""Merge unit records back into the experiments' row dataclasses.

``run_campaign`` returns one record per unit; this module folds them
into the exact row shapes ``reporting.py``/``export.py`` already
consume (``Fig1Row``, ``CVTableRow``, ...).  Aggregation is a pure
function of the records: cells are processed in unit declaration order
and replications within a cell in replication order, so the rows are
identical whether the records came from one process, many workers, or
a resumed JSONL store.

Experiment row classes are imported lazily inside each aggregator —
the experiments package imports the campaign engine, not vice versa.

Usage::

    records = run_campaign(spec, workers=8, store=store)
    rows = aggregate("fig1", records)      # → List[Fig1Row]

    @register_aggregator("my-experiment")
    def _my_rows(records):
        return [MyRow(...) for spec, members in cells(records)]

Because records are keyed by content hash, the records may come from
any store backend, any worker count, or a mix of cached and fresh
executions — the rows are identical in every case.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.campaigns.spec import UnitSpec
from repro.campaigns.store import UnitRecord

__all__ = ["aggregate", "failed_records", "register_aggregator", "cells"]

Aggregator = Callable[[Sequence[UnitRecord]], List[Any]]

#: experiment id → record-list → row-list.
_AGGREGATORS: Dict[str, Aggregator] = {}


def register_aggregator(experiment: str) -> Callable[[Aggregator], Aggregator]:
    """Decorator registering the row builder for ``experiment``."""

    def decorate(fn: Aggregator) -> Aggregator:
        _AGGREGATORS[experiment] = fn
        return fn

    return decorate


def aggregate(experiment: str, records: Sequence[UnitRecord]) -> List[Any]:
    """Build the experiment's result rows from its unit records."""
    try:
        builder = _AGGREGATORS[experiment]
    except KeyError:
        raise KeyError(
            f"no aggregator for experiment {experiment!r};"
            f" known: {sorted(_AGGREGATORS)}"
        ) from None
    return builder(records)


def cells(
    records: Sequence[UnitRecord],
) -> List[Tuple[UnitSpec, List[UnitRecord]]]:
    """Group records into grid cells.

    Cells keep the first-seen (declaration) order; records within a
    cell are sorted by replication index, reproducing the serial
    measurement order exactly.

    Shard records (kinds ``traffic-shard`` / ``broadcast-shard``) are
    intermediate state — their parent's merged record is the
    reportable one — and are skipped, so aggregating a whole store
    that contains both never double-counts a sharded point.  Merged
    broadcast-cell records explode back into their per-replication
    records (identical — hash, spec and floats — to the records an
    unsharded grid stores), so every aggregator below consumes the
    same member shape whichever way the campaign was decomposed.
    """
    from repro.campaigns.shards import (
        BROADCAST_CELL_KIND,
        explode_cell_record,
        is_shard,
    )

    grouped: Dict[str, List[UnitRecord]] = {}
    specs: Dict[str, UnitSpec] = {}
    for record in records:
        if record.failed:
            # A failure record carries exception metadata, not
            # simulation output — it can never contribute to a row.
            # Callers announce the gap via failed_records().
            continue
        spec = record.unit_spec
        if is_shard(spec):
            continue
        members = (
            explode_cell_record(record)
            if spec.kind == BROADCAST_CELL_KIND
            else [record]
        )
        for member in members:
            member_spec = member.unit_spec
            key = member_spec.cell_key
            grouped.setdefault(key, []).append(member)
            specs.setdefault(key, member_spec)
    out = []
    for key, members in grouped.items():
        members.sort(key=lambda r: r.unit_spec.replication)
        out.append((specs[key], members))
    return out


def failed_records(records: Sequence[UnitRecord]) -> List[UnitRecord]:
    """The failure records in ``records``, in input order.

    :func:`cells` silently drops failed units from the row build (they
    have no floats to contribute); callers that surface results to a
    human are expected to pair ``aggregate()`` with this helper and
    emit one explicit warning line per failed cell, so a partial table
    is never mistaken for a complete one.
    """
    return [record for record in records if record.failed]


def _series(members: Sequence[UnitRecord], field: str) -> List[float]:
    return [record.result[field] for record in members]


# --------------------------------------------------------------------- fig1
@register_aggregator("fig1")
def _aggregate_fig1(records: Sequence[UnitRecord]) -> List[Any]:
    from repro.experiments.fig1 import Fig1Row

    rows = []
    for spec, members in cells(records):
        latencies = _series(members, "network_latency")
        rows.append(
            Fig1Row(
                algorithm=spec.algorithm,
                dims=spec.dims,
                num_nodes=int(np.prod(spec.dims)),
                mean_latency_us=float(np.mean(latencies)),
                std_latency_us=float(np.std(latencies)),
                samples=len(latencies),
            )
        )
    return rows


# --------------------------------------------------------------------- fig2
@register_aggregator("fig2")
def _aggregate_fig2(records: Sequence[UnitRecord]) -> List[Any]:
    from repro.experiments.fig2 import Fig2Row

    rows = []
    for spec, members in cells(records):
        cvs = _series(members, "cv")
        barrier_cvs = _series(members, "barrier_cv")
        rows.append(
            Fig2Row(
                algorithm=spec.algorithm,
                dims=spec.dims,
                num_nodes=int(np.prod(spec.dims)),
                mean_cv=float(np.mean(cvs)),
                std_cv=float(np.std(cvs)),
                mean_cv_barrier=float(np.mean(barrier_cvs)),
                samples=len(cvs),
            )
        )
    return rows


# ------------------------------------------------------------------- tables
def _aggregate_cv_table(
    records: Sequence[UnitRecord], proposed: str
) -> List[Any]:
    from repro.experiments.config import PAPER_TABLE1, PAPER_TABLE2
    from repro.experiments.tables_cv import CVTableRow
    from repro.metrics.stats import improvement_percent

    paper = PAPER_TABLE1 if proposed == "DB" else PAPER_TABLE2
    mean_cv: Dict[Tuple[Tuple[int, ...], str], float] = {}
    mean_barrier_cv: Dict[Tuple[Tuple[int, ...], str], float] = {}
    dims_order: List[Tuple[int, ...]] = []
    for spec, members in cells(records):
        if spec.dims not in dims_order:
            dims_order.append(spec.dims)
        key = (spec.dims, spec.algorithm)
        mean_cv[key] = float(np.mean(_series(members, "cv")))
        mean_barrier_cv[key] = float(np.mean(_series(members, "barrier_cv")))

    rows = []
    for dims in dims_order:
        nodes = int(np.prod(dims))
        for baseline in ("RD", "EDN"):
            paper_cv, paper_imr = paper.get(baseline, {}).get(
                nodes, (None, None)
            )
            rows.append(
                CVTableRow(
                    baseline=baseline,
                    proposed=proposed,
                    dims=dims,
                    num_nodes=nodes,
                    baseline_cv=mean_cv[(dims, baseline)],
                    proposed_cv=mean_cv[(dims, proposed)],
                    improvement_percent=improvement_percent(
                        mean_cv[(dims, baseline)], mean_cv[(dims, proposed)]
                    ),
                    barrier_baseline_cv=mean_barrier_cv[(dims, baseline)],
                    barrier_proposed_cv=mean_barrier_cv[(dims, proposed)],
                    barrier_improvement_percent=improvement_percent(
                        mean_barrier_cv[(dims, baseline)],
                        mean_barrier_cv[(dims, proposed)],
                    ),
                    paper_baseline_cv=paper_cv,
                    paper_improvement_percent=paper_imr,
                )
            )
    return rows


@register_aggregator("table1")
def _aggregate_table1(records: Sequence[UnitRecord]) -> List[Any]:
    return _aggregate_cv_table(records, "DB")


@register_aggregator("table2")
def _aggregate_table2(records: Sequence[UnitRecord]) -> List[Any]:
    return _aggregate_cv_table(records, "AB")


# ------------------------------------------------------------------ traffic
def _aggregate_traffic(records: Sequence[UnitRecord]) -> List[Any]:
    from repro.experiments.traffic_sweep import TrafficSweepRow

    rows = []
    for spec, members in cells(records):
        result = members[0].result
        rows.append(
            TrafficSweepRow(
                algorithm=spec.algorithm,
                dims=spec.dims,
                load_messages_per_ms=spec.load,
                mean_latency_us=result["mean_latency_us"],
                unicast_mean_latency_us=result["unicast_mean_latency_us"],
                broadcast_mean_latency_us=result["broadcast_mean_latency_us"],
                throughput_msgs_per_us=result["throughput_msgs_per_us"],
                operations=result["operations"],
                saturated=result["saturated"],
            )
        )
    return rows


_AGGREGATORS["fig3"] = _aggregate_traffic
_AGGREGATORS["fig4"] = _aggregate_traffic


# ---------------------------------------------------------------- ablations
#: ablation id → (parameter label, value extractor).
_ABLATION_PARAMS: Dict[str, Tuple[str, Callable[[UnitSpec], float]]] = {
    "ablation-startup": (
        "startup_latency_us",
        lambda s: float(s.param("startup_latency", 1.5)),
    ),
    "ablation-length": (
        "message_length_flits",
        lambda s: float(s.length_flits),
    ),
    "ablation-maxdest": (
        "max_destinations_per_path",
        lambda s: (
            float(s.param("max_destinations_per_path"))
            if s.param("max_destinations_per_path") is not None
            else float("inf")
        ),
    ),
    "ablation-ports": (
        "ports_per_node",
        lambda s: float(s.param("ports_override", 0)),
    ),
}


def _aggregate_ablation(records: Sequence[UnitRecord]) -> List[Any]:
    from repro.experiments.ablations import AblationRow

    rows = []
    for spec, members in cells(records):
        parameter, extract = _ABLATION_PARAMS[spec.experiment]
        rows.append(
            AblationRow(
                algorithm=spec.algorithm,
                parameter=parameter,
                value=extract(spec),
                mean_latency_us=float(
                    np.mean(_series(members, "network_latency"))
                ),
                mean_cv=float(np.mean(_series(members, "cv"))),
                samples=len(members),
            )
        )
    return rows


for _ablation_id in _ABLATION_PARAMS:
    _AGGREGATORS[_ablation_id] = _aggregate_ablation
