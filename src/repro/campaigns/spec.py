"""Declarative campaign specifications with stable content hashing.

A :class:`UnitSpec` describes one independent simulation unit — a
single grid point of algorithm × dims × message length × load × seed ×
replication, plus any extra parameters the unit runner needs.  Units
carry *no* state: two specs with the same fields hash identically
regardless of which process (or which run) created them, which is what
makes the JSONL result store resumable and parallel execution
byte-identical to serial.

A :class:`CampaignSpec` is an ordered collection of units; aggregation
and the final row order follow the declaration order, never the
completion order.

Usage::

    unit = UnitSpec(
        experiment="fig1", kind="broadcast", algorithm="DB",
        dims=(8, 8, 8), length_flits=100, seed=0, replication=3,
        params=freeze_params(startup_latency=1.5),
    )
    unit.unit_hash        # '9f3b...' — stable content address
    spec = CampaignSpec(name="fig1-quick-s0", seed=0, units=(unit,))
    spec.pending(["9f3b..."])   # units not yet completed, in order

The hash deliberately covers only what changes the unit's *result*:
scale bookkeeping like the total replication count stays out, so the
same grid point computed for a ``quick`` campaign is byte-identical —
hash included — when a ``full`` campaign needs it (the basis of
cross-scale caching).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["UnitSpec", "CampaignSpec", "freeze_params"]


def freeze_params(**params: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalise extra unit parameters.

    ``None`` values are dropped (absent and ``None`` mean the same
    thing to :meth:`UnitSpec.param`) and the remainder is sorted by
    key, so the same logical parameters always produce the same spec
    hash.
    """
    return tuple(sorted((k, v) for k, v in params.items() if v is not None))


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class UnitSpec:
    """One independently dispatchable simulation unit.

    Parameters
    ----------
    experiment:
        Experiment id the unit belongs to ("fig1", "table2", ...).
    kind:
        Unit-runner key ("broadcast", "traffic"); see
        :mod:`repro.campaigns.units`.
    algorithm:
        Broadcast algorithm under test.
    dims:
        Mesh dimensions.
    length_flits:
        Message length ``L``.
    seed:
        The campaign's *master* seed.  Units derive their own streams
        from it (via named ``RandomStreams``), never from shared state.
    replication:
        Replication index within the unit's grid cell (e.g. which of
        the cell's random sources this unit measures).
    load:
        Traffic load for "traffic" units (``None`` otherwise).
    params:
        Frozen extra parameters (see :func:`freeze_params`).
    """

    experiment: str
    kind: str
    algorithm: str
    dims: Tuple[int, ...]
    length_flits: int
    seed: int
    replication: int = 0
    load: Optional[float] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        """Look up an extra parameter (absent → ``default``)."""
        return dict(self.params).get(name, default)

    @property
    def shards(self) -> int:
        """Declared shard count (1 = the unsharded protocol).

        A unit with ``shards=K > 1`` is a *parent*: it never executes
        directly but fans out into K shard units and a deterministic
        merge — see :mod:`repro.campaigns.shards` for the plan/reduce
        machinery and :attr:`shard_index` for the other side of the
        relationship.
        """
        return int(self.param("shards", 1))

    @property
    def shard_index(self) -> Optional[int]:
        """This unit's shard index, or ``None`` when it is no shard."""
        index = self.param("shard")
        return None if index is None else int(index)

    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (JSON-serialisable)."""
        data: Dict[str, Any] = {
            "experiment": self.experiment,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "dims": list(self.dims),
            "length_flits": self.length_flits,
            "seed": self.seed,
            "replication": self.replication,
        }
        if self.load is not None:
            data["load"] = self.load
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(
            experiment=data["experiment"],
            kind=data["kind"],
            algorithm=data["algorithm"],
            dims=tuple(int(d) for d in data["dims"]),
            length_flits=int(data["length_flits"]),
            seed=int(data["seed"]),
            replication=int(data.get("replication", 0)),
            load=data.get("load"),
            params=freeze_params(**data.get("params", {})),
        )

    @property
    def unit_hash(self) -> str:
        """Stable 16-hex-digit content hash of the unit."""
        digest = hashlib.sha256(_canonical_json(self.as_dict()).encode())
        return digest.hexdigest()[:16]

    @property
    def cell_key(self) -> str:
        """Hash-independent grid-cell identity (the spec minus its
        replication index); replications of one cell aggregate together."""
        data = self.as_dict()
        data.pop("replication", None)
        return _canonical_json(data)

    def __str__(self) -> str:  # pragma: no cover - display aid
        dims = "x".join(map(str, self.dims))
        load = f" load={self.load:g}" if self.load is not None else ""
        return (
            f"{self.experiment}/{self.algorithm}@{dims}"
            f" L={self.length_flits}{load} r{self.replication}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered grid of units plus campaign identity.

    Unit hashes must be unique — a duplicated unit would silently
    collapse in the result store.
    """

    name: str
    seed: int
    units: Tuple[UnitSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", tuple(self.units))
        hashes = [u.unit_hash for u in self.units]
        if len(set(hashes)) != len(hashes):
            seen: Set[str] = set()
            dup = next(h for h in hashes if h in seen or seen.add(h))
            raise ValueError(f"duplicate unit in campaign {self.name!r}: {dup}")

    def __len__(self) -> int:
        return len(self.units)

    @property
    def campaign_hash(self) -> str:
        """Content hash over the ordered unit hashes."""
        digest = hashlib.sha256(
            "\n".join(u.unit_hash for u in self.units).encode()
        )
        return digest.hexdigest()[:16]

    def unit_hashes(self) -> List[str]:
        """Hashes of all units, in declaration order."""
        return [u.unit_hash for u in self.units]

    def pending(self, completed: Iterable[str]) -> List[UnitSpec]:
        """Units whose hash is not in ``completed``, in order."""
        done = set(completed)
        return [u for u in self.units if u.unit_hash not in done]

    def with_seed(self, seed: int) -> "CampaignSpec":
        """The same grid re-keyed to a different master seed."""
        name = self.name
        if name.endswith(f"-s{self.seed}"):
            name = name[: -len(f"-s{self.seed}")] + f"-s{seed}"
        return CampaignSpec(
            name=name,
            seed=seed,
            units=tuple(replace(u, seed=seed) for u in self.units),
        )
