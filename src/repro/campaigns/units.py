"""Built-in unit runners.

A unit runner maps one :class:`~repro.campaigns.spec.UnitSpec` to a
plain JSON-serialisable result dict.  Runners must be *deterministic
functions of the spec*: any randomness is re-derived from the spec's
master seed (named ``RandomStreams``), never taken from process-local
state, so a unit computes the same record no matter which worker — or
which resumed run — executes it.

Five kinds cover all of the paper's experiments:

* ``"broadcast"`` — one single-source broadcast on an idle network
  (the §3.1/§3.2 protocol).  The replication index selects which of
  the cell's shared random sources this unit measures; with
  ``barrier=True`` the same source is also run under step-barrier
  semantics (the tables' second CV column).
* ``"broadcast-cell"`` — a whole dims × algorithm cell (all of its
  random sources, event-driven runs paired with their barrier twins),
  declared instead of per-replication units when ``--shards`` asks the
  pool to slice the replication axis; the fan-out is chosen at
  dispatch time and can never change a float of the result.
* ``"broadcast-shard"`` — one contiguous source slice of a broadcast
  cell, returning the mergeable :class:`~repro.metrics.partial.
  BroadcastPartial` of its samples.
* ``"traffic"`` — one mixed unicast/broadcast load point (the §3.3
  protocol, batch means and all).  With a ``shards=K`` parameter the
  point is *defined* as K independent replications merged by the
  deterministic reducer in :mod:`repro.campaigns.shards`; executed
  inline here, the pool's parallel fan-out must match it byte for
  byte.
* ``"traffic-shard"`` — one shard of a sharded traffic point: the
  same simulation under the shard's ``shard{k}`` RNG namespace,
  collecting only its slice of the batch budget and returning the
  mergeable partial statistics the reducer consumes.

Usage — registering a custom runner::

    from repro.campaigns import register_unit_runner

    @register_unit_runner("my-kind")
    def run_my_unit(spec):
        value = simulate(spec.dims, spec.seed, spec.param("knob", 1.0))
        return {"value": value}          # plain JSON-serialisable dict

Runners execute inside worker processes, so they must be importable at
module level and return picklable plain data.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.campaigns.pool import register_unit_runner
from repro.campaigns.spec import UnitSpec

__all__ = [
    "BROADCAST_ENGINE_ENV",
    "ENGINES",
    "FAIL_UNITS_ENV",
    "InjectedFailureError",
    "broadcast_engine",
    "raise_injected_failure",
    "run_broadcast_unit",
    "run_broadcast_cell_unit",
    "run_broadcast_shard_unit",
    "run_traffic_unit",
    "run_traffic_shard_unit",
    "set_broadcast_engine",
]

#: Deterministic fault injection for failure-path drills (CI, chaos
#: tests, docs examples): a comma-separated list of unit-hash prefixes
#: (or ``*`` for every unit, or ``kind=<kind>``) whose execution raises
#: :class:`InjectedFailureError` instead of running the unit.  Worker
#: processes inherit the environment, so the injection reaches pooled
#: runs too.  Unset (the default) costs nothing — the pool only
#: consults this module when the variable is present.
FAIL_UNITS_ENV = "REPRO_FAIL_UNITS"


#: Broadcast execution engines.  ``"event"`` is the per-source
#: discrete-event path every release has used; ``"batched"`` routes
#: eligible sources through the structure-of-arrays sweep of
#: :mod:`repro.core.batch_broadcast` (falling back per-source where
#: exactness cannot be proved); ``"auto"`` — the default — is
#: ``"batched"``, relying on the same per-source fallback, since the
#: two engines are bit-identical on every record.  The choice is pure
#: work division (like a broadcast cell's shard fan-out) and is
#: deliberately **never** part of a unit's hashed parameters.
ENGINES = ("event", "batched", "auto")

#: Environment override for the engine choice; worker processes
#: inherit it, and the explicit ``engine=`` plumbing of
#: :func:`repro.campaigns.pool.run_campaign` takes precedence.
BROADCAST_ENGINE_ENV = "REPRO_BROADCAST_ENGINE"

_ENGINE_OVERRIDE: Optional[str] = None


def broadcast_engine() -> str:
    """The engine broadcast runners will use in this process.

    Resolution order: the process-wide override installed by
    :func:`set_broadcast_engine` (how ``--engine`` reaches worker
    processes), then :data:`BROADCAST_ENGINE_ENV`, then ``"auto"``.
    """
    if _ENGINE_OVERRIDE is not None:
        return _ENGINE_OVERRIDE
    value = os.environ.get(BROADCAST_ENGINE_ENV, "").strip().lower()
    return value if value in ENGINES else "auto"


def set_broadcast_engine(engine: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the engine override.

    Returns the previous override so callers can restore it; the
    campaign pool brackets each unit execution this way.
    """
    global _ENGINE_OVERRIDE
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown broadcast engine {engine!r}; choose from {ENGINES}"
        )
    previous = _ENGINE_OVERRIDE
    _ENGINE_OVERRIDE = engine
    return previous


class InjectedFailureError(RuntimeError):
    """Raised in place of running a unit matched by ``REPRO_FAIL_UNITS``."""


def raise_injected_failure(spec: UnitSpec) -> None:
    """Raise iff ``spec`` matches the ``REPRO_FAIL_UNITS`` patterns."""
    patterns = os.environ.get(FAIL_UNITS_ENV, "")
    for pattern in patterns.split(","):
        pattern = pattern.strip()
        if not pattern:
            continue
        if (
            pattern == "*"
            or spec.unit_hash.startswith(pattern)
            or pattern == f"kind={spec.kind}"
        ):
            raise InjectedFailureError(
                f"injected failure for unit {spec.unit_hash}"
                f" ({FAIL_UNITS_ENV} matched {pattern!r})"
            )


def _broadcast_source_results(
    spec: UnitSpec, sources
) -> list:
    """Per-source result dicts for ``sources``, in order.

    The single shared measurement kernel behind the ``"broadcast"``,
    ``"broadcast-cell"`` and ``"broadcast-shard"`` runners: each source
    runs one event-driven broadcast on a fresh idle network and, when
    the spec says ``barrier=True``, its closed-form barrier twin — the
    pair stays together, so any slicing of the source axis reproduces
    the same per-source floats.
    """
    from repro.experiments.common import (
        run_barrier_broadcasts,
        run_single_broadcasts,
    )

    startup_latency = float(spec.param("startup_latency", 1.5))
    if broadcast_engine() == "event":
        outcomes = run_single_broadcasts(
            spec.algorithm,
            spec.dims,
            sources,
            spec.length_flits,
            startup_latency,
            max_destinations_per_path=spec.param("max_destinations_per_path"),
            ports_override=spec.param("ports_override"),
        )
    else:
        # "batched" and "auto": the structure-of-arrays sweep, which
        # re-runs ineligible sources (adaptive schedules, failed
        # dynamic checks) event-driven per source — records are
        # bit-identical either way, hashes included.
        from repro.core.batch_broadcast import run_batch_broadcasts

        outcomes = run_batch_broadcasts(
            spec.algorithm,
            spec.dims,
            sources,
            spec.length_flits,
            startup_latency,
            max_destinations_per_path=spec.param("max_destinations_per_path"),
            ports_override=spec.param("ports_override"),
        )
    barriers = (
        run_barrier_broadcasts(
            spec.algorithm, spec.dims, sources, spec.length_flits,
            startup_latency,
        )
        if spec.param("barrier", False)
        else None
    )
    results = []
    for i, (source, outcome) in enumerate(zip(sources, outcomes)):
        result: Dict[str, Any] = {
            "source": list(source),
            "network_latency": outcome.network_latency,
            "mean_latency": outcome.mean_latency,
            "cv": outcome.coefficient_of_variation,
            "delivered": outcome.delivered_count,
        }
        if barriers is not None:
            result["barrier_cv"] = barriers[i].coefficient_of_variation
            result["barrier_network_latency"] = barriers[i].network_latency
        results.append(result)
    return results


@register_unit_runner("broadcast")
def run_broadcast_unit(spec: UnitSpec) -> Dict[str, Any]:
    """One event-driven broadcast (plus optional barrier twin)."""
    from repro.experiments.common import random_sources

    count = int(spec.param("sources_count", spec.replication + 1))
    if not 0 <= spec.replication < count:
        raise ValueError(
            f"replication {spec.replication} outside sources_count={count}"
        )
    # Every replication of a cell re-derives the *same* source sequence
    # from (dims, master seed), so all algorithms see identical sources —
    # the paper's fairness protocol — and any worker computes the same
    # unit.  The sequence is prefix-stable (draw r never depends on how
    # many draws follow), which is why the unit hash can omit the
    # scale's total source count and stay valid across scales.
    source = random_sources(spec.dims, count, spec.seed)[spec.replication]
    return _broadcast_source_results(spec, [source])[0]


@register_unit_runner("broadcast-cell")
def run_broadcast_cell_unit(spec: UnitSpec) -> Dict[str, Any]:
    """One whole broadcast cell: all its sources, in replication order.

    This is the *definition* of a sharded broadcast cell's result — it
    never mentions a fan-out, so however the pool slices the cell
    (``--shards K``, ``--shards auto``, different pools picking
    different plans), the merged record must (and does, see
    ``tests/test_campaign_shards.py``) reproduce it byte for byte.
    """
    from repro.campaigns.shards import cell_sources
    from repro.experiments.common import random_sources
    from repro.metrics.partial import BroadcastPartial

    count = cell_sources(spec)
    sources = random_sources(spec.dims, count, spec.seed)
    partial = BroadcastPartial.from_results(
        _broadcast_source_results(spec, sources)
    )
    return {"replications": count, **partial.to_dict()}


@register_unit_runner("broadcast-shard")
def run_broadcast_shard_unit(spec: UnitSpec) -> Dict[str, Any]:
    """One contiguous source slice of a broadcast cell (mergeable).

    The slice re-derives the cell's source sequence prefix (the
    "sources" stream is prefix-stable) and measures sources
    ``offset .. offset + count``; the returned partial slots into
    :func:`repro.campaigns.shards.merge_broadcast_shard_results`.
    """
    from repro.experiments.common import random_sources
    from repro.metrics.partial import BroadcastPartial

    offset = spec.param("source_offset")
    count = spec.param("source_count")
    if offset is None or count is None:
        raise ValueError(
            f"broadcast shard {spec.unit_hash} has no source slice"
        )
    offset, count = int(offset), int(count)
    sources = random_sources(spec.dims, offset + count, spec.seed)[offset:]
    partial = BroadcastPartial.from_results(
        _broadcast_source_results(spec, sources), offset=offset
    )
    return {
        "shard": int(spec.param("shard", 0)),
        "partial": partial.to_dict(),
    }


def _traffic_stats(spec: UnitSpec, shard: Any = None):
    """Run the simulation a traffic(-shard) spec describes."""
    from repro.network.topology import Mesh
    from repro.traffic.workload import MixedTrafficConfig, MixedTrafficSimulation

    if spec.load is None:
        raise ValueError(f"traffic unit {spec.unit_hash} has no load")
    config = MixedTrafficConfig(
        load_messages_per_ms=spec.load,
        broadcast_fraction=float(spec.param("broadcast_fraction", 0.1)),
        message_length_flits=spec.length_flits,
        batch_size=int(spec.param("batch_size", 25)),
        num_batches=int(spec.param("num_batches", 21)),
        discard=int(spec.param("discard", 1)),
        max_sim_time_us=float(spec.param("max_sim_time_us", 2_000_000.0)),
        seed=spec.seed,
        shard=shard,
    )
    return MixedTrafficSimulation(Mesh(spec.dims), spec.algorithm, config).run()


@register_unit_runner("traffic")
def run_traffic_unit(spec: UnitSpec) -> Dict[str, Any]:
    """One mixed-traffic load point (Figs. 3-4 protocol).

    ``shards=1`` (the default) is the original single-trajectory
    protocol; ``shards=K`` delegates to the sharded definition — K
    inline replications plus the deterministic reducer — which the
    campaign pool parallelises without changing a byte.
    """
    from repro.campaigns.shards import run_sharded_traffic_unit, unit_shards

    if unit_shards(spec) > 1:
        return run_sharded_traffic_unit(spec)
    stats = _traffic_stats(spec)
    return {
        "mean_latency_us": stats.mean_latency_us,
        "unicast_mean_latency_us": stats.unicast_mean_latency_us,
        "broadcast_mean_latency_us": stats.broadcast_mean_latency_us,
        "throughput_msgs_per_us": stats.throughput_msgs_per_us,
        "operations": stats.operations_completed,
        "saturated": stats.saturated,
    }


@register_unit_runner("traffic-shard")
def run_traffic_shard_unit(spec: UnitSpec) -> Dict[str, Any]:
    """One shard of a sharded traffic point (mergeable partials)."""
    shard = spec.param("shard")
    if shard is None:
        raise ValueError(f"shard unit {spec.unit_hash} has no shard index")
    stats = _traffic_stats(spec, shard=int(shard))
    return {
        "shard": int(shard),
        "latency_partial": stats.latency_partial,
        "bucket_counts": stats.bucket_counts,
        "bucket_totals": stats.bucket_totals,
        "throughput_count": stats.throughput_count,
        "throughput_span_us": stats.throughput_span_us,
        "operations": stats.operations_completed,
        "operations_generated": stats.operations_generated,
        "batches_completed": stats.batches_completed,
        "saturated": stats.saturated,
        "sim_time_us": stats.sim_time_us,
        "mean_latency_us": stats.mean_latency_us,
    }
