"""Campaign dispatch: scheduling policies + serial/pooled execution.

``run_campaign`` drains a campaign's pending units either in-process
or across ``workers`` processes (:class:`concurrent.futures.
ProcessPoolExecutor`).  Units are pure functions of their spec (every
random draw derives from the master seed via named streams), so *how*
they are dispatched — worker count, scheduling policy, which pool of a
multi-pool fleet runs them — changes only wall-clock time: the
returned records, and any rows aggregated from them, are byte-identical
to a serial run.

Three orthogonal dispatch concerns live here:

scheduling (``schedule=``)
    ``"fifo"`` dispatches in declaration order; ``"adaptive"`` orders
    pending units by :func:`estimate_unit_cost` (mesh size × traffic
    load × message length), largest first, so the slowest cells start
    early and the campaign's makespan shrinks (classic longest-
    processing-time list scheduling).
leasing (``store=`` with a lease-capable backend)
    Before executing a unit the pool claims it through the store's
    lease protocol; units claimed by a concurrent pool are deferred
    and re-checked, so a fleet of pools sharing one store completes a
    campaign with no unit executed twice.
caching (``cache=``)
    Extra read-only stores consulted before execution.  Any prior
    record with the same content hash — e.g. a ``quick``-scale store
    whose grid overlaps this ``full`` campaign — is reused and copied
    into the primary store.

A fourth concern is layered on top of all three: sharded parents fan
out into shard units (leased, scheduled and cached individually) plus
a deterministic merge that fires — in whichever pool observes the last
shard — as soon as all shard records exist.  Traffic points declare
their fan-out in their hashed ``shards=K`` parameter (it is protocol);
broadcast cells get theirs from ``run_campaign``'s ``shards=`` request
at dispatch time — including the cost-model-driven ``shards="auto"`` —
because slicing a cell's source axis can never change a float of its
merged record; see :mod:`repro.campaigns.shards`.

Unit runners register under a *kind* key ("broadcast", "traffic");
:mod:`repro.campaigns.units` provides the built-ins and is imported
lazily so the campaigns layer never drags the experiments package into
its import cycle.

Example::

    from repro.campaigns import open_store, run_campaign

    store = open_store("campaigns/fig4-full-s0.sqlite")
    cache = [open_store("campaigns/fig4-quick-s0.sqlite")]
    records = run_campaign(spec, workers=8, store=store,
                           schedule="adaptive", cache=cache)
"""

from __future__ import annotations

import math
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Union

from repro.campaigns.spec import CampaignSpec, UnitSpec
from repro.campaigns.store import (
    DEFAULT_LEASE_TTL_S,
    STATUS_FAILED,
    CampaignStore,
    TracedStore,
    UnitRecord,
    make_failure_record,
    make_owner_id,
)
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaigns.costmodel import CostModel

__all__ = [
    "ProgressFn",
    "SCHEDULES",
    "TooManyFailuresError",
    "WorkerCrashError",
    "estimate_unit_cost",
    "lease_heartbeat",
    "order_units",
    "register_unit_runner",
    "execute_unit",
    "run_campaign",
]


class TooManyFailuresError(RuntimeError):
    """Quarantined-unit count exceeded the campaign's ``max_failures``."""


class WorkerCrashError(RuntimeError):
    """A worker process died mid-execute (OOM kill, SIGKILL, segfault).

    Synthesised by the pool's crash supervision: the broken executor's
    in-flight units are each charged one attempt with this error, so a
    unit that reliably kills its worker exhausts its retry budget and
    quarantines instead of crash-looping the pool, while innocent
    bystanders re-run and their ok record overwrites the charge.
    """

#: kind → runner(spec) -> result dict.
_UNIT_RUNNERS: Dict[str, Callable[[UnitSpec], Dict[str, Any]]] = {}

ProgressFn = Callable[[str], None]

#: scheduling policies accepted by :func:`run_campaign`.
SCHEDULES = ("fifo", "adaptive")


def register_unit_runner(
    kind: str,
) -> Callable[[Callable[[UnitSpec], Dict[str, Any]]], Callable]:
    """Decorator registering a unit runner for ``kind``."""

    def decorate(fn: Callable[[UnitSpec], Dict[str, Any]]) -> Callable:
        _UNIT_RUNNERS[kind] = fn
        return fn

    return decorate


def _runner_for(kind: str) -> Callable[[UnitSpec], Dict[str, Any]]:
    if kind not in _UNIT_RUNNERS:
        # Built-in runners live one import away; registering them here
        # (rather than at module import) keeps campaigns importable
        # from inside repro.experiments without a cycle.
        import repro.campaigns.units  # noqa: F401

    try:
        return _UNIT_RUNNERS[kind]
    except KeyError:
        raise ValueError(
            f"no unit runner registered for kind {kind!r};"
            f" known kinds: {sorted(_UNIT_RUNNERS)}"
        ) from None


# ---------------------------------------------------------------- schedule
def estimate_unit_cost(
    spec: UnitSpec, model: Optional["CostModel"] = None
) -> float:
    """Relative wall-clock cost estimate for one unit.

    With a fitted :class:`~repro.campaigns.costmodel.CostModel` (from
    ``repro campaign fit-cost``) the estimate is the model's predicted
    wall seconds; otherwise it falls back to the static heuristic — a
    pure function of the spec (no timing, no state): mesh size ×
    traffic load × message length, with traffic units further scaled
    by their batch budget and barrier twins counted twice.  Only the
    *ordering* of estimates matters — the adaptive scheduler sorts by
    it — so crude is fine as long as 16×16×8 at high load reliably
    outranks 4×4×4 at idle.
    """
    if model is not None:
        return model.predict(spec)
    from repro.campaigns.costmodel import unit_budget

    nodes = float(math.prod(spec.dims))
    cost = nodes * float(max(spec.length_flits, 1))
    if spec.load is not None:
        cost *= max(float(spec.load), 1.0)
    # The kind's own work budget (a traffic unit's observation count,
    # a broadcast cell's source count, a shard's slice of either) —
    # shared with the fitted model's budget feature, so the heuristic
    # and the model rank the same units the same way.  A shard's
    # params carry its own (smaller) slice, so the estimate is
    # naturally per-shard: the LPT scheduler orders shards against
    # whole points on the same scale.
    cost *= max(unit_budget(spec), 1.0)
    if spec.param("barrier", False):
        cost *= 2.0  # the unit also runs its barrier twin
    return cost


def order_units(
    units: Sequence[UnitSpec],
    schedule: str = "fifo",
    model: Optional["CostModel"] = None,
) -> List[UnitSpec]:
    """Dispatch order for ``units`` under a scheduling policy.

    ``"fifo"`` keeps declaration order; ``"adaptive"`` sorts by
    descending :func:`estimate_unit_cost` (optionally under a fitted
    ``model``) with declaration order as the tie-break, so the
    ordering is deterministic for a given grid and model file.
    """
    if schedule == "fifo":
        return list(units)
    if schedule == "adaptive":
        indexed = sorted(
            enumerate(units),
            key=lambda pair: (-estimate_unit_cost(pair[1], model), pair[0]),
        )
        return [unit for _, unit in indexed]
    raise ValueError(
        f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
    )


# --------------------------------------------------------------- execution
def execute_unit(
    spec: UnitSpec,
    tracer: Any = NULL_TRACER,
    engine: Optional[str] = None,
) -> UnitRecord:
    """Run one unit and wrap its result as a :class:`UnitRecord`.

    ``engine`` (event/batched/auto, ``None`` = leave the process
    default alone) selects the broadcast execution engine for the
    duration of this unit — pure work division, bit-identical records,
    never part of the unit hash.
    """
    runner = _runner_for(spec.kind)
    previous_engine: Optional[str] = None
    if engine is not None:
        from repro.campaigns.units import set_broadcast_engine

        previous_engine = set_broadcast_engine(engine)
    started = time.perf_counter()
    try:
        with tracer.span(
            "unit.execute",
            cat="unit",
            unit=spec.unit_hash,
            kind=spec.kind,
            experiment=spec.experiment,
        ):
            import os

            if os.environ.get("REPRO_FAIL_UNITS"):
                # Deterministic fault injection for failure-path drills;
                # free when the variable is unset (no import, one getenv).
                from repro.campaigns.units import raise_injected_failure

                raise_injected_failure(spec)
            result = runner(spec)
    finally:
        if engine is not None:
            from repro.campaigns.units import set_broadcast_engine

            set_broadcast_engine(previous_engine)
    return UnitRecord(
        unit_hash=spec.unit_hash,
        experiment=spec.experiment,
        spec=spec.as_dict(),
        result=result,
        elapsed_s=time.perf_counter() - started,
    )


@contextmanager
def lease_heartbeat(
    store: Optional[CampaignStore],
    unit_hash: str,
    owner: str,
    ttl_s: float = DEFAULT_LEASE_TTL_S,
    tracer: Any = NULL_TRACER,
):
    """Refresh a unit's lease from the process executing it.

    A daemon thread re-claims the lease every TTL/3 for as long as the
    unit runs, so the stale-steal TTL can sit well below the longest
    unit's duration: a *live* worker keeps its lease fresh forever,
    while a crashed worker stops heartbeating and loses the unit one
    TTL later.  Best-effort by design — a failed refresh only means
    peers may duplicate (never corrupt) the unit's work — but never
    *silent*: each failure emits a ``heartbeat.error`` trace event and
    a :class:`RuntimeWarning`, so a store that keeps rejecting
    refreshes shows up instead of manifesting as mystery duplicate
    work minutes later.

    One deliberate race: a refresh that is already in flight when the
    unit finishes can re-create the lease *after* the pool released
    it, leaving a phantom lease until its TTL expires.  This is
    harmless by construction — records are appended *before* release,
    so the unit the phantom covers always has a stored record, which
    status reporting and peer pools check first (they absorb the
    record on their next poll instead of waiting out the lease).

    No-op for stores without lease support (or no store at all).
    """
    if store is None or not store.supports_leases:
        yield
        return
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(ttl_s / 3.0):
            try:
                store.try_claim(unit_hash, owner, ttl_s=ttl_s)
            except Exception as exc:  # e.g. store unreachable
                # The TTL still bounds how stale the lease can get, but
                # surface the failure: peers may now duplicate the unit.
                tracer.event(
                    "heartbeat.error",
                    cat="lease",
                    unit=unit_hash,
                    error=repr(exc),
                )
                warnings.warn(
                    f"lease heartbeat for unit {unit_hash[:12]} failed"
                    f" ({exc!r}); the lease may expire mid-run and a"
                    f" concurrent pool may duplicate this unit's work",
                    RuntimeWarning,
                )
            else:
                tracer.event("heartbeat.beat", cat="lease", unit=unit_hash)

    thread = threading.Thread(
        target=beat, daemon=True, name=f"lease-heartbeat-{unit_hash[:8]}"
    )
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=1.0)


#: (trace_dir, role) → this process's tracer.  Tracers hold open file
#: handles and thread-local state, so they never cross process
#: boundaries — the pool ships the spool *directory* instead and every
#: process (coordinator and workers alike) lazily builds one tracer
#: writing to its own ``<role>-<pid>.jsonl`` file.
_PROCESS_TRACERS: Dict[Any, Any] = {}


def _process_tracer(trace_dir: Optional[Union[str, Path]], role: str) -> Any:
    """This process's tracer for a spool dir (``NULL_TRACER`` if none)."""
    if trace_dir is None:
        return NULL_TRACER
    import os

    from repro.obs.trace import JsonlSink, Tracer, worker_trace_path

    key = (str(trace_dir), role)
    tracer = _PROCESS_TRACERS.get(key)
    if tracer is None:
        path = worker_trace_path(trace_dir, role, os.getpid())
        tracer = Tracer(JsonlSink(path), role=role)
        _PROCESS_TRACERS[key] = tracer
    return tracer


def _execute_payload(
    payload: Dict[str, Any],
    store: Optional[CampaignStore] = None,
    owner: str = "",
    ttl_s: float = DEFAULT_LEASE_TTL_S,
    trace_dir: Optional[str] = None,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Worker-process entry point (module-level so it pickles).

    The worker refreshes its own unit's lease while executing it (see
    :func:`lease_heartbeat`); the coordinating pool only claims and
    releases.  When the campaign is traced the worker spools its
    ``unit.execute`` spans to its own per-pid file in ``trace_dir``.
    """
    spec = UnitSpec.from_dict(payload)
    tracer = _process_tracer(trace_dir, "worker")
    if tracer.enabled and store is not None and hasattr(store, "set_tracer"):
        # Remote stores emit rpc.* events (heartbeat claims, retries)
        # through whatever tracer their process carries; the pickled
        # copy arrived bare, so hand it this worker's.
        store.set_tracer(tracer)
    with lease_heartbeat(store, spec.unit_hash, owner, ttl_s, tracer=tracer):
        return execute_unit(spec, tracer=tracer, engine=engine).to_dict()


def _warm_from_caches(
    wanted: Sequence[str],
    records: Dict[str, UnitRecord],
    store: Optional[CampaignStore],
    cache: Sequence[CampaignStore],
    tracer: Any = NULL_TRACER,
) -> int:
    """Copy cache hits into ``records`` (and the primary store)."""
    hits = 0
    for cache_store in cache:
        cached = cache_store.records()
        for unit_hash in wanted:
            if unit_hash in records or unit_hash not in cached:
                continue
            record = cached[unit_hash]
            if not record.ok:
                continue  # a cache's failure record is not a result
            records[unit_hash] = record
            tracer.event(
                "cache.hit",
                cat="cache",
                unit=unit_hash,
                source=cache_store.describe(),
            )
            if store is not None:
                store.append(record)
            hits += 1
    return hits


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    *,
    schedule: str = "fifo",
    cache: Sequence[CampaignStore] = (),
    cost_model: Optional["CostModel"] = None,
    shards: int | str = 1,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = 0.5,
    trace_dir: Optional[Union[str, Path]] = None,
    retries: int = 2,
    max_failures: Optional[int] = None,
    retry_backoff_s: float = 0.5,
    engine: Optional[str] = None,
) -> List[UnitRecord]:
    """Execute a campaign and return its records in declaration order.

    Parameters are documented on :func:`_run_campaign`'s body below,
    except:

    engine:
        Broadcast execution engine (``"event"``, ``"batched"`` or
        ``"auto"``; ``None`` keeps the process default, normally
        ``auto``).  Like a broadcast cell's shard fan-out this is pure
        work division — records are bit-identical whichever engine
        computes them, so the choice is never content-hashed and racing
        pools may disagree about it freely.

    trace_dir:
        When given, the run is traced: this pool process and every
        worker spool span/event records (campaign → unit → merge
        spans; claim / steal / heartbeat / cache-hit events; store op
        latencies) into per-process JSONL files under this directory.
        ``None`` (the default) traces nothing and costs nothing — the
        producers all run against the shared no-op tracer.  Tracing is
        pure observation: records, row order and stored bytes are
        identical either way.

    When called from the main thread, SIGINT/SIGTERM are rerouted to
    ``KeyboardInterrupt`` for the duration of the run so both unwind
    identically: active futures are cancelled, every held lease is
    released, and a one-line summary is emitted — a peer pool sharing
    the store takes over immediately instead of waiting out lease
    TTLs.  The previous handlers are restored on exit.
    """
    tracer = _process_tracer(trace_dir, "pool")
    restore_signals: List[Any] = []
    if threading.current_thread() is threading.main_thread():
        import signal

        def _graceful(signum: int, frame: Any) -> None:
            raise KeyboardInterrupt(f"signal {signum}")

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                restore_signals.append((sig, signal.signal(sig, _graceful)))
            except (ValueError, OSError):  # pragma: no cover - platform
                pass
    try:
        with tracer.span(
            "campaign",
            cat="campaign",
            campaign=spec.name,
            units=len(spec),
            workers=workers,
            schedule=schedule,
            shards=str(shards),
        ):
            return _run_campaign(
                spec,
                workers,
                store,
                progress,
                schedule=schedule,
                cache=cache,
                cost_model=cost_model,
                shards=shards,
                lease_ttl_s=lease_ttl_s,
                poll_interval_s=poll_interval_s,
                trace_dir=None if trace_dir is None else str(trace_dir),
                tracer=tracer,
                retries=retries,
                max_failures=max_failures,
                retry_backoff_s=retry_backoff_s,
                engine=engine,
            )
    finally:
        if restore_signals:
            import signal

            for sig, previous in restore_signals:
                signal.signal(sig, previous)
        # The pool's spool file lives exactly as long as its campaign:
        # drop the cached tracer and close the handle (a resumed run
        # re-opens the same file in append mode).  Worker tracers are
        # closed implicitly when the worker processes exit with the
        # executor.
        if tracer.enabled:
            _PROCESS_TRACERS.pop((str(trace_dir), "pool"), None)
            tracer.close()


def _run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    *,
    schedule: str = "fifo",
    cache: Sequence[CampaignStore] = (),
    cost_model: Optional["CostModel"] = None,
    shards: int | str = 1,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = 0.5,
    trace_dir: Optional[str] = None,
    tracer: Any = NULL_TRACER,
    retries: int = 2,
    max_failures: Optional[int] = None,
    retry_backoff_s: float = 0.5,
    engine: Optional[str] = None,
) -> List[UnitRecord]:
    """The campaign engine (:func:`run_campaign` wraps it in a span).

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Process count; ``1`` runs in-process (no pool, no pickling).
    store:
        Optional :class:`~repro.campaigns.store.CampaignStore`.  Units
        already present are *not* re-executed (their stored record is
        reused), and every fresh record is appended as soon as it
        completes — interrupting the run loses at most the units in
        flight.  On a lease-capable backend (sqlite/shared) the pool
        claims each unit before executing it, so concurrent pools
        sharing the store divide the campaign between them.
    progress:
        Optional callback for human-readable progress lines.
    schedule:
        ``"fifo"`` (declaration order) or ``"adaptive"``
        (largest-estimated-cost first); see :func:`order_units`.
        Scheduling affects dispatch order only — results and row
        order are identical under every policy.
    cache:
        Read-only stores consulted for prior records with the same
        content hash (e.g. the overlapping ``quick``-scale store of a
        ``full`` campaign).  Hits are copied into ``store``.
    cost_model:
        Optional fitted :class:`~repro.campaigns.costmodel.CostModel`
        used by ``schedule="adaptive"`` instead of the static
        heuristic (``repro campaign fit-cost`` produces one; the CLI
        auto-loads ``campaigns/cost_model.json`` when present).
        Affects dispatch order only, never results.
    shards:
        Fan-out request for **broadcast cell** units (kind
        ``"broadcast-cell"``): an integer slices each cell's source
        axis that many ways (capped by the cell's replication count),
        ``"auto"`` inverts the fitted cost model per cell — capped by
        ``workers`` and a minimum per-shard budget
        (:func:`repro.campaigns.costmodel.auto_shard_count`).  The
        expansion happens here, at dispatch time, because a broadcast
        cell's fan-out is pure work division: it is not part of the
        cell's content hash, racing pools agree on sub-unit identity
        through the shards' own content hashes, and *any* fan-out
        merges to the byte-identical cell record.  Traffic parents
        ignore this argument — their hashed ``shards`` parameter is
        the measurement protocol, fixed when the grid was declared.
    lease_ttl_s:
        How long a claimed unit stays reserved; a pool that crashes
        mid-unit blocks that unit from peers for at most this long
        (same-host crashes are detected immediately).  The process
        executing a unit — pool worker or the serial in-process path —
        heartbeats its lease every TTL/3 for as long as the unit runs
        (:func:`lease_heartbeat`), so the TTL never needs to exceed a
        unit's duration: it only bounds how long a *crashed* worker's
        unit stays blocked.
    poll_interval_s:
        Sleep between re-checks while waiting on units leased by a
        concurrent pool.
    retries:
        Failed-unit re-execution budget: a raising unit is retried up
        to this many times (``retries + 1`` attempts total) with
        exponential backoff (``retry_backoff_s * 2**attempt``), its
        failure persisted to the store as a ``status="failed"`` record
        after every attempt.  The attempt count rides in the record,
        so racing pools sharing a store honour *one* budget: whoever
        claims the unit next reads the ledger back and continues it.
        After exhaustion the unit is **quarantined** — skipped by this
        run and every peer/resume until ``campaign retry-failed``
        clears its record (or a successful re-run overwrites it).
    max_failures:
        Abort the campaign (raising :class:`TooManyFailuresError`)
        once more than this many units have quarantined.  ``None``
        (the default) never aborts — failures are data, healthy units
        all complete.  ``0`` restores strict fail-fast: the first
        failing attempt re-raises immediately (no retries), as the
        engine behaved before failure domains existed.
    retry_backoff_s:
        Base of the exponential retry backoff (attempt ``n`` waits
        ``retry_backoff_s * 2**(n-1)`` before re-queueing).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if max_failures is not None and max_failures < 0:
        raise ValueError(
            f"max_failures must be >= 0 or None, got {max_failures}"
        )
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
        )
    if not (shards == "auto" or (isinstance(shards, int) and shards >= 1)):
        raise ValueError(
            f"shards must be a positive int or 'auto', got {shards!r}"
        )
    if cost_model is None and (schedule == "adaptive" or shards == "auto"):
        # Opportunistically use the fitted model from a prior
        # `repro campaign fit-cost` run; silently absent otherwise.
        from repro.campaigns.costmodel import load_default_cost_model

        cost_model = load_default_cost_model()
        if cost_model is not None and progress:
            progress(
                f"campaign {spec.name}: using fitted cost model"
                f" ({cost_model.samples} samples,"
                f" R^2={cost_model.r_squared:.2f})"
            )

    # Sharded parents never execute directly: they fan out into shard
    # units and a deterministic merge that fires — in whichever pool
    # observes the last shard — as soon as all shard records exist.
    # Traffic parents carry their fan-out in their hashed shards=K
    # parameter (it is protocol); broadcast cells resolve the `shards`
    # request here, at dispatch time (their fan-out is pure work
    # division and never part of the hash).
    from repro.campaigns.shards import (
        merge_shard_records,
        planned_shards,
        shard_specs,
    )

    shard_plan: Dict[str, List[UnitSpec]] = {}
    shard_parent: Dict[str, str] = {}
    parent_by_hash: Dict[str, UnitSpec] = {}
    for unit in spec.units:
        fan_out = planned_shards(
            unit,
            requested=shards,
            cost_model=cost_model,
            workers=workers,
            engine=engine,
        )
        if fan_out > 1:
            plan = shard_specs(unit, fan_out)
            shard_plan[unit.unit_hash] = plan
            parent_by_hash[unit.unit_hash] = unit
            for shard in plan:
                shard_parent[shard.unit_hash] = unit.unit_hash

    # Workers get the raw store (tracers hold file handles and never
    # pickle); the coordinator's own store ops go through the traced
    # wrapper so backend latencies land in the trace.  Remote stores
    # additionally emit their own rpc.* events (calls, retries) through
    # this pool's tracer.
    raw_store = store
    if tracer.enabled and store is not None:
        if hasattr(store, "set_tracer"):
            store.set_tracer(tracer)
        store = TracedStore(store, tracer)

    wanted = spec.unit_hashes()
    wanted += [s.unit_hash for plan in shard_plan.values() for s in plan]
    records: Dict[str, UnitRecord] = {}
    failures: Dict[str, UnitRecord] = {}  # unit hash → latest failure
    attempts: Dict[str, int] = {}  # unit hash → attempts charged so far
    if store is not None:
        wanted_set = set(wanted)
        for h, rec in store.records().items():
            if h not in wanted_set:
                continue
            if rec.ok:
                records[h] = rec
            else:
                # A prior run's (or racing pool's) failure record: its
                # attempt count seeds the shared retry ledger.
                failures[h] = rec
                attempts[h] = rec.attempts
    cache_hits = _warm_from_caches(wanted, records, store, cache, tracer)

    owner = make_owner_id()
    claiming = store is not None and store.supports_leases
    quarantined: set = set()  # unit hashes past their retry budget
    cooldown: List[Any] = []  # (monotonic ready time, unit) backoff queue

    def release_quietly(unit_hash: str) -> None:
        """Best-effort release — never mask the error being handled.

        Used on every error path: if the *store* is what failed (e.g.
        an unreachable coordinator), releasing would raise the same
        error again and bury the original; the lease TTL bounds the
        cost of leaving it behind.
        """
        if not claiming:
            return
        try:
            store.release(unit_hash, owner)
        except Exception:
            pass

    def finish(record: UnitRecord) -> None:
        records[record.unit_hash] = record
        if store is not None:
            try:
                store.append(record)
                if claiming:
                    store.release(record.unit_hash, owner)
            except BaseException:
                # Append failed (store unreachable mid-campaign):
                # don't strand the lease behind the dead store — the
                # release is best-effort and the original error
                # surfaces as the CLI's one-line store error.
                release_quietly(record.unit_hash)
                raise
        _after_land(record.unit_hash)

    def quarantine(unit: UnitSpec, record: UnitRecord) -> None:
        """Mark a unit permanently failed (budget exhausted)."""
        if unit.unit_hash in quarantined:
            return
        quarantined.add(unit.unit_hash)
        failures[unit.unit_hash] = record
        tracer.event(
            "unit.quarantine",
            cat="unit",
            unit=unit.unit_hash,
            attempts=record.attempts,
            error=record.failure_reason,
        )
        if progress:
            progress(
                f"campaign {spec.name}: unit {unit.unit_hash[:12]}"
                f" quarantined after {record.attempts} attempt(s) —"
                f" {record.failure_reason}"
            )
        if max_failures is not None and len(quarantined) > max_failures:
            raise TooManyFailuresError(
                f"campaign {spec.name}: {len(quarantined)} unit(s) failed"
                f" permanently (max_failures={max_failures}); `campaign"
                f" status` lists the reasons, `campaign retry-failed`"
                f" clears the quarantine records"
            )

    def unit_failed(unit: UnitSpec, exc: BaseException) -> None:
        """Charge one failed attempt; retry, quarantine, or re-raise."""
        unit_hash = unit.unit_hash
        attempt = attempts.get(unit_hash, 0) + 1
        attempts[unit_hash] = attempt
        reason = f"{type(exc).__name__}: {exc}"
        tracer.event(
            "unit.error",
            cat="unit",
            unit=unit_hash,
            error=reason,
            attempt=attempt,
        )
        record = make_failure_record(unit, exc, attempts=attempt, owner=owner)
        failures[unit_hash] = record
        if store is not None:
            try:
                # Persist the attempt *before* releasing: a racing pool
                # that claims next reads the ledger and continues the
                # shared budget instead of restarting its own.
                store.append(record)
            finally:
                release_quietly(unit_hash)
        if max_failures == 0:
            raise exc  # strict fail-fast: pre-failure-domain semantics
        if attempt >= retries + 1:
            quarantine(unit, record)
            return
        backoff = retry_backoff_s * (2.0 ** (attempt - 1))
        tracer.event(
            "unit.retry",
            cat="unit",
            unit=unit_hash,
            attempt=attempt,
            backoff_s=round(backoff, 3),
        )
        if progress:
            progress(
                f"campaign {spec.name}: unit {unit_hash[:12]} failed"
                f" (attempt {attempt}/{retries + 1}: {reason});"
                f" retrying in {backoff:.1f}s"
            )
        cooldown.append((time.monotonic() + backoff, unit))

    def absorb(record: UnitRecord) -> None:
        """Adopt a record a peer pool or cache already persisted."""
        records[record.unit_hash] = record
        tracer.event("unit.absorbed", cat="campaign", unit=record.unit_hash)
        _after_land(record.unit_hash)

    def _after_land(unit_hash: str) -> None:
        """Merge a sharded parent once its last shard has landed."""
        parent_hash = shard_parent.get(unit_hash)
        if parent_hash is None or parent_hash in records:
            return
        members = []
        for shard in shard_plan[parent_hash]:
            member = records.get(shard.unit_hash)
            if member is None:
                return  # siblings still in flight
            members.append(member)
        if store is not None:
            # A peer pool may have observed the last shard first and
            # already merged the parent (e.g. we absorbed its shards
            # after our store snapshot).  The merge is deterministic,
            # so re-deriving it would be harmless — but re-*appending*
            # it would duplicate the parent record in append-only
            # backends and double-report the merge; adopt the stored
            # record instead.
            existing = store.get(parent_hash)
            if existing is not None:
                absorb(existing)
                return
        with tracer.span(
            "unit.merge", cat="unit", unit=parent_hash, shards=len(members)
        ):
            merged = merge_shard_records(parent_by_hash[parent_hash], members)
        finish(merged)

    # Resume mid-merge: a prior run may have completed every shard of
    # a parent without persisting the merge (the merge is idempotent
    # and deterministic, so re-deriving it is always safe).
    for parent_hash, plan in shard_plan.items():
        if parent_hash not in records:
            _after_land(plan[0].unit_hash)

    def retryable(unit: UnitSpec) -> bool:
        """Queue-or-quarantine triage for a not-yet-completed unit."""
        if unit.unit_hash in records:
            return False
        stored_failure = failures.get(unit.unit_hash)
        if (
            stored_failure is not None
            and attempts.get(unit.unit_hash, 0) >= retries + 1
        ):
            quarantine(unit, stored_failure)
            return False
        return True

    pending: List[UnitSpec] = []
    for unit in spec.pending(records):
        if unit.unit_hash in shard_plan:
            pending.extend(
                s for s in shard_plan[unit.unit_hash] if retryable(s)
            )
        elif retryable(unit):
            pending.append(unit)
    if progress:
        cached_note = (
            f"{len(records)} cached"
            + (f" ({cache_hits} from cache stores)" if cache_hits else "")
        )
        quarantine_note = (
            f", {len(quarantined)} quarantined" if quarantined else ""
        )
        shard_note = (
            f" [{len(shard_plan)} sharded unit(s),"
            f" {len(shard_parent)} shards]"
            if shard_plan
            else ""
        )
        progress(
            f"campaign {spec.name}: {len(spec)} units{shard_note}"
            f" ({cached_note}{quarantine_note}, {len(pending)} to run,"
            f" workers={min(workers, max(len(pending), 1))},"
            f" schedule={schedule})"
        )

    queue = deque(order_units(pending, schedule, cost_model))
    deferred: List[UnitSpec] = []  # leased by a concurrent pool
    deferred_ever: set = set()  # a later claim of these is a steal/retry
    last_wait_note = -1  # dedupe "waiting on N" progress lines
    max_active = min(workers, max(len(queue), 1))
    pool = (
        ProcessPoolExecutor(max_workers=max_active)
        if workers > 1 and len(queue) > 1
        else None
    )
    active: Dict[Any, UnitSpec] = {}

    def respawn_pool(lost: List[UnitSpec]) -> None:
        """Replace a broken executor and charge its in-flight units.

        A dead worker (OOM kill, SIGKILL, segfault) breaks the whole
        ``ProcessPoolExecutor``; every queued-or-running future is
        lost.  Respawn it and put each lost unit through the normal
        failure path — the worker-killer is among them, so it burns
        budget and eventually quarantines instead of crash-looping the
        pool, while innocents re-run and overwrite their charge.
        """
        nonlocal pool
        active.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=max_active)
        tracer.event(
            "pool.respawn", cat="pool", lost=len(lost), workers=max_active
        )
        if progress:
            progress(
                f"campaign {spec.name}: worker pool crashed; respawned"
                f" {max_active} worker(s), retrying {len(lost)}"
                f" in-flight unit(s)"
            )
        crash = WorkerCrashError(
            "worker process died mid-execute (process pool broken)"
        )
        for lost_unit in lost:
            unit_failed(lost_unit, crash)

    interrupted = False
    try:
        while queue or active or deferred or cooldown:
            if cooldown:
                now = time.monotonic()
                ready = [u for t, u in cooldown if t <= now]
                if ready:
                    cooldown[:] = [(t, u) for t, u in cooldown if t > now]
                    queue.extend(ready)
            while queue and len(active) < max_active:
                unit = queue.popleft()
                if unit.unit_hash in records or unit.unit_hash in quarantined:
                    continue
                if claiming:
                    if not store.try_claim(
                        unit.unit_hash, owner, ttl_s=lease_ttl_s
                    ):
                        tracer.event(
                            "lease.deferred", cat="lease", unit=unit.unit_hash
                        )
                        deferred_ever.add(unit.unit_hash)
                        deferred.append(unit)
                        continue
                    # A previously deferred unit claimed now means the
                    # peer's lease expired without a record landing —
                    # an effective steal of a stale lease.
                    tracer.event(
                        "lease.steal"
                        if unit.unit_hash in deferred_ever
                        else "lease.claim",
                        cat="lease",
                        unit=unit.unit_hash,
                    )
                    # A peer may have completed-and-released this unit
                    # after our snapshot of the store; peers append
                    # before releasing, so a fresh claim with a stored
                    # record means the work is already done — or, for a
                    # failure record, tells us how much of the shared
                    # retry budget is already spent.
                    existing = store.get(unit.unit_hash)
                    if existing is not None:
                        if existing.ok:
                            store.release(unit.unit_hash, owner)
                            absorb(existing)
                            continue
                        attempts[unit.unit_hash] = max(
                            attempts.get(unit.unit_hash, 0),
                            existing.attempts,
                        )
                        failures[unit.unit_hash] = existing
                        if attempts[unit.unit_hash] >= retries + 1:
                            store.release(unit.unit_hash, owner)
                            quarantine(unit, existing)
                            continue
                if pool is None:
                    try:
                        with lease_heartbeat(
                            store if claiming else None,
                            unit.unit_hash,
                            owner,
                            lease_ttl_s,
                            tracer=tracer,
                        ):
                            record = execute_unit(
                                unit, tracer=tracer, engine=engine
                            )
                    except Exception as exc:
                        # Per-unit fault isolation: record the failure
                        # (which releases the lease) and keep draining.
                        unit_failed(unit, exc)
                        continue
                    except BaseException:
                        release_quietly(unit.unit_hash)  # don't strand it
                        raise
                    finish(record)
                else:
                    # Each worker heartbeats its own lease while the
                    # unit runs (see lease_heartbeat), so the TTL can
                    # sit below the longest unit's duration.  Workers
                    # take the *raw* store — their own tracer (built
                    # from trace_dir) covers their side.
                    try:
                        future = pool.submit(
                            _execute_payload,
                            unit.as_dict(),
                            raw_store if claiming else None,
                            owner,
                            lease_ttl_s,
                            trace_dir,
                            engine,
                        )
                    except BrokenProcessPool:
                        # The pool broke between batches; this unit
                        # never started, so requeue it uncharged.
                        release_quietly(unit.unit_hash)
                        queue.appendleft(unit)
                        respawn_pool(list(active.values()))
                        continue
                    active[future] = unit
            if active:
                done, _ = wait(
                    active,
                    timeout=max(lease_ttl_s / 6.0, poll_interval_s),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    unit = active.pop(future)
                    try:
                        record = UnitRecord.from_dict(future.result())
                    except BrokenProcessPool:
                        # Everything still in `active` died with the
                        # executor; respawn charges them all.
                        respawn_pool([unit] + list(active.values()))
                        break
                    except Exception as exc:
                        unit_failed(unit, exc)
                        continue
                    finish(record)
                continue
            if deferred:
                # Every remaining unit is leased elsewhere: wait for
                # peer results to land (or their leases to expire) and
                # retry whatever is still missing.  Point lookups, not
                # a full store scan — this loop runs on every poll.
                missing = []
                for unit in deferred:
                    if (
                        unit.unit_hash in records
                        or unit.unit_hash in quarantined
                    ):
                        continue
                    peer_record = store.get(unit.unit_hash)
                    if peer_record is None:
                        missing.append(unit)
                    elif peer_record.ok:
                        absorb(peer_record)
                    else:
                        # The peer's attempt failed: continue the
                        # shared budget from its ledger.
                        attempts[unit.unit_hash] = max(
                            attempts.get(unit.unit_hash, 0),
                            peer_record.attempts,
                        )
                        failures[unit.unit_hash] = peer_record
                        if attempts[unit.unit_hash] >= retries + 1:
                            quarantine(unit, peer_record)
                        else:
                            missing.append(unit)
                deferred = []
                if missing:
                    if progress and len(missing) != last_wait_note:
                        last_wait_note = len(missing)
                        progress(
                            f"campaign {spec.name}: waiting on"
                            f" {len(missing)} unit(s) leased by a"
                            f" concurrent pool"
                        )
                    time.sleep(poll_interval_s)
                    queue.extend(order_units(missing, schedule, cost_model))
            elif not queue and not active and cooldown:
                # Nothing runnable until a backoff expires: sleep to
                # the earliest deadline (bounded by the poll interval).
                wake = min(t for t, _ in cooldown)
                pause = min(max(wake - time.monotonic(), 0.0), poll_interval_s)
                if pause > 0.0:
                    time.sleep(pause)
    except KeyboardInterrupt:
        interrupted = True
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for unit in active.values():
            release_quietly(unit.unit_hash)
        if interrupted:
            # Graceful shutdown (SIGINT/SIGTERM): leases just released
            # above, so a peer pool takes over immediately instead of
            # waiting out lease TTLs.
            tracer.event(
                "campaign.interrupt",
                cat="campaign",
                campaign=spec.name,
                released=len(active),
            )
            if progress:
                done_units = sum(
                    1 for u in spec.units if u.unit_hash in records
                )
                progress(
                    f"campaign {spec.name}: interrupted —"
                    f" {done_units}/{len(spec)} units complete,"
                    f" released {len(active)} lease(s); a peer pool can"
                    f" take over immediately"
                )

    # A parent whose shards quarantined can never merge: surface it to
    # the caller as a synthesised (unpersisted) failure record.
    for parent_hash, plan in shard_plan.items():
        if parent_hash in records or parent_hash in failures:
            continue
        bad = [
            failures[s.unit_hash]
            for s in plan
            if s.unit_hash in failures and s.unit_hash not in records
        ]
        if bad:
            parent = parent_by_hash[parent_hash]
            failures[parent_hash] = UnitRecord(
                unit_hash=parent_hash,
                experiment=parent.experiment,
                spec=parent.as_dict(),
                result={
                    "error": "ShardFailure",
                    "message": (
                        f"{len(bad)}/{len(plan)} shard(s) failed"
                        f" ({bad[0].failure_reason})"
                    ),
                    "traceback_digest": "",
                    "attempts": max(b.attempts for b in bad),
                    "owner": owner,
                },
                status=STATUS_FAILED,
            )

    if progress:
        # Merged parents report the sum of their shards' times, so
        # count each sharded unit once (via its parent record).
        total = sum(
            r.elapsed_s
            for h, r in records.items()
            if h not in shard_parent
        )
        done = sum(1 for u in spec.units if u.unit_hash in records)
        failed_count = sum(
            1
            for u in spec.units
            if u.unit_hash not in records and u.unit_hash in failures
        )
        failed_note = f", {failed_count} failed" if failed_count else ""
        progress(
            f"campaign {spec.name}: complete"
            f" ({done}/{len(spec)} units{failed_note},"
            f" {total:.2f}s simulated work)"
        )
    return [
        records.get(unit.unit_hash) or failures[unit.unit_hash]
        for unit in spec.units
    ]
