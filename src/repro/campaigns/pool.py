"""Campaign dispatch: serial loop or multiprocessing worker pool.

``run_campaign`` shards a campaign's pending units across ``workers``
processes with :class:`concurrent.futures.ProcessPoolExecutor`.  Units
are pure functions of their spec (every random draw derives from the
master seed via named streams), so sharding changes only wall-clock
time: the returned records — and any rows aggregated from them — are
byte-identical to a serial run.

Unit runners register under a *kind* key ("broadcast", "traffic");
:mod:`repro.campaigns.units` provides the built-ins and is imported
lazily so the campaigns layer never drags the experiments package into
its import cycle.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional

from repro.campaigns.spec import CampaignSpec, UnitSpec
from repro.campaigns.store import ResultStore, UnitRecord

__all__ = ["ProgressFn", "register_unit_runner", "execute_unit", "run_campaign"]

#: kind → runner(spec) -> result dict.
_UNIT_RUNNERS: Dict[str, Callable[[UnitSpec], Dict[str, Any]]] = {}

ProgressFn = Callable[[str], None]


def register_unit_runner(
    kind: str,
) -> Callable[[Callable[[UnitSpec], Dict[str, Any]]], Callable]:
    """Decorator registering a unit runner for ``kind``."""

    def decorate(fn: Callable[[UnitSpec], Dict[str, Any]]) -> Callable:
        _UNIT_RUNNERS[kind] = fn
        return fn

    return decorate


def _runner_for(kind: str) -> Callable[[UnitSpec], Dict[str, Any]]:
    if kind not in _UNIT_RUNNERS:
        # Built-in runners live one import away; registering them here
        # (rather than at module import) keeps campaigns importable
        # from inside repro.experiments without a cycle.
        import repro.campaigns.units  # noqa: F401

    try:
        return _UNIT_RUNNERS[kind]
    except KeyError:
        raise ValueError(
            f"no unit runner registered for kind {kind!r};"
            f" known kinds: {sorted(_UNIT_RUNNERS)}"
        ) from None


def execute_unit(spec: UnitSpec) -> UnitRecord:
    """Run one unit and wrap its result as a :class:`UnitRecord`."""
    runner = _runner_for(spec.kind)
    started = time.perf_counter()
    result = runner(spec)
    return UnitRecord(
        unit_hash=spec.unit_hash,
        experiment=spec.experiment,
        spec=spec.as_dict(),
        result=result,
        elapsed_s=time.perf_counter() - started,
    )


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point (module-level so it pickles)."""
    return execute_unit(UnitSpec.from_dict(payload)).to_dict()


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
) -> List[UnitRecord]:
    """Execute a campaign and return its records in declaration order.

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Process count; ``1`` runs in-process (no pool, no pickling).
    store:
        Optional JSONL store.  Units already present are *not*
        re-executed (their stored record is reused), and every fresh
        record is appended as soon as it completes — interrupting the
        run loses at most the units in flight.
    progress:
        Optional callback for human-readable progress lines.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    records: Dict[str, UnitRecord] = {}
    if store is not None:
        wanted = set(spec.unit_hashes())
        records = {
            h: rec for h, rec in store.records().items() if h in wanted
        }
    pending = spec.pending(records)
    if progress:
        progress(
            f"campaign {spec.name}: {len(spec)} units"
            f" ({len(records)} cached, {len(pending)} to run,"
            f" workers={min(workers, max(len(pending), 1))})"
        )

    def finish(record: UnitRecord) -> None:
        records[record.unit_hash] = record
        if store is not None:
            store.append(record)

    if pending:
        if workers == 1 or len(pending) == 1:
            for unit in pending:
                finish(execute_unit(unit))
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_execute_payload, unit.as_dict()): unit
                    for unit in pending
                }
                for future in as_completed(futures):
                    finish(UnitRecord.from_dict(future.result()))
    if progress:
        total = sum(r.elapsed_s for r in records.values())
        progress(
            f"campaign {spec.name}: complete"
            f" ({len(records)}/{len(spec)} units, {total:.2f}s simulated work)"
        )
    return [records[unit.unit_hash] for unit in spec.units]
