"""Campaign dispatch: scheduling policies + serial/pooled execution.

``run_campaign`` drains a campaign's pending units either in-process
or across ``workers`` processes (:class:`concurrent.futures.
ProcessPoolExecutor`).  Units are pure functions of their spec (every
random draw derives from the master seed via named streams), so *how*
they are dispatched — worker count, scheduling policy, which pool of a
multi-pool fleet runs them — changes only wall-clock time: the
returned records, and any rows aggregated from them, are byte-identical
to a serial run.

Three orthogonal dispatch concerns live here:

scheduling (``schedule=``)
    ``"fifo"`` dispatches in declaration order; ``"adaptive"`` orders
    pending units by :func:`estimate_unit_cost` (mesh size × traffic
    load × message length), largest first, so the slowest cells start
    early and the campaign's makespan shrinks (classic longest-
    processing-time list scheduling).
leasing (``store=`` with a lease-capable backend)
    Before executing a unit the pool claims it through the store's
    lease protocol; units claimed by a concurrent pool are deferred
    and re-checked, so a fleet of pools sharing one store completes a
    campaign with no unit executed twice.
caching (``cache=``)
    Extra read-only stores consulted before execution.  Any prior
    record with the same content hash — e.g. a ``quick``-scale store
    whose grid overlaps this ``full`` campaign — is reused and copied
    into the primary store.

Unit runners register under a *kind* key ("broadcast", "traffic");
:mod:`repro.campaigns.units` provides the built-ins and is imported
lazily so the campaigns layer never drags the experiments package into
its import cycle.

Example::

    from repro.campaigns import open_store, run_campaign

    store = open_store("campaigns/fig4-full-s0.sqlite")
    cache = [open_store("campaigns/fig4-quick-s0.sqlite")]
    records = run_campaign(spec, workers=8, store=store,
                           schedule="adaptive", cache=cache)
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.campaigns.spec import CampaignSpec, UnitSpec
from repro.campaigns.store import (
    DEFAULT_LEASE_TTL_S,
    CampaignStore,
    UnitRecord,
    make_owner_id,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaigns.costmodel import CostModel

__all__ = [
    "ProgressFn",
    "SCHEDULES",
    "estimate_unit_cost",
    "order_units",
    "register_unit_runner",
    "execute_unit",
    "run_campaign",
]

#: kind → runner(spec) -> result dict.
_UNIT_RUNNERS: Dict[str, Callable[[UnitSpec], Dict[str, Any]]] = {}

ProgressFn = Callable[[str], None]

#: scheduling policies accepted by :func:`run_campaign`.
SCHEDULES = ("fifo", "adaptive")


def register_unit_runner(
    kind: str,
) -> Callable[[Callable[[UnitSpec], Dict[str, Any]]], Callable]:
    """Decorator registering a unit runner for ``kind``."""

    def decorate(fn: Callable[[UnitSpec], Dict[str, Any]]) -> Callable:
        _UNIT_RUNNERS[kind] = fn
        return fn

    return decorate


def _runner_for(kind: str) -> Callable[[UnitSpec], Dict[str, Any]]:
    if kind not in _UNIT_RUNNERS:
        # Built-in runners live one import away; registering them here
        # (rather than at module import) keeps campaigns importable
        # from inside repro.experiments without a cycle.
        import repro.campaigns.units  # noqa: F401

    try:
        return _UNIT_RUNNERS[kind]
    except KeyError:
        raise ValueError(
            f"no unit runner registered for kind {kind!r};"
            f" known kinds: {sorted(_UNIT_RUNNERS)}"
        ) from None


# ---------------------------------------------------------------- schedule
def estimate_unit_cost(
    spec: UnitSpec, model: Optional["CostModel"] = None
) -> float:
    """Relative wall-clock cost estimate for one unit.

    With a fitted :class:`~repro.campaigns.costmodel.CostModel` (from
    ``repro campaign fit-cost``) the estimate is the model's predicted
    wall seconds; otherwise it falls back to the static heuristic — a
    pure function of the spec (no timing, no state): mesh size ×
    traffic load × message length, with traffic units further scaled
    by their batch budget and barrier twins counted twice.  Only the
    *ordering* of estimates matters — the adaptive scheduler sorts by
    it — so crude is fine as long as 16×16×8 at high load reliably
    outranks 4×4×4 at idle.
    """
    if model is not None:
        return model.predict(spec)
    nodes = float(math.prod(spec.dims))
    cost = nodes * float(max(spec.length_flits, 1))
    if spec.load is not None:
        cost *= max(float(spec.load), 1.0)
    if spec.kind == "traffic":
        cost *= float(spec.param("batch_size", 25)) * float(
            spec.param("num_batches", 21)
        )
    if spec.param("barrier", False):
        cost *= 2.0  # the unit also runs its barrier twin
    return cost


def order_units(
    units: Sequence[UnitSpec],
    schedule: str = "fifo",
    model: Optional["CostModel"] = None,
) -> List[UnitSpec]:
    """Dispatch order for ``units`` under a scheduling policy.

    ``"fifo"`` keeps declaration order; ``"adaptive"`` sorts by
    descending :func:`estimate_unit_cost` (optionally under a fitted
    ``model``) with declaration order as the tie-break, so the
    ordering is deterministic for a given grid and model file.
    """
    if schedule == "fifo":
        return list(units)
    if schedule == "adaptive":
        indexed = sorted(
            enumerate(units),
            key=lambda pair: (-estimate_unit_cost(pair[1], model), pair[0]),
        )
        return [unit for _, unit in indexed]
    raise ValueError(
        f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
    )


# --------------------------------------------------------------- execution
def execute_unit(spec: UnitSpec) -> UnitRecord:
    """Run one unit and wrap its result as a :class:`UnitRecord`."""
    runner = _runner_for(spec.kind)
    started = time.perf_counter()
    result = runner(spec)
    return UnitRecord(
        unit_hash=spec.unit_hash,
        experiment=spec.experiment,
        spec=spec.as_dict(),
        result=result,
        elapsed_s=time.perf_counter() - started,
    )


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point (module-level so it pickles)."""
    return execute_unit(UnitSpec.from_dict(payload)).to_dict()


def _warm_from_caches(
    wanted: Sequence[str],
    records: Dict[str, UnitRecord],
    store: Optional[CampaignStore],
    cache: Sequence[CampaignStore],
) -> int:
    """Copy cache hits into ``records`` (and the primary store)."""
    hits = 0
    for cache_store in cache:
        cached = cache_store.records()
        for unit_hash in wanted:
            if unit_hash in records or unit_hash not in cached:
                continue
            record = cached[unit_hash]
            records[unit_hash] = record
            if store is not None:
                store.append(record)
            hits += 1
    return hits


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    *,
    schedule: str = "fifo",
    cache: Sequence[CampaignStore] = (),
    cost_model: Optional["CostModel"] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = 0.5,
) -> List[UnitRecord]:
    """Execute a campaign and return its records in declaration order.

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Process count; ``1`` runs in-process (no pool, no pickling).
    store:
        Optional :class:`~repro.campaigns.store.CampaignStore`.  Units
        already present are *not* re-executed (their stored record is
        reused), and every fresh record is appended as soon as it
        completes — interrupting the run loses at most the units in
        flight.  On a lease-capable backend (sqlite/shared) the pool
        claims each unit before executing it, so concurrent pools
        sharing the store divide the campaign between them.
    progress:
        Optional callback for human-readable progress lines.
    schedule:
        ``"fifo"`` (declaration order) or ``"adaptive"``
        (largest-estimated-cost first); see :func:`order_units`.
        Scheduling affects dispatch order only — results and row
        order are identical under every policy.
    cache:
        Read-only stores consulted for prior records with the same
        content hash (e.g. the overlapping ``quick``-scale store of a
        ``full`` campaign).  Hits are copied into ``store``.
    cost_model:
        Optional fitted :class:`~repro.campaigns.costmodel.CostModel`
        used by ``schedule="adaptive"`` instead of the static
        heuristic (``repro campaign fit-cost`` produces one; the CLI
        auto-loads ``campaigns/cost_model.json`` when present).
        Affects dispatch order only, never results.
    lease_ttl_s:
        How long a claimed unit stays reserved; a pool that crashes
        mid-unit blocks that unit from peers for at most this long
        (same-host crashes are detected immediately).  Worker-pool
        runs refresh their active leases every TTL/3, so the TTL only
        needs to exceed a unit's duration for serial (``workers=1``)
        runs, which cannot refresh mid-unit.
    poll_interval_s:
        Sleep between re-checks while waiting on units leased by a
        concurrent pool.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
        )
    if schedule == "adaptive" and cost_model is None:
        # Opportunistically use the fitted model from a prior
        # `repro campaign fit-cost` run; silently absent otherwise.
        from repro.campaigns.costmodel import load_default_cost_model

        cost_model = load_default_cost_model()
        if cost_model is not None and progress:
            progress(
                f"campaign {spec.name}: adaptive schedule using fitted"
                f" cost model ({cost_model.samples} samples,"
                f" R^2={cost_model.r_squared:.2f})"
            )

    wanted = spec.unit_hashes()
    records: Dict[str, UnitRecord] = {}
    if store is not None:
        wanted_set = set(wanted)
        records = {
            h: rec for h, rec in store.records().items() if h in wanted_set
        }
    cache_hits = _warm_from_caches(wanted, records, store, cache)

    pending = spec.pending(records)
    if progress:
        cached_note = (
            f"{len(records)} cached"
            + (f" ({cache_hits} from cache stores)" if cache_hits else "")
        )
        progress(
            f"campaign {spec.name}: {len(spec)} units"
            f" ({cached_note}, {len(pending)} to run,"
            f" workers={min(workers, max(len(pending), 1))},"
            f" schedule={schedule})"
        )

    owner = make_owner_id()
    claiming = store is not None and store.supports_leases

    def finish(record: UnitRecord) -> None:
        records[record.unit_hash] = record
        if store is not None:
            store.append(record)
            if claiming:
                store.release(record.unit_hash, owner)

    queue = deque(order_units(pending, schedule, cost_model))
    deferred: List[UnitSpec] = []  # leased by a concurrent pool
    last_wait_note = -1  # dedupe "waiting on N" progress lines
    last_refresh = time.monotonic()
    max_active = min(workers, max(len(queue), 1))
    pool = (
        ProcessPoolExecutor(max_workers=max_active)
        if workers > 1 and len(queue) > 1
        else None
    )
    active: Dict[Any, UnitSpec] = {}
    try:
        while queue or active or deferred:
            while queue and len(active) < max_active:
                unit = queue.popleft()
                if unit.unit_hash in records:
                    continue
                if claiming:
                    if not store.try_claim(
                        unit.unit_hash, owner, ttl_s=lease_ttl_s
                    ):
                        deferred.append(unit)
                        continue
                    # A peer may have completed-and-released this unit
                    # after our snapshot of the store; peers append
                    # before releasing, so a fresh claim with a stored
                    # record means the work is already done.
                    existing = store.get(unit.unit_hash)
                    if existing is not None:
                        records[unit.unit_hash] = existing
                        store.release(unit.unit_hash, owner)
                        continue
                if pool is None:
                    try:
                        finish(execute_unit(unit))
                    except BaseException:
                        if claiming:  # don't strand the lease
                            store.release(unit.unit_hash, owner)
                        raise
                else:
                    active[pool.submit(_execute_payload, unit.as_dict())] = unit
            if active:
                done, _ = wait(
                    active,
                    timeout=max(lease_ttl_s / 6.0, poll_interval_s),
                    return_when=FIRST_COMPLETED,
                )
                if claiming and (
                    time.monotonic() - last_refresh > lease_ttl_s / 3.0
                ):
                    # Refresh the leases of still-executing units on a
                    # TTL/3 cadence — independent of completion traffic,
                    # so a steady stream of short units can't starve a
                    # long unit's refresh and let a peer steal it.
                    last_refresh = time.monotonic()
                    for unit in active.values():
                        store.try_claim(
                            unit.unit_hash, owner, ttl_s=lease_ttl_s
                        )
                for future in done:
                    # Take the result while the unit is still in
                    # `active`: a runner exception propagates with the
                    # lease release covered by the finally block below.
                    record = UnitRecord.from_dict(future.result())
                    active.pop(future)
                    finish(record)
                continue
            if deferred:
                # Every remaining unit is leased elsewhere: wait for
                # peer results to land (or their leases to expire) and
                # retry whatever is still missing.  Point lookups, not
                # a full store scan — this loop runs on every poll.
                missing = []
                for unit in deferred:
                    if unit.unit_hash in records:
                        continue
                    peer_record = store.get(unit.unit_hash)
                    if peer_record is not None:
                        records[unit.unit_hash] = peer_record
                    else:
                        missing.append(unit)
                deferred = []
                if missing:
                    if progress and len(missing) != last_wait_note:
                        last_wait_note = len(missing)
                        progress(
                            f"campaign {spec.name}: waiting on"
                            f" {len(missing)} unit(s) leased by a"
                            f" concurrent pool"
                        )
                    time.sleep(poll_interval_s)
                    queue.extend(order_units(missing, schedule, cost_model))
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if claiming:
            for unit in active.values():
                store.release(unit.unit_hash, owner)

    if progress:
        total = sum(r.elapsed_s for r in records.values())
        progress(
            f"campaign {spec.name}: complete"
            f" ({len(records)}/{len(spec)} units, {total:.2f}s simulated work)"
        )
    return [records[unit.unit_hash] for unit in spec.units]
