"""Sharded simulation units: parent→shard planning and the reducer.

A heavy batch-means traffic point (one parent :class:`UnitSpec` with a
``shards=K`` parameter, K > 1) fans out into K *shard* units.  Shard
``k`` is an independent replication: it draws every random number from
the ``shard{k}`` namespace of the parent's master seed and collects its
slice of the parent's retained batch budget (plus its own ``discard``
warm-up batches, which it throws away — every replication has its own
cold start).  A shard is therefore a **pure function of (parent spec,
k)**: its content hash, its substreams and its result do not depend on
which worker, pool, host or resumed run executes it.

The reducer (:func:`merge_shard_records`) is deterministic: shard
results are ordered by shard index and their retained batch means are
concatenated through the exact :mod:`repro.metrics.partial` algebra,
bucket means and throughput are pooled from mergeable sums, and the
merged record carries the same result schema as an unsharded traffic
unit.  Running the K shards serially in one process and merging gives
byte-for-byte the record that any parallel, multi-pool or resumed
execution produces — the campaign engine's serial/parallel contract,
extended below the unit.

Two identities are deliberately kept:

* ``shards=1`` (or no ``shards`` parameter) is *not* a degenerate
  shard plan — it is the original single-trajectory protocol,
  bit-for-bit, hash included.
* a shard's hash omits the sibling count: shard 2 with a 5-batch slice
  is the same simulation whether its parent split 21 batches 4 ways
  or 16 batches 3 ways, so overlapping decompositions share results
  through the store exactly like overlapping scales do.

Usage::

    parent = UnitSpec(..., kind="traffic",
                      params=freeze_params(shards=4, num_batches=21,
                                           discard=1, batch_size=25))
    for shard in shard_specs(parent):
        ...                      # dispatch like any other unit
    record = merge_shard_records(parent, shard_records)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Sequence

from repro.campaigns.spec import UnitSpec, freeze_params
from repro.campaigns.store import UnitRecord
from repro.metrics.partial import PartialStat, merge_partials
from repro.metrics.steady_state import is_steady_partial

__all__ = [
    "SHARD_KIND",
    "unit_shards",
    "is_shard",
    "shard_batch_slices",
    "shard_specs",
    "merge_shard_results",
    "merge_shard_records",
    "run_sharded_traffic_unit",
]

#: Unit kind of a shard (registered in :mod:`repro.campaigns.units`).
SHARD_KIND = "traffic-shard"

#: Parent kinds that know how to shard.
SHARDABLE_KINDS = ("traffic",)


def unit_shards(spec: UnitSpec) -> int:
    """The unit's declared shard count, validated (1 = unsharded)."""
    shards = spec.shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


def is_shard(spec: UnitSpec) -> bool:
    """True when ``spec`` is a shard of some parent unit."""
    return spec.kind == SHARD_KIND


def shard_batch_slices(
    num_batches: int, discard: int, shards: int
) -> List[int]:
    """Retained-batch budget per shard (largest remainders first).

    The parent's ``num_batches - discard`` retained batches are split
    as evenly as possible; every shard additionally collects (and
    discards) its own ``discard`` warm-up batches, so the merged point
    retains exactly as many batch means as the serial protocol —
    the confidence interval keeps its degrees of freedom — at the
    price of ``(shards - 1) * discard`` extra warm-up batches of
    simulation, the usual replication overhead.
    """
    retained = num_batches - discard
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if retained < shards:
        raise ValueError(
            f"cannot split {retained} retained batches"
            f" ({num_batches} - {discard} discard) into {shards} shards;"
            f" use --shards <= {max(retained, 1)}"
        )
    base, extra = divmod(retained, shards)
    return [base + (1 if k < extra else 0) for k in range(shards)]


def shard_specs(parent: UnitSpec) -> List[UnitSpec]:
    """The parent's shard units, in shard order (pure function).

    Each shard spec replaces the parent's ``shards``/``num_batches``
    parameters with its own slice (``shard`` index, slice-sized
    ``num_batches``); everything else — algorithm, dims, load, seed,
    batch size, caps — is inherited, so the shard's content hash is
    derived from exactly what determines its result.
    """
    shards = unit_shards(parent)
    if parent.kind not in SHARDABLE_KINDS:
        raise ValueError(
            f"kind {parent.kind!r} cannot shard (supported:"
            f" {', '.join(SHARDABLE_KINDS)})"
        )
    if shards < 2:
        raise ValueError(f"unit {parent.unit_hash} declares no sharding")
    params = dict(parent.params)
    params.pop("shards")
    num_batches = int(params.get("num_batches", 21))
    discard = int(params.get("discard", 1))
    out = []
    for k, slice_batches in enumerate(
        shard_batch_slices(num_batches, discard, shards)
    ):
        shard_params = dict(params)
        shard_params["num_batches"] = slice_batches + discard
        shard_params["discard"] = discard
        shard_params["shard"] = k
        out.append(
            replace(
                parent, kind=SHARD_KIND, params=freeze_params(**shard_params)
            )
        )
    return out


# ----------------------------------------------------------------- reduce
def _pooled_mean(count: int, total: float) -> Any:
    return (total / count) if count else None


def merge_shard_results(
    parent: UnitSpec, results: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Reduce shard result dicts into one parent result (deterministic).

    ``results`` may arrive in any order; they are sorted by their
    ``shard`` index.  Retained batch means concatenate in shard order
    through the exact partial-merge algebra; bucket means, throughput
    and counters pool from the shards' mergeable sums.  The returned
    dict has the unsharded traffic-result schema plus ``shards`` /
    ``batches`` bookkeeping and a pooled ``steady`` diagnostic.
    """
    shards = unit_shards(parent)
    ordered = sorted(results, key=lambda r: int(r["shard"]))
    indices = [int(r["shard"]) for r in ordered]
    if indices != list(range(shards)):
        raise ValueError(
            f"cannot merge unit {parent.unit_hash}: have shards {indices},"
            f" expected 0..{shards - 1}"
        )
    discard = int(parent.param("discard", 1))
    batch_size = int(parent.param("batch_size", 25))

    chunks: List[PartialStat] = []
    offset = 0
    for result in ordered:
        partial = PartialStat.from_dict(result["latency_partial"])
        retained = partial.batch_means[discard:]
        chunks.append(
            PartialStat.from_batch_means(
                retained, batch_size, offset=offset * batch_size
            )
        )
        offset += len(retained)
    merged = merge_partials(chunks)

    counts = {"unicast": 0, "broadcast": 0}
    totals = {"unicast": 0.0, "broadcast": 0.0}
    throughput_count, throughput_span = 0, 0.0
    operations = 0
    saturated = False
    for result in ordered:
        for bucket in counts:
            counts[bucket] += int(result["bucket_counts"][bucket])
            totals[bucket] += float(result["bucket_totals"][bucket])
        throughput_count += int(result["throughput_count"])
        throughput_span += float(result["throughput_span_us"])
        operations += int(result["operations"])
        saturated = saturated or bool(result["saturated"])

    if merged.batch_means:
        mean_latency = merged.mean_of_batches
    else:
        # Every shard saturated before closing a retained batch; fall
        # back to the pooled mean of whatever operations completed
        # (mirrors the serial protocol's saturated fallback).
        all_count = counts["unicast"] + counts["broadcast"]
        all_total = totals["unicast"] + totals["broadcast"]
        mean_latency = (
            all_total / all_count if all_count else float("nan")
        )

    if throughput_count == 0:
        throughput = 0.0
    elif throughput_span <= 0:
        throughput = float("inf") if throughput_count > 1 else 0.0
    else:
        throughput = throughput_count / throughput_span

    return {
        "mean_latency_us": mean_latency,
        "unicast_mean_latency_us": _pooled_mean(
            counts["unicast"], totals["unicast"]
        ),
        "broadcast_mean_latency_us": _pooled_mean(
            counts["broadcast"], totals["broadcast"]
        ),
        "throughput_msgs_per_us": throughput,
        "operations": operations,
        "saturated": saturated,
        "shards": shards,
        "batches": len(merged.batch_means),
        # The paper's "results do not change with time" criterion over
        # the pooled batch means (False also when too few batches to
        # judge) — a per-point diagnostic for sweep reports.
        "steady": bool(is_steady_partial(merged, window=2)),
    }


def merge_shard_records(
    parent: UnitSpec, records: Sequence[UnitRecord]
) -> UnitRecord:
    """Wrap :func:`merge_shard_results` as the parent's stored record.

    ``elapsed_s`` is the sum of the shards' measured times — the
    parent's total simulation cost, which keeps ``fit-cost`` honest
    about what a sharded point costs end to end.
    """
    result = merge_shard_results(parent, [r.result for r in records])
    return UnitRecord(
        unit_hash=parent.unit_hash,
        experiment=parent.experiment,
        spec=parent.as_dict(),
        result=result,
        elapsed_s=float(sum(r.elapsed_s for r in records)),
    )


def run_sharded_traffic_unit(parent: UnitSpec) -> Dict[str, Any]:
    """Execute a sharded parent inline: all shards serially, then merge.

    This is the *definition* of a sharded unit's result — the worker
    pool's fan-out/merge path is an optimisation that must (and does,
    see ``tests/test_campaign_shards.py``) reproduce it byte for byte.
    """
    from repro.campaigns.units import run_traffic_shard_unit

    return merge_shard_results(
        parent, [run_traffic_shard_unit(s) for s in shard_specs(parent)]
    )
