"""Sharded simulation units: parent→shard planning and the reducer.

A heavy batch-means traffic point (one parent :class:`UnitSpec` with a
``shards=K`` parameter, K > 1) fans out into K *shard* units.  Shard
``k`` is an independent replication: it draws every random number from
the ``shard{k}`` namespace of the parent's master seed and collects its
slice of the parent's retained batch budget (plus its own ``discard``
warm-up batches, which it throws away — every replication has its own
cold start).  A shard is therefore a **pure function of (parent spec,
k)**: its content hash, its substreams and its result do not depend on
which worker, pool, host or resumed run executes it.

The reducer (:func:`merge_shard_records`) is deterministic: shard
results are ordered by shard index and their retained batch means are
concatenated through the exact :mod:`repro.metrics.partial` algebra,
bucket means and throughput are pooled from mergeable sums, and the
merged record carries the same result schema as an unsharded traffic
unit.  Running the K shards serially in one process and merging gives
byte-for-byte the record that any parallel, multi-pool or resumed
execution produces — the campaign engine's serial/parallel contract,
extended below the unit.

Two identities are deliberately kept:

* ``shards=1`` (or no ``shards`` parameter) is *not* a degenerate
  shard plan — it is the original single-trajectory protocol,
  bit-for-bit, hash included.
* a shard's hash omits the sibling count: shard 2 with a 5-batch slice
  is the same simulation whether its parent split 21 batches 4 ways
  or 16 batches 3 ways, so overlapping decompositions share results
  through the store exactly like overlapping scales do.

Broadcast cells shard too, along the *replication × source* axis: a
cell-level unit (kind ``"broadcast-cell"``, one dims × algorithm grid
point spanning ``sources_count`` replications) fans out into shards
that each run a contiguous slice of the cell's source sequence — the
event-driven single-source run and, where the cell measures one, its
closed-form barrier twin always travel together in the same shard (they
shard as a pair).  Every source's broadcast runs on a fresh idle
network, so the fan-out count cannot change a single float: unlike a
traffic point's ``shards=K`` (a different statistical protocol, hence
hashed), a broadcast cell's fan-out is pure work division.  It is
therefore *not* part of the parent's content hash — the pool chooses it
at dispatch time (``--shards K`` or the cost-model-driven
``--shards auto``), racing pools agree on sub-unit identity through the
shards' content hashes, and the merged cell record is byte-identical to
the inline definition whatever fan-out anyone picked.

Usage::

    parent = UnitSpec(..., kind="traffic",
                      params=freeze_params(shards=4, num_batches=21,
                                           discard=1, batch_size=25))
    for shard in shard_specs(parent):
        ...                      # dispatch like any other unit
    record = merge_shard_records(parent, shard_records)

    cell = UnitSpec(..., kind="broadcast-cell",
                    params=freeze_params(sources_count=40, ...))
    k = planned_shards(cell, requested="auto", cost_model=model,
                       workers=8)
    for shard in shard_specs(cell, k):
        ...
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.spec import UnitSpec, freeze_params
from repro.campaigns.store import UnitRecord
from repro.metrics.partial import (
    BroadcastPartial,
    PartialStat,
    merge_broadcast_partials,
    merge_partials,
)
from repro.metrics.steady_state import is_steady_partial

__all__ = [
    "SHARD_KIND",
    "BROADCAST_CELL_KIND",
    "BROADCAST_SHARD_KIND",
    "SHARD_KINDS",
    "SHARDABLE_KINDS",
    "unit_shards",
    "is_shard",
    "cell_sources",
    "broadcast_cell_key",
    "shard_batch_slices",
    "shard_source_slices",
    "shard_specs",
    "planned_shards",
    "merge_shard_results",
    "merge_shard_records",
    "explode_cell_record",
    "run_sharded_traffic_unit",
]

#: Unit kind of a traffic shard (registered in :mod:`repro.campaigns.units`).
SHARD_KIND = "traffic-shard"

#: Unit kind of a cell-level broadcast parent (spans a whole
#: dims × algorithm grid cell; only declared when sharding is requested).
BROADCAST_CELL_KIND = "broadcast-cell"

#: Unit kind of one source-slice shard of a broadcast cell.
BROADCAST_SHARD_KIND = "broadcast-shard"

#: Every shard kind (sub-units that merge into a parent record).
SHARD_KINDS = (SHARD_KIND, BROADCAST_SHARD_KIND)

#: Parent kinds that know how to shard.
SHARDABLE_KINDS = ("traffic", BROADCAST_CELL_KIND)


def unit_shards(spec: UnitSpec) -> int:
    """The unit's declared shard count, validated (1 = unsharded)."""
    shards = spec.shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


def is_shard(spec: UnitSpec) -> bool:
    """True when ``spec`` is a shard of some parent unit."""
    return spec.kind in SHARD_KINDS


def cell_sources(spec: UnitSpec) -> int:
    """Replication count of a broadcast cell parent, validated."""
    count = int(spec.param("sources_count", 0))
    if count < 1:
        raise ValueError(
            f"unit {spec.unit_hash} is no broadcast cell"
            f" (sources_count={count})"
        )
    return count


def broadcast_cell_key(spec: UnitSpec) -> str:
    """Cell identity shared by a broadcast-cell parent and its shards.

    The spec minus everything the slice decomposition adds
    (``sources_count`` / ``shard`` / ``source_offset`` /
    ``source_count``) with the kind normalised, so ``campaign status``
    can attribute stored shard records to their parent even when the
    fan-out was chosen by another pool (``--shards auto``).
    """
    data = spec.as_dict()
    data["kind"] = BROADCAST_CELL_KIND
    data.pop("replication", None)
    params = dict(data.get("params", {}))
    for name in ("sources_count", "shard", "source_offset", "source_count"):
        params.pop(name, None)
    data["params"] = params
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def shard_batch_slices(
    num_batches: int, discard: int, shards: int
) -> List[int]:
    """Retained-batch budget per shard (largest remainders first).

    The parent's ``num_batches - discard`` retained batches are split
    as evenly as possible; every shard additionally collects (and
    discards) its own ``discard`` warm-up batches, so the merged point
    retains exactly as many batch means as the serial protocol —
    the confidence interval keeps its degrees of freedom — at the
    price of ``(shards - 1) * discard`` extra warm-up batches of
    simulation, the usual replication overhead.
    """
    retained = num_batches - discard
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if retained < shards:
        raise ValueError(
            f"cannot split {retained} retained batches"
            f" ({num_batches} - {discard} discard) into {shards} shards;"
            f" use --shards <= {max(retained, 1)}"
        )
    base, extra = divmod(retained, shards)
    return [base + (1 if k < extra else 0) for k in range(shards)]


def shard_source_slices(sources: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``(offset, count)`` source slices, one per shard.

    The cell's ``sources`` replications are split as evenly as possible
    (largest remainders first).  Unlike traffic shards there is no
    warm-up overhead: every source is an independent broadcast on a
    fresh network, so the slices simply tile the replication axis.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if sources < shards:
        raise ValueError(
            f"cannot split {sources} sources into {shards} shards;"
            f" use --shards <= {max(sources, 1)}"
        )
    base, extra = divmod(sources, shards)
    out = []
    offset = 0
    for k in range(shards):
        count = base + (1 if k < extra else 0)
        out.append((offset, count))
        offset += count
    return out


def _traffic_shard_specs(parent: UnitSpec, shards: int) -> List[UnitSpec]:
    params = dict(parent.params)
    params.pop("shards", None)
    num_batches = int(params.get("num_batches", 21))
    discard = int(params.get("discard", 1))
    out = []
    for k, slice_batches in enumerate(
        shard_batch_slices(num_batches, discard, shards)
    ):
        shard_params = dict(params)
        shard_params["num_batches"] = slice_batches + discard
        shard_params["discard"] = discard
        shard_params["shard"] = k
        out.append(
            replace(
                parent, kind=SHARD_KIND, params=freeze_params(**shard_params)
            )
        )
    return out


def _broadcast_shard_specs(parent: UnitSpec, shards: int) -> List[UnitSpec]:
    sources = cell_sources(parent)
    params = dict(parent.params)
    params.pop("sources_count")
    out = []
    for k, (offset, count) in enumerate(shard_source_slices(sources, shards)):
        shard_params = dict(params)
        shard_params["shard"] = k
        shard_params["source_offset"] = offset
        shard_params["source_count"] = count
        out.append(
            replace(
                parent,
                kind=BROADCAST_SHARD_KIND,
                params=freeze_params(**shard_params),
            )
        )
    return out


def shard_specs(parent: UnitSpec, shards: Optional[int] = None) -> List[UnitSpec]:
    """The parent's shard units, in shard order (pure function).

    For a **traffic** parent the fan-out is the parent's own hashed
    ``shards`` parameter (it is protocol; ``shards`` may override it
    only for cost-model probing).  Each shard spec replaces the
    parent's ``shards``/``num_batches`` parameters with its own slice
    (``shard`` index, slice-sized ``num_batches``); everything else —
    algorithm, dims, load, seed, batch size, caps — is inherited, so
    the shard's content hash is derived from exactly what determines
    its result.

    For a **broadcast cell** the fan-out is *not* in the spec (it
    cannot change the result) and must be passed as ``shards``; each
    shard inherits the cell's parameters with ``sources_count``
    replaced by its contiguous ``source_offset``/``source_count``
    slice, so identical slices hash identically whichever pool (or
    fan-out plan) produced them.
    """
    if parent.kind not in SHARDABLE_KINDS:
        raise ValueError(
            f"kind {parent.kind!r} cannot shard (supported:"
            f" {', '.join(SHARDABLE_KINDS)})"
        )
    if parent.kind == BROADCAST_CELL_KIND:
        if shards is None or shards < 2:
            raise ValueError(
                f"broadcast cell {parent.unit_hash} needs an explicit"
                f" fan-out >= 2 (got {shards!r})"
            )
        return _broadcast_shard_specs(parent, shards)
    shards = unit_shards(parent) if shards is None else shards
    if shards < 2:
        raise ValueError(f"unit {parent.unit_hash} declares no sharding")
    return _traffic_shard_specs(parent, shards)


def planned_shards(
    spec: UnitSpec,
    requested: int | str = 1,
    *,
    cost_model: Optional[Any] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> int:
    """The fan-out the pool should expand ``spec`` into (1 = run whole).

    Traffic parents are self-describing: their hashed ``shards``
    parameter *is* the protocol and the request is ignored (``auto``
    was resolved when the grid was declared).  Broadcast cells resolve
    the request at dispatch time: an integer is honoured up to the
    cell's replication count; ``"auto"`` asks
    :func:`repro.campaigns.costmodel.auto_shard_count` to invert the
    fitted per-shard cost term, capped by ``workers`` and the minimum
    per-shard budget.
    """
    if spec.kind == "traffic":
        return unit_shards(spec)
    if spec.kind != BROADCAST_CELL_KIND:
        return 1
    sources = cell_sources(spec)
    if requested == "auto":
        from repro.campaigns.costmodel import auto_shard_count

        return auto_shard_count(
            spec, cost_model, workers=workers, engine=engine
        )
    count = int(requested)
    if count < 1:
        raise ValueError(f"shards must be >= 1 or 'auto', got {requested!r}")
    return min(count, sources)


# ----------------------------------------------------------------- reduce
def _pooled_mean(count: int, total: float) -> Any:
    return (total / count) if count else None


def merge_broadcast_shard_results(
    parent: UnitSpec, results: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Reduce broadcast shard results into one cell result (exact).

    Each shard result carries the :class:`BroadcastPartial` of its
    source slice; the slices are stitched by
    :func:`repro.metrics.partial.merge_broadcast_partials` — pure
    ordered concatenation, so the merged cell is byte-identical to the
    inline definition (:func:`repro.campaigns.units.
    run_broadcast_cell_unit`) *whatever* fan-out produced the shards.
    The result deliberately records nothing about the fan-out: any two
    decompositions of the same cell merge to the identical record.
    """
    sources = cell_sources(parent)
    merged = merge_broadcast_partials(
        BroadcastPartial.from_dict(r["partial"]) for r in results
    )
    if merged.offset != 0 or merged.count != sources:
        raise ValueError(
            f"cannot merge unit {parent.unit_hash}: shards cover sources"
            f" {merged.offset}..{merged.end}, expected 0..{sources}"
        )
    return {"replications": sources, **merged.to_dict()}


def merge_shard_results(
    parent: UnitSpec, results: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Reduce shard result dicts into one parent result (deterministic).

    Broadcast cells delegate to :func:`merge_broadcast_shard_results`.
    For traffic parents, ``results`` may arrive in any order; they are
    sorted by their ``shard`` index.  Retained batch means concatenate
    in shard order through the exact partial-merge algebra; bucket
    means, throughput and counters pool from the shards' mergeable
    sums.  The returned dict has the unsharded traffic-result schema
    plus ``shards`` / ``batches`` bookkeeping and a pooled ``steady``
    diagnostic.
    """
    if parent.kind == BROADCAST_CELL_KIND:
        return merge_broadcast_shard_results(parent, results)
    shards = unit_shards(parent)
    ordered = sorted(results, key=lambda r: int(r["shard"]))
    indices = [int(r["shard"]) for r in ordered]
    if indices != list(range(shards)):
        raise ValueError(
            f"cannot merge unit {parent.unit_hash}: have shards {indices},"
            f" expected 0..{shards - 1}"
        )
    discard = int(parent.param("discard", 1))
    batch_size = int(parent.param("batch_size", 25))

    chunks: List[PartialStat] = []
    offset = 0
    for result in ordered:
        partial = PartialStat.from_dict(result["latency_partial"])
        retained = partial.batch_means[discard:]
        chunks.append(
            PartialStat.from_batch_means(
                retained, batch_size, offset=offset * batch_size
            )
        )
        offset += len(retained)
    merged = merge_partials(chunks)

    counts = {"unicast": 0, "broadcast": 0}
    totals = {"unicast": 0.0, "broadcast": 0.0}
    throughput_count, throughput_span = 0, 0.0
    operations = 0
    saturated = False
    for result in ordered:
        for bucket in counts:
            counts[bucket] += int(result["bucket_counts"][bucket])
            totals[bucket] += float(result["bucket_totals"][bucket])
        throughput_count += int(result["throughput_count"])
        throughput_span += float(result["throughput_span_us"])
        operations += int(result["operations"])
        saturated = saturated or bool(result["saturated"])

    if merged.batch_means:
        mean_latency = merged.mean_of_batches
    else:
        # Every shard saturated before closing a retained batch; fall
        # back to the pooled mean of whatever operations completed
        # (mirrors the serial protocol's saturated fallback).
        all_count = counts["unicast"] + counts["broadcast"]
        all_total = totals["unicast"] + totals["broadcast"]
        mean_latency = (
            all_total / all_count if all_count else float("nan")
        )

    if throughput_count == 0:
        throughput = 0.0
    elif throughput_span <= 0:
        throughput = float("inf") if throughput_count > 1 else 0.0
    else:
        throughput = throughput_count / throughput_span

    return {
        "mean_latency_us": mean_latency,
        "unicast_mean_latency_us": _pooled_mean(
            counts["unicast"], totals["unicast"]
        ),
        "broadcast_mean_latency_us": _pooled_mean(
            counts["broadcast"], totals["broadcast"]
        ),
        "throughput_msgs_per_us": throughput,
        "operations": operations,
        "saturated": saturated,
        "shards": shards,
        "batches": len(merged.batch_means),
        # The paper's "results do not change with time" criterion over
        # the pooled batch means (False also when too few batches to
        # judge) — a per-point diagnostic for sweep reports.
        "steady": bool(is_steady_partial(merged, window=2)),
    }


def merge_shard_records(
    parent: UnitSpec, records: Sequence[UnitRecord]
) -> UnitRecord:
    """Wrap :func:`merge_shard_results` as the parent's stored record.

    ``elapsed_s`` is the sum of the shards' measured times — the
    parent's total simulation cost, which keeps ``fit-cost`` honest
    about what a sharded point costs end to end.
    """
    result = merge_shard_results(parent, [r.result for r in records])
    return UnitRecord(
        unit_hash=parent.unit_hash,
        experiment=parent.experiment,
        spec=parent.as_dict(),
        result=result,
        elapsed_s=float(sum(r.elapsed_s for r in records)),
    )


def explode_cell_record(record: UnitRecord) -> List[UnitRecord]:
    """Per-replication records of a merged broadcast-cell record.

    The inverse of cell-level grouping: replication ``r`` of the cell
    becomes exactly the record the unsharded per-replication grid
    stores for it — same spec (kind ``"broadcast"``, ``replication=r``,
    the slice bookkeeping dropped), same content hash, same per-source
    result floats — so aggregation over a sharded campaign reuses the
    unsharded aggregators untouched and reproduces their rows byte for
    byte.
    """
    parent = record.unit_spec
    sources = cell_sources(parent)
    partial = BroadcastPartial.from_dict(record.result)
    if partial.offset != 0 or partial.count != sources:
        raise ValueError(
            f"cell record {record.unit_hash} covers sources"
            f" {partial.offset}..{partial.end}, expected 0..{sources}"
        )
    params = dict(parent.params)
    params.pop("sources_count")
    out = []
    for r, result in enumerate(partial.results()):
        spec = replace(
            parent,
            kind="broadcast",
            replication=r,
            params=freeze_params(**params),
        )
        out.append(
            UnitRecord(
                unit_hash=spec.unit_hash,
                experiment=spec.experiment,
                spec=spec.as_dict(),
                result=result,
                elapsed_s=record.elapsed_s / sources,
            )
        )
    return out


def run_sharded_traffic_unit(parent: UnitSpec) -> Dict[str, Any]:
    """Execute a sharded parent inline: all shards serially, then merge.

    This is the *definition* of a sharded unit's result — the worker
    pool's fan-out/merge path is an optimisation that must (and does,
    see ``tests/test_campaign_shards.py``) reproduce it byte for byte.
    """
    from repro.campaigns.units import run_traffic_shard_unit

    return merge_shard_results(
        parent, [run_traffic_shard_unit(s) for s in shard_specs(parent)]
    )
