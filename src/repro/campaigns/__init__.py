"""Campaign engine: parallel, resumable, multi-host experiment orchestration.

An experiment campaign is a declarative grid of independent simulation
*units* — one (algorithm, dims, message length, load, seed, replication)
point each — executed by a multiprocessing worker pool and merged back
into the row shapes the reporting/export layers consume.

Core pieces:

* :mod:`repro.campaigns.spec` — :class:`UnitSpec` / :class:`CampaignSpec`,
  declarative unit grids with stable content hashing;
* :mod:`repro.campaigns.pool` — serial or ``ProcessPoolExecutor``-based
  dispatch (``run_campaign``) with pluggable scheduling policies
  (``fifo`` / ``adaptive`` largest-cost-first), byte-identical across
  worker counts and schedules;
* :mod:`repro.campaigns.store` — the :class:`CampaignStore` contract and
  its local backends (append-only JSONL, SQLite in WAL mode, and a
  lease-arbitrated shared directory for multi-host fleets), giving
  crash-resumable and shareable campaigns;
* :mod:`repro.campaigns.remote` — the distributed fabric: a thin HTTP
  coordinator (``repro campaign serve``) exposing any local backend's
  operations as API calls, and :class:`HttpStore`, the client backend
  (``--store http://host:port``) with bounded retry and idempotent
  appends, so hosts sharing nothing but a URL drain one campaign;
* :mod:`repro.campaigns.units` — the unit runners ("broadcast",
  "broadcast-cell", "broadcast-shard", "traffic", "traffic-shard")
  that turn one :class:`UnitSpec` into a result record;
* :mod:`repro.campaigns.shards` — the parent→shard relationship: a
  heavy traffic point with ``shards=K`` fans out into K independent
  per-substream replications, a broadcast cell slices its source axis
  (fan-out picked at dispatch time, ``--shards auto`` inverting the
  fitted cost model), and a deterministic reducer fires when the last
  shard lands (``repro fig3 --shards 4 --workers 4``,
  ``repro fig1 --shards auto --workers 8``);
* :mod:`repro.campaigns.aggregate` — merges unit records back into the
  per-experiment row dataclasses.

Determinism contract: a unit derives every random draw it needs from
the campaign's master seed via the :class:`repro.sim.rng.RandomStreams`
spawn-key scheme (never from process-local state), so running a
campaign with ``--workers 4``, under any scheduling policy, on any
store backend — or split across several cooperating pools — produces
rows identical to the serial run, and a crashed campaign resumes
exactly where it stopped.

See ``docs/campaigns.md`` for the store-backend contract, the lease
protocol and a multi-host walkthrough, and ``docs/architecture.md``
for how the campaigns layer sits atop the rest of the stack.
"""

from repro.campaigns.aggregate import (
    aggregate,
    failed_records,
    register_aggregator,
)
from repro.campaigns.costmodel import (
    CostModel,
    auto_shard_count,
    fit_cost_model,
    load_cost_model,
    load_default_cost_model,
)
from repro.campaigns.pool import (
    SCHEDULES,
    TooManyFailuresError,
    WorkerCrashError,
    estimate_unit_cost,
    execute_unit,
    order_units,
    register_unit_runner,
    run_campaign,
)
from repro.campaigns.shards import (
    merge_shard_records,
    planned_shards,
    shard_specs,
    unit_shards,
)
from repro.campaigns.remote import (
    CampaignCoordinator,
    HttpStore,
    StoreUnreachableError,
)
from repro.campaigns.spec import CampaignSpec, UnitSpec, freeze_params
from repro.campaigns.store import (
    BACKENDS,
    CampaignStore,
    JsonlStore,
    ResultStore,
    SharedDirStore,
    SqliteStore,
    UnitRecord,
    default_store_path,
    make_failure_record,
    open_store,
)

__all__ = [
    "BACKENDS",
    "CampaignCoordinator",
    "CampaignSpec",
    "CampaignStore",
    "CostModel",
    "HttpStore",
    "JsonlStore",
    "ResultStore",
    "SCHEDULES",
    "SharedDirStore",
    "SqliteStore",
    "StoreUnreachableError",
    "TooManyFailuresError",
    "UnitRecord",
    "UnitSpec",
    "WorkerCrashError",
    "aggregate",
    "auto_shard_count",
    "default_store_path",
    "estimate_unit_cost",
    "execute_unit",
    "failed_records",
    "fit_cost_model",
    "freeze_params",
    "make_failure_record",
    "load_cost_model",
    "load_default_cost_model",
    "merge_shard_records",
    "open_store",
    "order_units",
    "planned_shards",
    "register_aggregator",
    "register_unit_runner",
    "run_campaign",
    "shard_specs",
    "unit_shards",
]
