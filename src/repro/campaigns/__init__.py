"""Campaign engine: parallel, resumable experiment orchestration.

An experiment campaign is a declarative grid of independent simulation
*units* — one (algorithm, dims, message length, load, seed, replication)
point each — executed by a multiprocessing worker pool and merged back
into the row shapes the reporting/export layers consume.

Core pieces:

* :mod:`repro.campaigns.spec` — :class:`UnitSpec` / :class:`CampaignSpec`,
  declarative unit grids with stable content hashing;
* :mod:`repro.campaigns.pool` — serial or ``ProcessPoolExecutor``-based
  dispatch (``run_campaign``), byte-identical across worker counts;
* :mod:`repro.campaigns.store` — append-only JSONL result store keyed by
  unit hash, giving crash-resumable campaigns;
* :mod:`repro.campaigns.units` — the unit runners ("broadcast",
  "traffic") that turn one :class:`UnitSpec` into a result record;
* :mod:`repro.campaigns.aggregate` — merges unit records back into the
  per-experiment row dataclasses.

Determinism contract: a unit derives every random draw it needs from
the campaign's master seed via the :class:`repro.sim.rng.RandomStreams`
spawn-key scheme (never from process-local state), so running a
campaign with ``--workers 4`` produces rows identical to the serial
run, and a crashed campaign resumes exactly where it stopped.
"""

from repro.campaigns.aggregate import aggregate, register_aggregator
from repro.campaigns.pool import execute_unit, register_unit_runner, run_campaign
from repro.campaigns.spec import CampaignSpec, UnitSpec, freeze_params
from repro.campaigns.store import ResultStore, UnitRecord

__all__ = [
    "CampaignSpec",
    "ResultStore",
    "UnitRecord",
    "UnitSpec",
    "aggregate",
    "execute_unit",
    "freeze_params",
    "register_aggregator",
    "register_unit_runner",
    "run_campaign",
]
