"""Distributed campaign fabric: HTTP coordinator + network store client.

The :class:`~repro.campaigns.store.CampaignStore` contract was designed
for racing pools — content-hashed units, an advisory lease protocol,
idempotent merges — so distributing it is a *transport* refactor: this
module moves the same six operations (claim / heartbeat / append /
release / get / status) onto HTTP + JSON without touching a single
invariant.

Two halves:

:class:`CampaignCoordinator`
    A thin service wrapping any *local* backend (jsonl / sqlite /
    shared).  ``repro campaign serve --store campaigns/fig1.sqlite
    --port 8931`` exposes the store's operations as HTTP endpoints; the
    coordinator itself holds no campaign state beyond a *bounded*
    append-dedup window (capped, evicted oldest-first, so uptime never
    grows it without limit) — every record and lease lives in the
    backing store, so restarting the coordinator mid-campaign loses
    nothing (clients retry, then resume against the reborn service).
:class:`HttpStore`
    The client half: a full :class:`CampaignStore` whose ``path`` is a
    URL, so ``run_campaign``, ``--workers``, ``--shards auto``, lease
    heartbeats and ``campaign status`` all work unchanged against
    ``--store http://host:port``.  A fleet of hosts with nothing in
    common but that URL drains one campaign.

Failure semantics (the part a network transport adds):

* **Bounded retry with exponential backoff.**  Every call retries
  transient failures (connection refused/reset, timeouts, 5xx) up to
  ``retries`` times, sleeping ``backoff_s * 2**attempt`` between
  attempts, then raises :class:`StoreUnreachableError`.
* **Idempotent mutations.**  ``claim`` and ``release`` are idempotent
  by the lease protocol itself: re-claiming one's own live lease is a
  refresh, re-releasing is a no-op, and a stale release retried after
  a peer stole the lease leaves the peer's lease intact — all pinned
  across every backend by the ``StoreContract`` conformance suite, so
  retrying either after an *ambiguous* failure (the first attempt
  landed server-side but the response was lost) is always safe.
  ``append`` carries an idempotency key — the content hash
  of the full record — and the coordinator drops any append whose key
  it has already applied, so a retried (or network-duplicated) append
  can never double-land a record or double-merge a sharded parent.
* **Observability.**  Both sides emit ``rpc.*`` trace events
  (``rpc.claim``, ``rpc.append``, ``rpc.retry`` ...) through the
  :mod:`repro.obs.trace` machinery, so ``repro campaign trace`` and
  ``tools/check_trace.py`` see distributed runs exactly like local
  ones.

Example (one coordinator, two client pools)::

    # host C:
    #   repro campaign serve --store campaigns/fig1-full-s0.sqlite \\
    #       --host 0.0.0.0 --port 8931
    # hosts A and B, simultaneously:
    #   repro campaign run fig1 --scale full --workers 8 \\
    #       --store http://hostC:8931
    # anywhere:
    #   repro campaign status fig1 --scale full --store http://hostC:8931

See ``docs/campaigns.md`` ("Distributed campaigns") for the coordinator
lifecycle, the retry/idempotency semantics and the failure matrix.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Set
from urllib import request as _urlrequest
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, quote, urlsplit

from repro.campaigns.store import (
    DEFAULT_LEASE_TTL_S,
    CampaignStore,
    UnitRecord,
)
from repro.obs.trace import NULL_TRACER

__all__ = [
    "API_PREFIX",
    "DEFAULT_DEDUP_CAP",
    "DEFAULT_PORT",
    "StoreUnreachableError",
    "StoreProtocolError",
    "record_content_hash",
    "CampaignCoordinator",
    "HttpStore",
]

#: URL prefix of every coordinator endpoint (versioned so a future
#: protocol change can serve both generations side by side).
API_PREFIX = "/v1"

#: Conventional coordinator port (``repro campaign serve`` default).
DEFAULT_PORT = 8931

#: Client retry policy defaults: up to 5 attempts, sleeping
#: ``backoff * 2**attempt`` between them (~1.5 s worst case).
DEFAULT_RETRIES = 5
DEFAULT_BACKOFF_S = 0.05
DEFAULT_TIMEOUT_S = 30.0

#: How many append idempotency keys the coordinator remembers.  The
#: dedup window only needs to outlive one client's retry burst (a few
#: seconds), so a few hundred thousand *recent* keys is orders of
#: magnitude more history than any retry needs, while bounding the
#: coordinator's memory under an unbounded append stream (a long-lived
#: service enqueueing simulations for months).  Keys past the cap are
#: evicted oldest-first; a duplicate arriving after eviction merely
#: re-appends, which every backend absorbs via last-record-wins.
DEFAULT_DEDUP_CAP = 262_144


class StoreUnreachableError(RuntimeError):
    """The coordinator could not be reached (after bounded retries)."""


class StoreProtocolError(RuntimeError):
    """The coordinator answered, but not with a valid protocol reply."""


def record_content_hash(record: Dict[str, Any]) -> str:
    """Idempotency key for one record: the hash of its full content.

    The unit hash already content-addresses the *spec*; this also
    covers the result and elapsed time, so two byte-identical appends
    (a retry, a proxy duplication) share a key while a genuine
    re-execution of the same unit (different ``elapsed_s``) does not —
    the latter must still reach the store, where last-record-wins
    keeps it harmless.
    """
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


# --------------------------------------------------------------------------
# Coordinator (server half)
# --------------------------------------------------------------------------
class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Request handler: routes ``/v1/<op>`` to the coordinator."""

    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        pass  # rpc events go to the coordinator's tracer, not stderr

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, payload: Optional[Dict[str, Any]]) -> None:
        coordinator: "CampaignCoordinator" = self.server.coordinator  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        if not split.path.startswith(API_PREFIX + "/"):
            self._reply(404, {"error": f"unknown path {split.path!r}"})
            return
        op = split.path[len(API_PREFIX) + 1 :]
        query = {
            key: values[0] for key, values in parse_qs(split.query).items()
        }
        try:
            result = coordinator.handle(op, payload or {}, query)
        except KeyError as exc:
            self._reply(400, {"error": f"missing field {exc}"})
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # backing store hiccup: client retries
            self._reply(500, {"error": repr(exc)})
        else:
            if result is None:
                self._reply(404, {"error": f"unknown operation {op!r}"})
            else:
                self._reply(200, result)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            self._reply(400, {"error": "request body is not valid JSON"})
            return
        if not isinstance(payload, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        self._dispatch(payload)


class CampaignCoordinator:
    """Serve a local campaign store's operations over HTTP.

    The coordinator is deliberately thin: every operation maps 1:1 to
    the backing store's method under one lock (the store is the single
    source of truth; the lock only serialises backends — like a shared
    JSONL file — that were never meant for concurrent writers).  The
    only coordinator-side state is the append-dedup window — bounded
    at ``dedup_cap`` recent idempotency keys (evicted oldest-first, so
    months of uptime cannot grow it; ``/v1/status`` reports the cap,
    current size and eviction count) — and losing entries (eviction or
    a restart) is safe: the backends themselves key records by unit
    hash with last-record-wins, so a replayed append past the window
    is redundant, never corrupting.

    Example::

        coordinator = CampaignCoordinator(open_store("c.sqlite"), port=0)
        coordinator.start()                 # background thread
        store = HttpStore(coordinator.url)  # any number of clients
        ...
        coordinator.close()
    """

    def __init__(
        self,
        store: CampaignStore,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer: Any = NULL_TRACER,
        dedup_cap: int = DEFAULT_DEDUP_CAP,
    ):
        if getattr(store, "is_remote", False):
            raise ValueError(
                "a coordinator must wrap a local backend, not another"
                " coordinator's URL"
            )
        if dedup_cap < 1:
            raise ValueError("dedup_cap must be >= 1")
        self.store = store
        self.tracer = tracer
        self.dedup_cap = int(dedup_cap)
        self._lock = threading.Lock()
        # Insertion-ordered so eviction is oldest-first: the structure
        # is a bounded window of *recent* append keys, not a full
        # history — see DEFAULT_DEDUP_CAP for why that is enough.
        self._applied_appends: "OrderedDict[str, None]" = OrderedDict()
        self._dedup_evicted = 0
        self._requests = 0
        self._deduped = 0
        self._server = ThreadingHTTPServer((host, port), _CoordinatorHandler)
        self._server.daemon_threads = True
        self._server.coordinator = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CampaignCoordinator":
        """Serve from a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="campaign-coordinator",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._server.serve_forever(poll_interval=0.2)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CampaignCoordinator":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- operations ----------------------------------------------------------
    def handle(
        self,
        op: str,
        payload: Dict[str, Any],
        query: Dict[str, str],
    ) -> Optional[Dict[str, Any]]:
        """Apply one protocol operation to the backing store.

        Returns the JSON-serialisable reply, or ``None`` for an unknown
        operation (the handler turns that into a 404).
        """
        with self._lock:
            self._requests += 1
            if op == "claim":
                granted = self.store.try_claim(
                    payload["unit_hash"],
                    payload["owner"],
                    ttl_s=float(payload.get("ttl_s", DEFAULT_LEASE_TTL_S)),
                )
                self.tracer.event(
                    "rpc.claim",
                    cat="rpc",
                    op="claim",
                    unit=payload["unit_hash"],
                    granted=granted,
                )
                return {"granted": granted}
            if op == "release":
                self.store.release(payload["unit_hash"], payload["owner"])
                self.tracer.event(
                    "rpc.release",
                    cat="rpc",
                    op="release",
                    unit=payload["unit_hash"],
                )
                return {"ok": True}
            if op == "append":
                record = payload["record"]
                if not isinstance(record, dict):
                    raise ValueError("'record' must be a JSON object")
                key = payload.get("idempotency_key") or record_content_hash(
                    record
                )
                deduped = key in self._applied_appends
                if not deduped:
                    self.store.append(UnitRecord.from_dict(record))
                    self._applied_appends[key] = None
                    while len(self._applied_appends) > self.dedup_cap:
                        self._applied_appends.popitem(last=False)
                        self._dedup_evicted += 1
                else:
                    self._deduped += 1
                self.tracer.event(
                    "rpc.append",
                    cat="rpc",
                    op="append",
                    unit=record.get("unit_hash"),
                    deduped=deduped,
                )
                return {"ok": True, "deduped": deduped}
            if op == "record":
                record = self.store.get(query["unit"])
                return {
                    "record": None if record is None else record.to_dict()
                }
            if op == "records":
                return {
                    "records": [
                        r.to_dict() for r in self.store.records().values()
                    ]
                }
            if op == "hashes":
                return {"hashes": sorted(self.store.completed_hashes())}
            if op == "leases":
                return {"leased": sorted(self.store.leased_hashes())}
            if op in ("status", "health"):
                # Failure records relay through append/record/records
                # like any other record (status rides in the payload);
                # "records" counts only completed units, "failed" the
                # persisted failure records awaiting retry/quarantine.
                stored = self.store.records()
                return {
                    "ok": True,
                    "backend": self.store.backend,
                    "store": str(self.store.path),
                    "records": sum(1 for r in stored.values() if r.ok),
                    "failed": sum(1 for r in stored.values() if r.failed),
                    "leased": len(self.store.leased_hashes()),
                    "requests": self._requests,
                    "appends_deduped": self._deduped,
                    "appends_dedup_cap": self.dedup_cap,
                    "appends_dedup_size": len(self._applied_appends),
                    "appends_dedup_evicted": self._dedup_evicted,
                }
            return None


# --------------------------------------------------------------------------
# HttpStore (client half)
# --------------------------------------------------------------------------
class HttpStore(CampaignStore):
    """Campaign store client for a :class:`CampaignCoordinator` URL.

    Implements the full :class:`CampaignStore` contract — including
    leases, which the *backing* store behind the coordinator
    arbitrates — so pools, heartbeats, shard merges and status
    reporting run unchanged.  Instances are picklable (workers get
    their own copy; the tracer, which holds file handles, is dropped
    across the boundary and re-attached by the worker).

    Example::

        store = HttpStore("http://hostC:8931")
        run_campaign(spec, workers=8, store=store)
    """

    backend = "http"
    supports_leases = True
    #: remote stores have no local filesystem footprint — the CLI uses
    #: this to route trace spools and defaults somewhere writable.
    is_remote = True

    def __init__(
        self,
        url: str,
        *,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        tracer: Any = NULL_TRACER,
    ):
        url = str(url).rstrip("/")
        split = urlsplit(url)
        if split.scheme not in ("http", "https") or not split.netloc:
            raise ValueError(
                f"HttpStore needs an http(s)://host:port URL, got {url!r}"
            )
        self.url = url
        #: displayed wherever local stores show their filesystem path.
        self.path = url  # type: ignore[assignment]
        self.retries = max(1, int(retries))
        self.backoff_s = float(backoff_s)
        self.timeout_s = float(timeout_s)
        self.tracer = tracer

    # -- plumbing ------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["tracer"] = None  # file handles never cross processes
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self.tracer is None:
            self.tracer = NULL_TRACER

    def set_tracer(self, tracer: Any) -> None:
        """Attach the calling process's tracer (rpc events land there)."""
        self.tracer = tracer

    def describe(self) -> str:
        return f"http:{self.url}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HttpStore {self.url}>"

    def _call(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """One coordinator round trip with bounded retry + backoff.

        Only *transient* failures retry (connection errors, timeouts,
        5xx); a 4xx means the request itself is malformed and raises
        :class:`StoreProtocolError` immediately.  Every mutating
        operation this client issues is idempotent (see the module
        docstring), so retrying after an ambiguous failure — the
        request may or may not have been applied — is always safe.
        """
        url = f"{self.url}{API_PREFIX}/{op}"
        if query:
            url += "?" + "&".join(
                f"{key}={quote(value)}" for key, value in sorted(query.items())
            )
        body = None
        method = "GET"
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
            method = "POST"
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            req = _urlrequest.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with _urlrequest.urlopen(req, timeout=self.timeout_s) as resp:
                    doc = json.loads(resp.read().decode("utf-8"))
            except HTTPError as exc:
                if exc.code < 500:
                    raise StoreProtocolError(
                        f"coordinator at {self.url} rejected {op}:"
                        f" HTTP {exc.code} {_error_detail(exc)}"
                    ) from exc
                last_error = exc
            except (URLError, OSError, ValueError) as exc:
                # URLError covers refused/reset/timeout; ValueError a
                # torn JSON body from a dying server.
                last_error = exc
            else:
                if not isinstance(doc, dict):
                    raise StoreProtocolError(
                        f"coordinator at {self.url} returned a"
                        f" non-object reply for {op}"
                    )
                return doc
            self.tracer.event(
                "rpc.retry",
                cat="rpc",
                op=op,
                attempt=attempt + 1,
                error=repr(last_error),
            )
        raise StoreUnreachableError(
            f"campaign coordinator at {self.url} is unreachable"
            f" ({op} failed after {self.retries} attempt(s):"
            f" {last_error!r}); is `repro campaign serve` running?"
        )

    # -- records -------------------------------------------------------------
    def records(self) -> Dict[str, UnitRecord]:
        doc = self._call("records")
        self.tracer.event(
            "rpc.records", cat="rpc", op="records", count=len(doc["records"])
        )
        return {
            record["unit_hash"]: UnitRecord.from_dict(record)
            for record in doc["records"]
        }

    def get(self, unit_hash: str) -> Optional[UnitRecord]:
        doc = self._call("record", query={"unit": unit_hash})
        self.tracer.event(
            "rpc.get",
            cat="rpc",
            op="get",
            unit=unit_hash,
            hit=doc["record"] is not None,
        )
        if doc["record"] is None:
            return None
        return UnitRecord.from_dict(doc["record"])

    def completed_hashes(self) -> Set[str]:
        return set(self._call("hashes")["hashes"])

    def append(self, record: UnitRecord) -> None:
        payload = record.to_dict()
        doc = self._call(
            "append",
            payload={
                "record": payload,
                "idempotency_key": record_content_hash(payload),
            },
        )
        self.tracer.event(
            "rpc.append",
            cat="rpc",
            op="append",
            unit=record.unit_hash,
            deduped=bool(doc.get("deduped")),
        )

    # -- leases --------------------------------------------------------------
    def try_claim(
        self, unit_hash: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> bool:
        doc = self._call(
            "claim",
            payload={"unit_hash": unit_hash, "owner": owner, "ttl_s": ttl_s},
        )
        granted = bool(doc["granted"])
        self.tracer.event(
            "rpc.claim", cat="rpc", op="claim", unit=unit_hash, granted=granted
        )
        return granted

    def release(self, unit_hash: str, owner: str) -> None:
        self._call(
            "release", payload={"unit_hash": unit_hash, "owner": owner}
        )
        self.tracer.event(
            "rpc.release", cat="rpc", op="release", unit=unit_hash
        )

    def leased_hashes(self) -> Set[str]:
        return set(self._call("leases")["leased"])

    # -- service introspection ----------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The coordinator's live status document (also a health check)."""
        return self._call("status")


def _error_detail(exc: HTTPError) -> str:
    """The server's JSON error message, when one is readable."""
    try:
        doc = json.loads(exc.read().decode("utf-8"))
        return str(doc.get("error", ""))
    except Exception:  # pragma: no cover - opaque 4xx body
        return ""
