"""Learned unit-cost models for adaptive campaign scheduling.

The static :func:`repro.campaigns.pool.estimate_unit_cost` formula
ranks units by a hand-written ``nodes × length × load`` heuristic.
Once a store holds completed units, their measured ``elapsed_s`` can do
better: :func:`fit_cost_model` fits a log-linear model

.. math::

    \\log t \\approx w_0 + w_1 \\log N + w_2 \\log L + w_3 \\log(\\max(\\rho, 1))
              + w_4 \\log B + w_5 \\cdot \\mathrm{barrier}
              + w_6 \\cdot \\mathrm{shard}

(N nodes, L flits, ρ load, B the unit's *own* batch budget — a
shard's is its slice — and ``shard`` the per-replication overhead
indicator of ``traffic-shard`` units) by ordinary
least squares, and the resulting :class:`CostModel` plugs into
``--schedule adaptive`` dispatch: ``repro campaign fit-cost`` writes
``campaigns/cost_model.json`` and every later adaptive run picks it up
automatically.

Only the *ordering* of predictions matters to the scheduler, so modest
fit quality still shrinks makespans; the model never affects results,
only dispatch order (see ``docs/campaigns.md``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.campaigns.spec import UnitSpec
from repro.campaigns.store import UnitRecord

__all__ = [
    "DEFAULT_COST_MODEL_PATH",
    "DEFAULT_MIN_SHARD_COST_S",
    "FEATURE_NAMES",
    "CostModel",
    "auto_shard_count",
    "cost_features",
    "fit_cost_model",
    "load_cost_model",
    "load_default_cost_model",
    "unit_budget",
]

#: Conventional location written by ``repro campaign fit-cost`` and
#: consulted by adaptive scheduling.
DEFAULT_COST_MODEL_PATH = Path("campaigns") / "cost_model.json"

FEATURE_NAMES = (
    "intercept",
    "log_nodes",
    "log_length_flits",
    "log_load",
    "log_batch_budget",
    "barrier",
    "shard",
    "engine_batched",
)

#: Fewer samples than features + 1 cannot produce a meaningful fit.
MIN_SAMPLES = len(FEATURE_NAMES) + 1

#: Minimum predicted seconds a shard must be worth before ``--shards
#: auto`` splits it off: below this, process dispatch and per-shard
#: fixed overhead (network construction, warm-up) dominate the work.
DEFAULT_MIN_SHARD_COST_S = 2.0


def unit_budget(spec: UnitSpec) -> float:
    """The unit's own work budget, in its kind's natural unit.

    Traffic points and their shards: observations (batch size × the
    unit's *own* batch count — a shard's is its slice).  Broadcast
    cells: their source count; broadcast shards: their slice of it.
    Anything else (one single-source broadcast): 1.  This is the one
    shared definition behind both the fitted model's budget feature
    and the static scheduling heuristic
    (:func:`repro.campaigns.pool.estimate_unit_cost`) — keep them on
    the same number or the two cost paths drift apart silently.
    """
    if spec.kind in ("traffic", "traffic-shard"):
        return float(spec.param("batch_size", 25)) * float(
            spec.param("num_batches", 21)
        )
    if spec.kind == "broadcast-cell":
        return float(spec.param("sources_count", 1))
    if spec.kind == "broadcast-shard":
        return float(spec.param("source_count", 1))
    return 1.0


_BROADCAST_KINDS = ("broadcast", "broadcast-cell", "broadcast-shard")


def cost_features(
    spec: UnitSpec, engine: Optional[str] = None
) -> List[float]:
    """Feature vector of one unit (see module docstring for the model).

    Shards are first-class: a ``traffic-shard`` unit's batch budget is
    its *own* slice (already per-shard), a broadcast cell's budget is
    its source count (and a ``broadcast-shard``'s its slice of it),
    and the ``shard`` indicator lets the fit learn the fixed
    per-replication overhead (network construction, private warm-up)
    that makes a shard cost more than ``1/K`` of its parent.  The
    adaptive scheduler therefore LPT-orders individual shards, not
    just whole points — and ``--shards auto`` inverts the same model
    to pick the fan-out.

    ``engine`` is the broadcast engine the unit will run under
    (``None`` resolves the process default via
    :func:`repro.campaigns.units.broadcast_engine`).  The
    ``engine_batched`` indicator marks broadcast work the batched
    sweep will serve (engine not forced to ``event`` and a
    non-adaptive algorithm — AB always falls back per source), so a
    fit over mixed-engine records learns how much cheaper a batched
    shard runs and ``--shards auto`` stops over-splitting it.
    """
    if engine is None:
        from repro.campaigns.units import broadcast_engine

        engine = broadcast_engine()
    nodes = float(math.prod(spec.dims))
    load = max(float(spec.load), 1.0) if spec.load is not None else 1.0
    budget = unit_budget(spec)
    batched = (
        engine != "event"
        and spec.kind in _BROADCAST_KINDS
        and spec.algorithm != "AB"
    )
    return [
        1.0,
        math.log(nodes),
        math.log(max(float(spec.length_flits), 1.0)),
        math.log(load),
        math.log(max(budget, 1.0)),
        1.0 if spec.param("barrier", False) else 0.0,
        1.0 if spec.kind in ("traffic-shard", "broadcast-shard") else 0.0,
        1.0 if batched else 0.0,
    ]


@dataclass(frozen=True)
class CostModel:
    """A fitted log-linear unit-cost predictor.

    Parameters
    ----------
    weights:
        One coefficient per :data:`FEATURE_NAMES` entry.
    samples:
        Number of records the fit used.
    r_squared:
        Coefficient of determination on the training records (in log
        space) — a sanity indicator, not a promise.
    """

    weights: tuple
    samples: int
    r_squared: float

    def predict(self, spec: UnitSpec, engine: Optional[str] = None) -> float:
        """Predicted wall seconds for one unit (always positive).

        ``zip`` truncates to the shorter of (weights, features), so a
        model fitted before a feature was appended still predicts —
        the missing trailing weight simply contributes zero.
        """
        z = 0.0
        for w, x in zip(self.weights, cost_features(spec, engine=engine)):
            z += w * x
        # exp() overflow cannot happen for sane weights, but guard the
        # scheduler against a degenerate fit anyway.
        return math.exp(min(z, 700.0))

    def as_dict(self) -> Dict:
        return {
            "schema": 1,
            "features": list(FEATURE_NAMES),
            "weights": list(self.weights),
            "samples": self.samples,
            "r_squared": self.r_squared,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CostModel":
        features = data.get("features")
        if features is not None and tuple(features) != FEATURE_NAMES:
            raise ValueError(
                f"cost model was fitted with features {features}, this"
                f" version expects {list(FEATURE_NAMES)}; re-run"
                " `repro campaign fit-cost`"
            )
        return cls(
            weights=tuple(float(w) for w in data["weights"]),
            samples=int(data.get("samples", 0)),
            r_squared=float(data.get("r_squared", float("nan"))),
        )

    def save(self, path: Path = DEFAULT_COST_MODEL_PATH) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def describe(self) -> str:
        """Human-readable coefficient summary."""
        parts = [
            f"  {name:<18s} {weight:+.4f}"
            for name, weight in zip(FEATURE_NAMES, self.weights)
        ]
        return (
            f"cost model: {self.samples} samples,"
            f" R^2={self.r_squared:.3f} (log space)\n" + "\n".join(parts)
        )


def fit_cost_model(records: Iterable[UnitRecord]) -> CostModel:
    """Least-squares fit of the log-linear cost model to ``records``.

    Records with non-positive ``elapsed_s`` are skipped; duplicate unit
    hashes keep their first occurrence.  Raises ``ValueError`` when too
    few usable samples remain (:data:`MIN_SAMPLES`).
    """
    import numpy as np

    seen = set()
    rows: List[List[float]] = []
    targets: List[float] = []
    for record in records:
        if record.unit_hash in seen or record.elapsed_s <= 0:
            continue
        seen.add(record.unit_hash)
        spec = UnitSpec.from_dict(record.spec)
        rows.append(cost_features(spec))
        targets.append(math.log(record.elapsed_s))
    if len(rows) < MIN_SAMPLES:
        raise ValueError(
            f"need at least {MIN_SAMPLES} completed units with timings to"
            f" fit a cost model, got {len(rows)}"
        )
    matrix = np.asarray(rows, dtype=float)
    y = np.asarray(targets, dtype=float)
    weights, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    predicted = matrix @ weights
    residual = float(((y - predicted) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return CostModel(
        weights=tuple(float(w) for w in weights),
        samples=len(rows),
        r_squared=r_squared,
    )


def auto_shard_count(
    spec: UnitSpec,
    model: Optional[CostModel] = None,
    *,
    workers: Optional[int] = None,
    min_shard_s: float = DEFAULT_MIN_SHARD_COST_S,
    engine: Optional[str] = None,
) -> int:
    """Pick a unit's fan-out from the fitted per-shard cost model.

    The resolution of ``--shards auto``: find the largest fan-out
    ``K`` whose *narrowest shard* is still predicted to cost at least
    ``min_shard_s`` wall seconds — i.e. invert the model's per-shard
    cost term (slice budget, shard-overhead indicator and all) instead
    of naively dividing the parent's total.  The result is capped by

    * ``workers`` (when given — fanning out past the pool is pure
      per-shard overhead),
    * the unit's inherent limit (a broadcast cell's replication count;
      a traffic point's retained batch budget).

    Without a fitted model there are no wall seconds to budget:
    broadcast cells — whose fan-out can never change a float of the
    result — default to the cap (maximum parallelism), while traffic
    points — where the shard count *is* the measurement protocol —
    conservatively stay unsharded until ``repro campaign fit-cost``
    has produced evidence.
    """
    from repro.campaigns.shards import (
        BROADCAST_CELL_KIND,
        cell_sources,
        shard_specs,
    )

    if spec.kind == BROADCAST_CELL_KIND:
        limit = cell_sources(spec)
    elif spec.kind == "traffic":
        limit = int(spec.param("num_batches", 21)) - int(
            spec.param("discard", 1)
        )
    else:
        return 1
    cap = limit if workers is None else min(limit, max(int(workers), 1))
    if cap < 2:
        return 1
    if model is None:
        return cap if spec.kind == BROADCAST_CELL_KIND else 1
    for k in range(cap, 1, -1):
        # shard_specs orders largest slices first, so the last shard is
        # the narrowest of the K-way plan; the fan-out is accepted only
        # when even it clears the per-shard budget — every shard of the
        # plan is then worth its dispatch and warm-up overhead.  Heavy
        # units accept the first (largest) K, so the descending probe
        # is usually one iteration; plan construction computes no
        # content hashes (unit_hash is a lazy property predict() never
        # touches), so even the cheap-unit worst case stays trivial.
        narrowest = shard_specs(spec, k)[-1]
        if model.predict(narrowest, engine=engine) >= min_shard_s:
            return k
    return 1


def load_cost_model(path: Path) -> CostModel:
    """Read a model written by :meth:`CostModel.save`."""
    return CostModel.from_dict(json.loads(Path(path).read_text()))


def load_default_cost_model(
    path: Optional[Path] = None,
) -> Optional[CostModel]:
    """The conventional fitted model, or ``None`` when absent/unreadable.

    Adaptive scheduling calls this opportunistically — a missing or
    stale file silently falls back to the static estimate.
    """
    path = Path(path) if path is not None else DEFAULT_COST_MODEL_PATH
    if not path.exists():
        return None
    try:
        return load_cost_model(path)
    except (ValueError, KeyError, json.JSONDecodeError, OSError):
        return None


def records_from_stores(stores: Sequence) -> List[UnitRecord]:
    """Concatenate all records of several stores (first occurrence wins)."""
    out: List[UnitRecord] = []
    seen = set()
    for store in stores:
        for unit_hash, record in store.records().items():
            if unit_hash not in seen:
                seen.add(unit_hash)
                out.append(record)
    return out
