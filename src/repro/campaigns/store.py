"""Append-only JSONL result store keyed by unit hash.

Each completed unit appends one JSON line; a campaign re-run loads the
store, skips every unit whose hash is already present, and only
dispatches the remainder — so an interrupted ``repro campaign run``
resumes where it stopped.  A truncated final line (the signature of a
crash mid-write) is tolerated and simply re-executed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.campaigns.spec import CampaignSpec, UnitSpec

__all__ = ["UnitRecord", "ResultStore"]

_REQUIRED_KEYS = ("unit_hash", "experiment", "spec", "result")


@dataclass(frozen=True)
class UnitRecord:
    """The persisted outcome of one executed unit."""

    unit_hash: str
    experiment: str
    spec: Dict[str, Any]
    result: Dict[str, Any]
    #: wall-clock metadata; excluded from equality so serial, parallel
    #: and store-resumed records with identical results compare equal.
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def unit_spec(self) -> UnitSpec:
        """The record's spec, reconstructed as a :class:`UnitSpec`."""
        return UnitSpec.from_dict(self.spec)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit_hash": self.unit_hash,
            "experiment": self.experiment,
            "spec": self.spec,
            "result": self.result,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitRecord":
        return cls(
            unit_hash=data["unit_hash"],
            experiment=data["experiment"],
            spec=dict(data["spec"]),
            result=dict(data["result"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


class ResultStore:
    """A JSONL file of :class:`UnitRecord` lines.

    The store is append-only; if a unit somehow appears twice the last
    record wins.  Reads tolerate a corrupt/truncated tail so a crashed
    writer never poisons the campaign.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.path}>"

    def records(self) -> Dict[str, UnitRecord]:
        """All stored records, keyed by unit hash (last record wins)."""
        records: Dict[str, UnitRecord] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # crash-truncated tail; the unit re-runs
                if not all(key in data for key in _REQUIRED_KEYS):
                    continue
                record = UnitRecord.from_dict(data)
                records[record.unit_hash] = record
        return records

    def completed_hashes(self) -> Set[str]:
        """Hashes of every unit with a stored result."""
        return set(self.records())

    def append(self, record: UnitRecord) -> None:
        """Durably append one record (creating parent dirs on demand)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def extend(self, records: Iterable[UnitRecord]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def records_for(
        self, spec: CampaignSpec
    ) -> List[Optional[UnitRecord]]:
        """Stored records for a campaign's units, in declaration order
        (``None`` where a unit has not completed yet)."""
        stored = self.records()
        return [stored.get(unit.unit_hash) for unit in spec.units]
