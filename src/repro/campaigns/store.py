"""Campaign result stores: one contract, three backends.

A store persists :class:`UnitRecord` objects keyed by unit content
hash and, optionally, arbitrates *leases* so several worker pools can
share one store without executing a unit twice.  The contract is
:class:`CampaignStore`; the backends are:

``jsonl``  (:class:`JsonlStore`)
    The original append-only JSONL file.  Single writer, zero setup,
    crash-resumable (a truncated tail line is tolerated and re-run).
``sqlite`` (:class:`SqliteStore`)
    One SQLite database in WAL mode.  Safe for many concurrent worker
    pools on one host; leases live in a second table.
``shared`` (:class:`SharedDirStore`)
    A plain directory (one JSON file per record) that any shared
    filesystem (NFS, …) can host.  Processes on *different hosts*
    claim units by atomically creating per-unit lease files
    (``O_CREAT | O_EXCL``), so a fleet can drain one campaign together.

A fourth backend lives in :mod:`repro.campaigns.remote`:

``http``   (:class:`~repro.campaigns.remote.HttpStore`)
    A network client for a ``repro campaign serve`` coordinator —
    ``open_store("http://host:8931")`` — so hosts sharing nothing but
    a URL drain one campaign (no shared mount required).

Usage::

    from repro.campaigns.store import open_store

    store = open_store("campaigns/fig4-full-s0.sqlite")   # inferred
    store = open_store("campaigns/fig4", backend="shared")  # explicit
    run_campaign(spec, workers=8, store=store)

Every backend reads and writes the same :class:`UnitRecord` payloads,
so aggregating a campaign from any backend yields byte-identical rows
(see ``docs/campaigns.md`` for the full contract and lease protocol).
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.campaigns.spec import CampaignSpec, UnitSpec

__all__ = [
    "STATUS_FAILED",
    "STATUS_OK",
    "UnitRecord",
    "CampaignStore",
    "JsonlStore",
    "ResultStore",
    "SqliteStore",
    "SharedDirStore",
    "BACKENDS",
    "DEFAULT_LEASE_TTL_S",
    "TracedStore",
    "open_store",
    "default_store_path",
    "make_failure_record",
    "make_owner_id",
]

_REQUIRED_KEYS = ("unit_hash", "experiment", "spec", "result")

#: How long a claimed-but-unfinished unit stays reserved before other
#: pools may steal it (i.e. how long a crashed worker can block a unit).
#: Executing processes heartbeat their lease every TTL/3
#: (:func:`repro.campaigns.pool.lease_heartbeat`), so the TTL may sit
#: far below the longest unit's duration — it only bounds crash
#: recovery, not unit length.  Clocks across hosts sharing a store
#: must agree to well within TTL/3.
DEFAULT_LEASE_TTL_S = 120.0

#: record status values — ``"ok"`` is a completed result, ``"failed"``
#: a persisted failure (exception metadata in ``result``; see
#: :func:`make_failure_record`).  Failure records make unit failure
#: *data*: they resume, replicate across backends, arbitrate retry
#: budgets between racing pools, and quarantine poison units.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class UnitRecord:
    """The persisted outcome of one executed unit.

    A record is either a completed result (``status == "ok"``, the
    default) or a persisted *failure* (``status == "failed"``), whose
    ``result`` carries the exception metadata instead of simulation
    output: ``{"error", "message", "traceback_digest", "attempts",
    "owner"}`` (see :func:`make_failure_record`).  Failure records are
    what lets a campaign treat a raising unit as data — they survive
    restarts, replicate through every backend, and carry the shared
    attempt count racing pools use to honour one retry budget.

    Example::

        record = UnitRecord(
            unit_hash=spec.unit_hash,
            experiment=spec.experiment,
            spec=spec.as_dict(),
            result={"network_latency": 12.5},
        )
        store.append(record)
    """

    unit_hash: str
    experiment: str
    spec: Dict[str, Any]
    result: Dict[str, Any]
    #: wall-clock metadata; excluded from equality so serial, parallel
    #: and store-resumed records with identical results compare equal.
    elapsed_s: float = field(default=0.0, compare=False)
    #: ``"ok"`` or ``"failed"`` (:data:`STATUS_OK` / :data:`STATUS_FAILED`).
    status: str = STATUS_OK

    @property
    def unit_spec(self) -> UnitSpec:
        """The record's spec, reconstructed as a :class:`UnitSpec`."""
        return UnitSpec.from_dict(self.spec)

    @property
    def ok(self) -> bool:
        """True iff this record is a completed result."""
        return self.status == STATUS_OK

    @property
    def failed(self) -> bool:
        """True iff this record is a persisted failure."""
        return self.status == STATUS_FAILED

    @property
    def attempts(self) -> int:
        """Execution attempts recorded so far (0 for ok records)."""
        if not self.failed:
            return 0
        try:
            return int(self.result.get("attempts", 1))
        except (TypeError, ValueError):
            return 1

    @property
    def failure_reason(self) -> str:
        """Human-readable ``Type: message`` for a failure record."""
        if not self.failed:
            return ""
        error = str(self.result.get("error", "Error"))
        message = str(self.result.get("message", ""))
        return f"{error}: {message}" if message else error

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "unit_hash": self.unit_hash,
            "experiment": self.experiment,
            "spec": self.spec,
            "result": self.result,
            "elapsed_s": self.elapsed_s,
        }
        # Emitted only when set, so ok records keep their historical
        # byte layout (resume/golden-diff paths hash stored bytes).
        if self.status != STATUS_OK:
            data["status"] = self.status
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitRecord":
        return cls(
            unit_hash=data["unit_hash"],
            experiment=data["experiment"],
            spec=dict(data["spec"]),
            result=dict(data["result"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            status=str(data.get("status", STATUS_OK)),
        )


def make_failure_record(
    spec: UnitSpec, exc: BaseException, attempts: int, owner: str = ""
) -> UnitRecord:
    """A :data:`STATUS_FAILED` record describing one unit's failure.

    The exception is flattened to data — type name, message, and a
    16-hex digest of the traceback (enough to tell two failure *sites*
    apart without persisting unbounded text) — plus the attempt count,
    which is the cross-pool retry ledger: racing pools read it back
    under the unit's lease and resume the shared budget instead of
    restarting their own.
    """
    import hashlib
    import traceback

    tb_text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return UnitRecord(
        unit_hash=spec.unit_hash,
        experiment=spec.experiment,
        spec=spec.as_dict(),
        result={
            "error": type(exc).__name__,
            "message": str(exc),
            "traceback_digest": hashlib.sha256(
                tb_text.encode("utf-8")
            ).hexdigest()[:16],
            "attempts": int(attempts),
            "owner": owner,
        },
        status=STATUS_FAILED,
    )


def make_owner_id() -> str:
    """A lease owner token unique across hosts, processes and runs.

    The ``host:pid:nonce`` shape is load-bearing: a claimant on the
    same host can recognise a lease whose owner process has died (see
    :func:`owner_is_dead_local`) and steal it without waiting out the
    TTL — the common "killed the run, restarted it" case resumes
    immediately.
    """
    import socket

    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def owner_is_dead_local(owner: str) -> bool:
    """True iff ``owner`` names a process on *this* host that no
    longer exists.

    Standard pidfile semantics (with the standard pid-recycling
    caveat, which only re-opens the harmless double-execution window).
    Unknown token shapes and other hosts are conservatively presumed
    alive — they must wait out the lease TTL.
    """
    import socket

    host, _, rest = owner.partition(":")
    pid_text, _, _ = rest.partition(":")
    if host != socket.gethostname():
        return False
    try:
        pid = int(pid_text)
    except ValueError:
        return False
    if pid <= 0 or pid == os.getpid():
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:  # pragma: no cover - exists, not ours
        return False
    return False


class CampaignStore(abc.ABC):
    """Storage contract for campaign unit records.

    A backend must persist records durably-enough that a crashed run
    loses at most the units in flight, and must key everything by the
    unit's content hash — the hash *is* the identity, which is what
    makes resume, cross-scale caching and multi-pool sharing work.

    Lease protocol (optional — backends with
    ``supports_leases = False`` run the single-pool fast path):

    1. a pool calls :meth:`try_claim` with its owner token before
       executing a unit; ``False`` means another live pool holds it;
    2. the executing pool calls :meth:`append` and then
       :meth:`release` when the unit completes;
    3. a lease older than its TTL is *stale* (the claimant crashed)
       and :meth:`try_claim` may steal it.

    Claiming is advisory for correctness of results (units are pure,
    so a double execution wastes time but cannot change a row) and
    load-bearing only for efficiency — which is why the default
    implementation simply always grants the claim.
    """

    #: short backend id ("jsonl", "sqlite", "shared"); set per subclass.
    backend: str = "?"
    #: whether :meth:`try_claim` actually arbitrates between pools.
    supports_leases: bool = False

    path: Path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path}>"

    def describe(self) -> str:
        """Human-readable identity for progress/status lines."""
        return f"{self.backend}:{self.path}"

    # ------------------------------------------------------------ records
    @abc.abstractmethod
    def records(self) -> Dict[str, UnitRecord]:
        """All stored records, keyed by unit hash (last record wins)."""

    @abc.abstractmethod
    def append(self, record: UnitRecord) -> None:
        """Durably store one record (creating the store on demand)."""

    def extend(self, records: Iterable[UnitRecord]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def get(self, unit_hash: str) -> Optional[UnitRecord]:
        """The stored record for one unit, or ``None``.

        Backends override this with a point lookup where they can; the
        pool calls it after every successful claim to close the
        finished-and-released race (a completing pool appends *before*
        releasing, so a freshly claimable unit either has a record or
        truly never ran).
        """
        return self.records().get(unit_hash)

    def completed_hashes(self) -> Set[str]:
        """Hashes of every unit with a stored *ok* result.

        Failure records (``status == "failed"``) are deliberately
        excluded: a failed unit is not complete — it is retryable (or
        quarantined), and resume/status logic must see it as such.
        Use :meth:`records` to observe failure records.
        """
        return {h for h, record in self.records().items() if record.ok}

    def records_for(self, spec: CampaignSpec) -> List[Optional[UnitRecord]]:
        """Stored records for a campaign's units, in declaration order
        (``None`` where a unit has not completed yet)."""
        stored = self.records()
        return [stored.get(unit.unit_hash) for unit in spec.units]

    # ------------------------------------------------------------- leases
    def try_claim(
        self, unit_hash: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> bool:
        """Reserve a unit for ``owner``; ``True`` iff the claim holds.

        Re-claiming a unit you already own is a *refresh*: it must be
        granted and must extend the lease's expiry, so a claim retried
        after an ambiguous failure (the first attempt landed but its
        acknowledgement was lost) re-executes harmlessly.  The base
        implementation has no peers to arbitrate against and always
        grants the claim.
        """
        return True

    def release(self, unit_hash: str, owner: str) -> None:
        """Drop ``owner``'s lease on a unit (no-op if not held).

        Idempotent for the owning caller: re-releasing an
        already-released lease is a no-op, and a stale release retried
        after a peer has since claimed the unit must leave the peer's
        lease intact — only the pair (unit, owner) is ever dropped.
        """

    def leased_hashes(self) -> Set[str]:
        """Hashes currently under a live (unexpired) lease."""
        return set()


class JsonlStore(CampaignStore):
    """Append-only JSONL file of :class:`UnitRecord` lines.

    The store is append-only; if a unit somehow appears twice the last
    record wins.  Reads tolerate a corrupt/truncated tail so a crashed
    writer never poisons the campaign.  Single-writer: it grants every
    claim, so two pools sharing one JSONL file would duplicate work
    (use ``sqlite`` or ``shared`` for that).

    Example::

        store = JsonlStore("campaigns/fig1-quick-s0.jsonl")
        run_campaign(spec, store=store)      # first run: executes
        run_campaign(spec, store=store)      # re-run: all cached
    """

    backend = "jsonl"

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def records(self) -> Dict[str, UnitRecord]:
        records: Dict[str, UnitRecord] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # crash-truncated tail; the unit re-runs
                if not all(key in data for key in _REQUIRED_KEYS):
                    continue
                record = UnitRecord.from_dict(data)
                records[record.unit_hash] = record
        return records

    def append(self, record: UnitRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


#: Backwards-compatible name: the original store class was ``ResultStore``.
ResultStore = JsonlStore


class SqliteStore(CampaignStore):
    """SQLite-backed store, safe for concurrent pools on one host.

    The database runs in WAL mode so many processes can append records
    while readers aggregate; leases live in a second table and are
    arbitrated by SQLite's own locking.  Connections are opened per
    operation, which keeps the store picklable and fork-safe.

    Example::

        store = SqliteStore("campaigns/fig4-full-s0.sqlite")
        # terminal 1 and terminal 2, simultaneously:
        #   repro campaign run fig4 --scale full --workers 4 \\
        #       --store-backend sqlite
        # each pool claims disjoint units; no unit runs twice.
    """

    backend = "sqlite"
    supports_leases = True

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS records ("
        " unit_hash TEXT PRIMARY KEY, experiment TEXT NOT NULL,"
        " spec TEXT NOT NULL, result TEXT NOT NULL,"
        " elapsed_s REAL NOT NULL DEFAULT 0.0,"
        " status TEXT NOT NULL DEFAULT 'ok')",
        "CREATE TABLE IF NOT EXISTS leases ("
        " unit_hash TEXT PRIMARY KEY, owner TEXT NOT NULL,"
        " expires_at REAL NOT NULL)",
    )

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._schema_ready = False
        self._wal_ready = False

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One transaction on a fresh, properly closed connection.

        Connections are per operation (keeps the store picklable and
        fork-safe); the WAL pragma and schema DDL run only until they
        have succeeded once per store instance.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        con = sqlite3.connect(self.path, timeout=30.0)
        try:
            con.execute("PRAGMA busy_timeout=30000")
            if not self._wal_ready:
                try:
                    con.execute("PRAGMA journal_mode=WAL")
                    self._wal_ready = True
                except sqlite3.OperationalError:
                    # Switching journal modes takes an exclusive lock
                    # the busy handler cannot wait out while a peer
                    # pool holds a shared lock mid-conversion (two
                    # pools racing to open a fresh store).  WAL is a
                    # throughput preference, not a correctness
                    # requirement: proceed in the current mode and try
                    # again on the next connection.
                    pass
            if not self._schema_ready:
                for statement in self._SCHEMA:
                    con.execute(statement)
                try:
                    # Databases created before failure records existed
                    # lack the status column; CREATE IF NOT EXISTS
                    # leaves them untouched, so migrate in place.
                    con.execute(
                        "ALTER TABLE records ADD COLUMN"
                        " status TEXT NOT NULL DEFAULT 'ok'"
                    )
                except sqlite3.OperationalError:
                    pass  # column already present (fresh schema)
                self._schema_ready = True
            with con:
                yield con
        finally:
            con.close()

    def records(self) -> Dict[str, UnitRecord]:
        if not self.path.exists():
            return {}
        with self._connect() as con:
            rows = con.execute(
                "SELECT unit_hash, experiment, spec, result, elapsed_s,"
                " status FROM records"
            ).fetchall()
        return {
            unit_hash: UnitRecord(
                unit_hash=unit_hash,
                experiment=experiment,
                spec=json.loads(spec),
                result=json.loads(result),
                elapsed_s=elapsed_s,
                status=status,
            )
            for unit_hash, experiment, spec, result, elapsed_s, status in rows
        }

    def get(self, unit_hash: str) -> Optional[UnitRecord]:
        if not self.path.exists():
            return None
        with self._connect() as con:
            row = con.execute(
                "SELECT unit_hash, experiment, spec, result, elapsed_s,"
                " status FROM records WHERE unit_hash = ?",
                (unit_hash,),
            ).fetchone()
        if row is None:
            return None
        return UnitRecord(
            unit_hash=row[0],
            experiment=row[1],
            spec=json.loads(row[2]),
            result=json.loads(row[3]),
            elapsed_s=row[4],
            status=row[5],
        )

    def append(self, record: UnitRecord) -> None:
        with self._connect() as con:
            con.execute(
                "INSERT OR REPLACE INTO records"
                " (unit_hash, experiment, spec, result, elapsed_s, status)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    record.unit_hash,
                    record.experiment,
                    json.dumps(record.spec, sort_keys=True),
                    json.dumps(record.result, sort_keys=True),
                    record.elapsed_s,
                    record.status,
                ),
            )

    def try_claim(
        self, unit_hash: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> bool:
        now = time.time()
        with self._connect() as con:
            con.execute("DELETE FROM leases WHERE expires_at <= ?", (now,))
            con.execute(
                "INSERT OR IGNORE INTO leases VALUES (?, ?, ?)",
                (unit_hash, owner, now + ttl_s),
            )
            con.execute(
                "UPDATE leases SET expires_at = ?"
                " WHERE unit_hash = ? AND owner = ?",
                (now + ttl_s, unit_hash, owner),
            )
            row = con.execute(
                "SELECT owner FROM leases WHERE unit_hash = ?", (unit_hash,)
            ).fetchone()
            if row and row[0] != owner and owner_is_dead_local(row[0]):
                # The holder is a dead process on this host: take over
                # without waiting out the TTL.
                con.execute(
                    "UPDATE leases SET owner = ?, expires_at = ?"
                    " WHERE unit_hash = ? AND owner = ?",
                    (owner, now + ttl_s, unit_hash, row[0]),
                )
                row = con.execute(
                    "SELECT owner FROM leases WHERE unit_hash = ?",
                    (unit_hash,),
                ).fetchone()
        return bool(row) and row[0] == owner

    def release(self, unit_hash: str, owner: str) -> None:
        if not self.path.exists():
            return
        with self._connect() as con:
            con.execute(
                "DELETE FROM leases WHERE unit_hash = ? AND owner = ?",
                (unit_hash, owner),
            )

    def leased_hashes(self) -> Set[str]:
        if not self.path.exists():
            return set()
        with self._connect() as con:
            rows = con.execute(
                "SELECT unit_hash FROM leases WHERE expires_at > ?",
                (time.time(),),
            ).fetchall()
        return {unit_hash for (unit_hash,) in rows}


class SharedDirStore(CampaignStore):
    """Shared-directory store for multi-host campaigns.

    Layout (everything under one directory, so the whole store moves
    with a single ``rsync``/bind-mount)::

        <dir>/records/<unit_hash>.json   one file per completed unit
        <dir>/leases/<unit_hash>.lease   {"owner": ..., "expires_at": ...}

    Records are written atomically (temp file + ``os.replace``) so a
    reader never sees a half-written result.  Claims rely only on
    ``open(O_CREAT | O_EXCL)`` — atomic on POSIX filesystems including
    NFS — and stale leases are stolen by first renaming the expired
    lease file away (exactly one stealer wins the rename) and then
    re-attempting the exclusive create.

    Example (two hosts, one NFS mount)::

        # host A and host B, simultaneously:
        #   repro campaign run fig4 --scale full --workers 8 \\
        #       --store-backend shared --store /mnt/shared/fig4-full-s0
        # whichever host claims a unit first runs it; the other skips.
    """

    backend = "shared"
    supports_leases = True

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @property
    def _records_dir(self) -> Path:
        return self.path / "records"

    @property
    def _leases_dir(self) -> Path:
        return self.path / "leases"

    def records(self) -> Dict[str, UnitRecord]:
        records: Dict[str, UnitRecord] = {}
        if not self._records_dir.is_dir():
            return records
        for entry in sorted(self._records_dir.glob("*.json")):
            try:
                data = json.loads(entry.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                continue  # partially copied / corrupt record; re-runs
            if not all(key in data for key in _REQUIRED_KEYS):
                continue
            record = UnitRecord.from_dict(data)
            records[record.unit_hash] = record
        return records

    def get(self, unit_hash: str) -> Optional[UnitRecord]:
        entry = self._records_dir / f"{unit_hash}.json"
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not all(key in data for key in _REQUIRED_KEYS):
            return None
        return UnitRecord.from_dict(data)

    def append(self, record: UnitRecord) -> None:
        self._records_dir.mkdir(parents=True, exist_ok=True)
        final = self._records_dir / f"{record.unit_hash}.json"
        tmp = self._records_dir / f".{record.unit_hash}.{uuid.uuid4().hex}.tmp"
        tmp.write_text(
            json.dumps(record.to_dict(), sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, final)

    # ------------------------------------------------------------- leases
    def _lease_path(self, unit_hash: str) -> Path:
        return self._leases_dir / f"{unit_hash}.lease"

    def _read_lease(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if "owner" not in data or "expires_at" not in data:
            return None
        return data

    def _create_lease(self, path: Path, owner: str, ttl_s: float) -> bool:
        # Write the payload to a private temp file, then hard-link it
        # to the lease name: link() is atomic and fails if the name
        # exists, and — unlike open(O_EXCL) followed by write() — the
        # lease can never be observed empty, so a peer cannot misread
        # a half-created lease as corrupt and steal it.
        payload = json.dumps(
            {"owner": owner, "expires_at": time.time() + ttl_s}
        )
        tmp = path.with_name(path.name + f".{uuid.uuid4().hex}.new")
        tmp.write_text(payload, encoding="utf-8")
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:  # pragma: no cover - best effort
                pass
        return True

    def try_claim(
        self, unit_hash: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> bool:
        self._leases_dir.mkdir(parents=True, exist_ok=True)
        lease = self._lease_path(unit_hash)
        if self._create_lease(lease, owner, ttl_s):
            return True
        data = self._read_lease(lease)
        if data is not None and data["owner"] == owner:
            # Refresh our own lease (atomic replace; we already own it).
            tmp = lease.with_name(lease.name + f".{uuid.uuid4().hex}.tmp")
            tmp.write_text(
                json.dumps({"owner": owner, "expires_at": time.time() + ttl_s}),
                encoding="utf-8",
            )
            os.replace(tmp, lease)
            return True
        if (
            data is not None
            and data["expires_at"] > time.time()
            and not owner_is_dead_local(str(data["owner"]))
        ):
            return False  # live lease held by another pool
        # Stale (or unreadable) lease: steal it.  Renaming the old file
        # away is the arbitration point — os.rename fails for everyone
        # but the first stealer — after which exactly one contender can
        # win the O_EXCL create.
        tomb = lease.with_name(lease.name + f".stale.{uuid.uuid4().hex}")
        try:
            os.rename(lease, tomb)
        except FileNotFoundError:
            pass  # someone else already removed/stole it
        else:
            try:
                os.unlink(tomb)
            except FileNotFoundError:  # pragma: no cover - best effort
                pass
        return self._create_lease(lease, owner, ttl_s)

    def release(self, unit_hash: str, owner: str) -> None:
        # A release may be *retried* after an ambiguous failure (the
        # first attempt landed but its acknowledgement was lost), by
        # which time a peer may have stolen the expired lease.  A
        # plain read-check-unlink would then delete the peer's fresh
        # lease, so the delete is arbitrated like a steal: rename the
        # file away (exactly one contender wins), re-check the owner
        # on the renamed copy, and put it back if it turned out to be
        # someone else's.  Releasing a lease we no longer (or never)
        # held is a no-op — idempotent for the owning caller.
        lease = self._lease_path(unit_hash)
        data = self._read_lease(lease)
        if data is None or data["owner"] != owner:
            return
        tomb = lease.with_name(lease.name + f".release.{uuid.uuid4().hex}")
        try:
            os.rename(lease, tomb)
        except FileNotFoundError:
            return  # already released (e.g. by our first attempt)
        data = self._read_lease(tomb)
        if data is not None and data["owner"] != owner:
            # We raced a stealer between the read and the rename: the
            # file we took out of service is the *peer's* lease now.
            # Restore it (unless the peer already wrote a newer one).
            try:
                os.link(tomb, lease)
            except FileExistsError:  # pragma: no cover - peer re-leased
                pass
        try:
            os.unlink(tomb)
        except FileNotFoundError:  # pragma: no cover - best effort
            pass

    def leased_hashes(self) -> Set[str]:
        if not self._leases_dir.is_dir():
            return set()
        now = time.time()
        live: Set[str] = set()
        for entry in self._leases_dir.glob("*.lease"):
            data = self._read_lease(entry)
            if data is not None and data["expires_at"] > now:
                live.add(entry.name[: -len(".lease")])
        return live


class TracedStore(CampaignStore):
    """A store wrapper that times every backend operation as a span.

    Wraps any :class:`CampaignStore` and forwards each call, recording
    a ``store.*`` span (category ``store``) with the backend id and —
    where one applies — the unit hash, so a trace shows exactly how
    much campaign wall time went to store I/O vs simulation.

    The tracer is duck-typed (anything with ``span()``), which keeps
    this module free of an ``repro.obs`` import; the campaign pool
    wraps its store in one of these only when tracing is enabled, so
    untraced runs never pay the indirection.
    """

    def __init__(self, inner: CampaignStore, tracer: Any):
        self.inner = inner
        self.tracer = tracer

    @property
    def backend(self) -> str:  # type: ignore[override]
        return self.inner.backend

    @property
    def supports_leases(self) -> bool:  # type: ignore[override]
        return self.inner.supports_leases

    @property
    def path(self) -> Path:  # type: ignore[override]
        return self.inner.path

    def describe(self) -> str:
        return self.inner.describe()

    def records(self) -> Dict[str, UnitRecord]:
        with self.tracer.span(
            "store.records", cat="store", backend=self.inner.backend
        ) as span:
            records = self.inner.records()
            span.set(count=len(records))
        return records

    def append(self, record: UnitRecord) -> None:
        with self.tracer.span(
            "store.append",
            cat="store",
            backend=self.inner.backend,
            unit=record.unit_hash,
        ):
            self.inner.append(record)

    def get(self, unit_hash: str) -> Optional[UnitRecord]:
        with self.tracer.span(
            "store.get", cat="store", backend=self.inner.backend, unit=unit_hash
        ) as span:
            record = self.inner.get(unit_hash)
            span.set(hit=record is not None)
        return record

    def completed_hashes(self) -> Set[str]:
        return self.inner.completed_hashes()

    def try_claim(
        self, unit_hash: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> bool:
        with self.tracer.span(
            "store.try_claim",
            cat="store",
            backend=self.inner.backend,
            unit=unit_hash,
        ) as span:
            granted = self.inner.try_claim(unit_hash, owner, ttl_s=ttl_s)
            span.set(granted=granted)
        return granted

    def release(self, unit_hash: str, owner: str) -> None:
        with self.tracer.span(
            "store.release",
            cat="store",
            backend=self.inner.backend,
            unit=unit_hash,
        ):
            self.inner.release(unit_hash, owner)

    def leased_hashes(self) -> Set[str]:
        with self.tracer.span(
            "store.leased_hashes", cat="store", backend=self.inner.backend
        ):
            return self.inner.leased_hashes()


#: backend id → store class (the ``--store-backend`` choices).
BACKENDS: Dict[str, type] = {
    "jsonl": JsonlStore,
    "sqlite": SqliteStore,
    "shared": SharedDirStore,
}

_SUFFIX_BACKENDS = {
    ".jsonl": "jsonl",
    ".json": "jsonl",
    ".sqlite": "sqlite",
    ".sqlite3": "sqlite",
    ".db": "sqlite",
}


def default_store_path(
    name: str, backend: str = "jsonl", root: str | Path = "campaigns"
) -> Path:
    """The conventional store location for a campaign ``name``.

    ``campaigns/<name>.jsonl`` / ``campaigns/<name>.sqlite`` /
    ``campaigns/<name>`` (a directory) depending on the backend.
    """
    root = Path(root)
    if backend == "jsonl":
        return root / f"{name}.jsonl"
    if backend == "sqlite":
        return root / f"{name}.sqlite"
    if backend == "shared":
        return root / name
    if backend == "http":
        raise ValueError(
            "the http backend has no default store location; pass the"
            " coordinator's URL explicitly (--store http://host:port)"
        )
    raise ValueError(f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}")


def open_store(path: str | Path, backend: Optional[str] = None) -> CampaignStore:
    """Open a campaign store, inferring the backend when not given.

    Inference: an ``http(s)://`` URL means the :class:`HttpStore`
    client for a ``repro campaign serve`` coordinator; a known file
    suffix (``.jsonl``/``.json`` → jsonl, ``.sqlite``/``.sqlite3``/
    ``.db`` → sqlite) wins next; an existing directory or a
    suffix-less path means ``shared``; anything else falls back to
    ``jsonl``.
    """
    text = str(path)
    is_url = text.startswith(("http://", "https://"))
    if backend == "http" or (backend is None and is_url):
        if not is_url:
            raise ValueError(
                "the http backend needs a coordinator URL"
                f" (http://host:port), got {text!r}"
            )
        # Imported lazily: remote depends on this module, not vice versa.
        from repro.campaigns.remote import HttpStore

        return HttpStore(text)
    if is_url:
        raise ValueError(
            f"backend {backend!r} cannot open a URL store ({text!r});"
            " use --store-backend http"
        )
    if backend is not None:
        try:
            cls = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; choose from"
                f" {sorted(BACKENDS) + ['http']}"
            ) from None
        return cls(path)
    p = Path(path)
    inferred = _SUFFIX_BACKENDS.get(p.suffix.lower())
    if inferred is not None:
        return BACKENDS[inferred](p)
    if p.is_dir() or not p.suffix:
        return SharedDirStore(p)
    return JsonlStore(p)
