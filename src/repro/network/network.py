"""The assembled network simulator.

:class:`NetworkSimulator` wires a topology to the simulation kernel:
one :class:`~repro.network.node.Node` per coordinate, one
:class:`~repro.network.channel.Channel` per directed link, shared
timing constants, and delivery bookkeeping.  It is the object every
executor, traffic generator and experiment works through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.channel import Channel, ChannelTiming
from repro.network.coordinates import Coordinate
from repro.network.message import DeliveryRecord
from repro.network.node import Node
from repro.network.topology import Topology
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["NetworkConfig", "NetworkSimulator"]

#: Paper constants (§3): start-up latencies examined, per-flit time.
PAPER_STARTUP_LATENCY_HIGH = 1.5  # µs
PAPER_STARTUP_LATENCY_LOW = 0.15  # µs
PAPER_FLIT_TIME = 0.003  # µs


@dataclass(frozen=True)
class NetworkConfig:
    """Simulator-wide parameters (times in µs, as in the paper).

    Parameters
    ----------
    startup_latency:
        Software send overhead ``Ts`` paid once per injected worm.
        The paper studies 0.15 and 1.5 µs (Cray T3D-class values).
    flit_time:
        Channel time per flit (``β`` = 0.003 µs in the paper).
    router_delay:
        Additional per-hop header delay (0 in the paper's model).
    ports_per_node:
        Injection-port budget of each router (algorithm-dependent:
        RD 1, EDN 3, DB/AB 2).
    """

    startup_latency: float = PAPER_STARTUP_LATENCY_HIGH
    flit_time: float = PAPER_FLIT_TIME
    router_delay: float = 0.0
    ports_per_node: int = 1

    def __post_init__(self) -> None:
        if self.startup_latency < 0:
            raise ValueError("startup_latency must be >= 0")
        if self.flit_time <= 0:
            raise ValueError("flit_time must be positive")
        if self.router_delay < 0:
            raise ValueError("router_delay must be >= 0")
        if self.ports_per_node < 1:
            raise ValueError("ports_per_node must be >= 1")

    @property
    def timing(self) -> ChannelTiming:
        """Channel-level timing view of this configuration."""
        return ChannelTiming(flit_time=self.flit_time, router_delay=self.router_delay)


class NetworkSimulator:
    """A simulated wormhole-switched interconnection network.

    Parameters
    ----------
    topology:
        The network shape.
    config:
        Timing/port parameters (defaults to the paper's constants).
    seed:
        Master seed for all randomness drawn through the simulator.

    Examples
    --------
    >>> from repro.network import Mesh, NetworkConfig
    >>> net = NetworkSimulator(Mesh((4, 4, 4)), NetworkConfig(ports_per_node=2))
    >>> net.num_nodes
    64
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        seed: Optional[int] = 0,
        rng_namespace: str = "",
    ):
        self.topology = topology
        self.config = config or NetworkConfig()
        self.env = Environment()
        # The namespace scopes every stream drawn through this network
        # (traffic generators, routing tie-breaks, fault injection) to
        # e.g. one shard of a sharded unit; "" is the root namespace
        # and leaves stream names — and therefore all draws — exactly
        # as an un-namespaced simulator would make them.
        self.random = RandomStreams(seed, namespace=rng_namespace)
        timing = self.config.timing
        self.nodes: Dict[Coordinate, Node] = {
            coord: Node(self.env, coord, ports=self.config.ports_per_node)
            for coord in topology.nodes()
        }
        self.channels: Dict[Tuple[Coordinate, Coordinate], Channel] = {
            (u, v): Channel(self.env, u, v, timing) for u, v in topology.channels()
        }
        self._delivery_hooks: List[Callable[[DeliveryRecord], None]] = []
        self._uid_hooks: Dict[int, Callable[[DeliveryRecord], None]] = {}

    # -- shape shortcuts --------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def now(self) -> float:
        return self.env.now

    def node(self, coord: Coordinate) -> Node:
        """The node at ``coord`` (KeyError when outside the network)."""
        return self.nodes[tuple(coord)]

    def channel(self, u: Coordinate, v: Coordinate) -> Channel:
        """The directed channel ``u → v`` (KeyError when absent)."""
        return self.channels[(tuple(u), tuple(v))]

    def channel_load(self, u: Coordinate, v: Coordinate) -> float:
        """Congestion oracle for adaptive routing (occupancy + queue).

        Faulty channels report infinite load, so an adaptive worm takes
        any healthy alternative its routing function allows and only
        aborts when every legal candidate is broken.
        """
        channel = self.channel(u, v)
        if channel.faulty:
            return float("inf")
        return float(channel.load_metric)

    # -- delivery plumbing -------------------------------------------------
    def add_delivery_hook(self, hook: Callable[[DeliveryRecord], None]) -> None:
        """Register a callback invoked on every message delivery."""
        self._delivery_hooks.append(hook)

    def add_uid_hook(self, uid: int, hook: Callable[[DeliveryRecord], None]) -> None:
        """Register a callback for deliveries of one message only.

        A message's deliveries concern exactly one consumer (the
        executor that launched it), so uid-keyed dispatch replaces the
        every-hook-filters-every-delivery broadcast of the generic hook
        list — O(1) per delivery however many broadcasts are in flight.
        """
        self._uid_hooks[uid] = hook

    def remove_uid_hook(self, uid: int) -> None:
        """Deregister a per-message hook (missing uids are ignored)."""
        self._uid_hooks.pop(uid, None)

    def record_delivery(self, record: DeliveryRecord) -> None:
        """Deliver a copy to its node and notify hooks."""
        self.nodes[record.node].deliver(record)
        hook = self._uid_hooks.get(record.message_uid)
        if hook is not None:
            hook(record)
        for hook in self._delivery_hooks:
            hook(record)

    # -- statistics -------------------------------------------------------
    def reset_statistics(self) -> None:
        """Clear all node delivery records (between measurement batches)."""
        for node in self.nodes.values():
            node.reset_statistics()

    def max_channel_utilisation(self) -> float:
        """Highest per-channel utilisation (bottleneck indicator)."""
        return max(ch.utilisation() for ch in self.channels.values())

    def mean_channel_utilisation(self) -> float:
        """Average utilisation over all channels."""
        values = [ch.utilisation() for ch in self.channels.values()]
        return sum(values) / len(values)

    def run(self, until=None):
        """Advance the simulation (delegates to the kernel)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkSimulator {self.topology!r} t={self.env.now}"
            f" ports={self.config.ports_per_node}>"
        )
