"""Network topologies.

:class:`Topology` is the abstract shape of an interconnection network:
a set of node coordinates plus a directed-adjacency relation.  Physical
channels are *unidirectional*: each bidirectional mesh link contributes
two directed channels, matching the router model in Duato et al. that
the paper builds on.

:class:`Mesh` is the paper's subject — the k-ary n-dimensional mesh.
The torus and hypercube (the "future directions" topologies named in the
paper's conclusion) live in sibling modules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.network.coordinates import (
    Coordinate,
    coordinate_iter,
    from_index,
    manhattan_distance,
    to_index,
    validate_coordinate,
    validate_dims,
)

__all__ = ["Topology", "Mesh"]


class Topology:
    """Abstract interconnection-network shape.

    Subclasses implement :meth:`neighbors` (and may override
    :meth:`distance`).  Everything else — channel enumeration, index
    mapping, containment — is shared.
    """

    def __init__(self, dims: Sequence[int]):
        self.dims: Tuple[int, ...] = validate_dims(dims)
        self.ndim = len(self.dims)
        n = 1
        for d in self.dims:
            n *= d
        self.num_nodes = n

    # -- shape ------------------------------------------------------------
    def nodes(self) -> Iterator[Coordinate]:
        """All node coordinates in linear-index order."""
        return coordinate_iter(self.dims)

    def contains(self, coord: Sequence[int]) -> bool:
        """True when ``coord`` is a valid node address."""
        return len(coord) == self.ndim and all(
            0 <= c < d for c, d in zip(coord, self.dims)
        )

    def index(self, coord: Sequence[int]) -> int:
        """Linear index of a node."""
        return to_index(coord, self.dims)

    def coordinate(self, index: int) -> Coordinate:
        """Node coordinate for a linear index."""
        return from_index(index, self.dims)

    # -- adjacency ----------------------------------------------------------
    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        """Nodes with a direct channel from ``coord``."""
        raise NotImplementedError

    def channels(self) -> Iterator[Tuple[Coordinate, Coordinate]]:
        """All directed channels ``(u, v)``."""
        for u in self.nodes():
            for v in self.neighbors(u):
                yield (u, v)

    def are_adjacent(self, u: Coordinate, v: Coordinate) -> bool:
        """True when the directed channel ``u → v`` exists."""
        return v in self.neighbors(u)

    def distance(self, u: Coordinate, v: Coordinate) -> int:
        """Minimal hop count between two nodes."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Largest minimal distance over all node pairs."""
        corners = [tuple(0 for _ in self.dims), tuple(d - 1 for d in self.dims)]
        return max(
            self.distance(a, b) for a in corners for b in corners
        )

    # -- conversion --------------------------------------------------------------
    def degree_histogram(self) -> Dict[int, int]:
        """Map node degree → count (diagnostic / test helper)."""
        hist: Dict[int, int] = {}
        for u in self.nodes():
            d = len(self.neighbors(u))
            hist[d] = hist.get(d, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {'x'.join(map(str, self.dims))}>"


class Mesh(Topology):
    """The k-ary n-dimensional mesh.

    Nodes differing by exactly 1 in exactly one dimension are joined by
    a pair of opposite unidirectional channels.  No wraparound.

    Parameters
    ----------
    dims:
        Radix per dimension, e.g. ``(8, 8, 8)`` for the paper's
        512-node 3-D mesh.

    Examples
    --------
    >>> m = Mesh((4, 4, 4))
    >>> m.num_nodes
    64
    >>> m.distance((0, 0, 0), (3, 3, 3))
    9
    """

    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        coord = validate_coordinate(coord, self.dims)
        out: List[Coordinate] = []
        for axis, (c, d) in enumerate(zip(coord, self.dims)):
            if c > 0:
                out.append(coord[:axis] + (c - 1,) + coord[axis + 1 :])
            if c < d - 1:
                out.append(coord[:axis] + (c + 1,) + coord[axis + 1 :])
        return out

    def channels(self) -> Iterator[Tuple[Coordinate, Coordinate]]:
        """All directed channels, generated without per-node validation.

        Yields exactly the base-class order (nodes linearly, per axis
        the ``c-1`` then ``c+1`` neighbour) — network construction
        iterates this for every simulation unit, so it skips the
        re-validation ``neighbors()`` performs on arbitrary input.
        """
        dims = self.dims
        for coord in self.nodes():
            for axis, (c, d) in enumerate(zip(coord, dims)):
                if c > 0:
                    yield coord, coord[:axis] + (c - 1,) + coord[axis + 1 :]
                if c < d - 1:
                    yield coord, coord[:axis] + (c + 1,) + coord[axis + 1 :]

    def distance(self, u: Coordinate, v: Coordinate) -> int:
        u = validate_coordinate(u, self.dims)
        v = validate_coordinate(v, self.dims)
        return manhattan_distance(u, v)

    def corners(self) -> List[Coordinate]:
        """The 2^n corner nodes."""
        out = [()]
        for d in self.dims:
            out = [c + (e,) for c in out for e in (0, d - 1)]
        # Degenerate dimensions (radix 1) duplicate corners; dedupe.
        seen: Dict[Coordinate, None] = {}
        for c in out:
            seen[c] = None
        return list(seen)

    def nearest_corner(self, coord: Coordinate) -> Coordinate:
        """The corner minimising hop distance from ``coord``."""
        coord = validate_coordinate(coord, self.dims)
        return tuple(0 if c <= (d - 1) / 2 else d - 1 for c, d in zip(coord, self.dims))

    def opposite_corner(self, corner: Coordinate) -> Coordinate:
        """The corner diagonally opposite ``corner``."""
        corner = validate_coordinate(corner, self.dims)
        return tuple(d - 1 - c for c, d in zip(corner, self.dims))

    def plane(self, axis: int, value: int) -> List[Coordinate]:
        """All nodes whose ``axis`` coordinate equals ``value``."""
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis {axis} out of range")
        if not 0 <= value < self.dims[axis]:
            raise ValueError(f"plane {value} outside dimension {axis}")
        return [c for c in self.nodes() if c[axis] == value]

    def line(self, coord: Coordinate, axis: int) -> List[Coordinate]:
        """All nodes sharing every coordinate of ``coord`` except ``axis``."""
        coord = validate_coordinate(coord, self.dims)
        return [
            coord[:axis] + (v,) + coord[axis + 1 :] for v in range(self.dims[axis])
        ]
