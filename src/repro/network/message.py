"""Messages and the coded-path control field.

A :class:`Message` is the unit the paper's simulator traffics in: a worm
of ``length_flits`` flits with a header carrying routing information.
For coded-path routing (CPR [1]) the header holds a 2-bit
:class:`ControlField` telling each router whether to *pass* the worm,
*absorb* a copy while forwarding, or *sink* it — this is what lets one
path message deliver to every node it traverses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.network.coordinates import Coordinate

__all__ = ["MessageKind", "ControlField", "Message", "DeliveryRecord"]

_message_ids = itertools.count()


class MessageKind(enum.Enum):
    """What a message is for (drives statistics bucketing)."""

    UNICAST = "unicast"
    BROADCAST = "broadcast"


class ControlField(enum.IntEnum):
    """The CPR header's 2-bit control field.

    Values follow the paper's AB description (§2): ``10`` marks the
    corner-bound set-up worms of step 1, ``11`` the corner-to-corner
    propagation worms of step 2.  The semantics each router applies:

    PASS (00)
        forward only — a pure transit hop;
    RECEIVE (01)
        absorb and sink — classic unicast final delivery;
    PASS_AND_RECEIVE (10)
        absorb a copy and keep forwarding — multidestination delivery
        on the way to a corner;
    RECEIVE_AND_REPLICATE (11)
        absorb a copy, keep forwarding, and the absorbing node becomes
        a source for the next message-passing step.
    """

    PASS = 0b00
    RECEIVE = 0b01
    PASS_AND_RECEIVE = 0b10
    RECEIVE_AND_REPLICATE = 0b11

    @property
    def delivers(self) -> bool:
        """Does a router applying this field absorb a copy?"""
        return self is not ControlField.PASS

    @property
    def forwards(self) -> bool:
        """Does a router applying this field keep forwarding the worm?"""
        return self is not ControlField.RECEIVE


@dataclass
class Message:
    """A wormhole message.

    Parameters
    ----------
    source:
        Injecting node.
    destinations:
        Nodes that must absorb a copy.  A single-element set is a plain
        unicast; multi-element sets are CPR multidestination worms.
    length_flits:
        Worm length ``L`` in flits.
    kind:
        Unicast or broadcast-related (for statistics).
    control:
        CPR control field carried in the header.
    created_at:
        Simulation time the message entered the source's send queue.
    broadcast_id:
        Groups all worms belonging to one broadcast operation.
    step:
        Message-passing step (1-based) within the broadcast schedule.
    """

    source: Coordinate
    destinations: FrozenSet[Coordinate]
    length_flits: int
    kind: MessageKind = MessageKind.UNICAST
    control: ControlField = ControlField.RECEIVE
    created_at: float = 0.0
    broadcast_id: Optional[int] = None
    step: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.length_flits < 1:
            raise ValueError(f"message length must be >= 1 flit, got {self.length_flits}")
        self.destinations = frozenset(self.destinations)
        if not self.destinations:
            raise ValueError("message needs at least one destination")
        if self.source in self.destinations:
            raise ValueError(f"source {self.source} cannot be its own destination")

    @property
    def is_multidestination(self) -> bool:
        """True for CPR worms delivering to more than one node."""
        return len(self.destinations) > 1

    def single_destination(self) -> Coordinate:
        """The destination of a unicast worm (error if multidestination)."""
        if self.is_multidestination:
            raise ValueError("multidestination message has no single destination")
        return next(iter(self.destinations))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dests = sorted(self.destinations)
        shown = dests if len(dests) <= 3 else dests[:3] + ["..."]
        return (
            f"<Message #{self.uid} {self.kind.value} {self.source}->{shown}"
            f" L={self.length_flits}>"
        )


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery of a broadcast/unicast copy to a node."""

    message_uid: int
    node: Coordinate
    time: float
    step: Optional[int] = None
