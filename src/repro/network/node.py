"""Network nodes.

A :class:`Node` is a processor + router pair.  The router's *injection
ports* limit how many worms the node can be sending simultaneously —
the paper's port model (RD effectively uses one port, EDN a three-port
router, DB/AB two ports).  Ports are a FIFO
:class:`~repro.sim.resources.Resource`, so sends issued in the same
message-passing step serialise when the port budget is exceeded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.network.coordinates import Coordinate
from repro.network.message import DeliveryRecord
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Node"]


class Node:
    """One mesh node (processor + wormhole router).

    Parameters
    ----------
    env:
        Owning simulation environment.
    coord:
        The node's address.
    ports:
        Injection-port budget (simultaneous outgoing worms).
    """

    __slots__ = ("env", "coord", "ports", "deliveries", "sent_count", "_first_arrival")

    def __init__(self, env: "Environment", coord: Coordinate, ports: int = 1):
        if ports < 1:
            raise ValueError(f"a node needs at least one port, got {ports}")
        self.env = env
        self.coord = coord
        self.ports = Resource(env, capacity=ports)
        self.deliveries: List[DeliveryRecord] = []
        self.sent_count = 0
        self._first_arrival: Dict[int, float] = {}

    def deliver(self, record: DeliveryRecord) -> None:
        """Record the arrival of a message copy at this node."""
        self.deliveries.append(record)
        self._first_arrival.setdefault(record.message_uid, record.time)

    def has_received(self, message_uid: int) -> bool:
        """True once a copy of the given message has arrived here."""
        return message_uid in self._first_arrival

    def arrival_time(self, message_uid: int) -> float:
        """When the first copy of the message arrived (KeyError if never)."""
        return self._first_arrival[message_uid]

    def reset_statistics(self) -> None:
        """Drop recorded deliveries (used between measurement batches)."""
        self.deliveries.clear()
        self._first_arrival.clear()
        self.sent_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.coord} rx={len(self.deliveries)} tx={self.sent_count}>"
