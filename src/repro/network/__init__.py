"""Interconnection-network substrate.

Models the hardware the paper simulates: k-ary n-dimensional meshes
(plus torus and hypercube extensions), unidirectional physical channels
with single FIFO queues, nodes with a configurable number of injection
ports, and wormhole-switched path transmission with coded-path
(multidestination) delivery.
"""

from repro.network.coordinates import (
    Coordinate,
    add,
    chebyshev_distance,
    coordinate_iter,
    from_index,
    manhattan_distance,
    to_index,
)
from repro.network.topology import Mesh, Topology
from repro.network.torus import Torus
from repro.network.hypercube import Hypercube
from repro.network.channel import Channel, ChannelTiming
from repro.network.message import Message, MessageKind, ControlField
from repro.network.node import Node
from repro.network.network import NetworkSimulator, NetworkConfig
from repro.network.wormhole import PathTransmission, TransmissionResult
from repro.network.faults import FaultModel, FaultyChannelError

__all__ = [
    "Channel",
    "ChannelTiming",
    "ControlField",
    "Coordinate",
    "FaultModel",
    "FaultyChannelError",
    "Hypercube",
    "Mesh",
    "Message",
    "MessageKind",
    "NetworkConfig",
    "NetworkSimulator",
    "Node",
    "PathTransmission",
    "Topology",
    "Torus",
    "TransmissionResult",
    "add",
    "chebyshev_distance",
    "coordinate_iter",
    "from_index",
    "manhattan_distance",
    "to_index",
]
