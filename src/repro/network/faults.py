"""Channel fault injection.

The paper cites broadcast under dynamic faults (Dobrev & Vrto [26]) as
related work; this module provides the machinery to study it: mark
channels faulty (statically or by a random process), and let adaptive
routing exercise its alternative paths while deterministic routing
surfaces :class:`FaultyChannelError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

from repro.network.coordinates import Coordinate

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import Channel
    from repro.network.network import NetworkSimulator

__all__ = ["FaultyChannelError", "FaultModel"]

ChannelId = Tuple[Coordinate, Coordinate]


class FaultyChannelError(RuntimeError):
    """A worm's deterministic route hit a faulty channel."""

    def __init__(self, channel: "Channel"):
        super().__init__(f"channel {channel.src} -> {channel.dst} is faulty")
        self.channel = channel


class FaultModel:
    """Inject and clear channel faults on a network.

    Parameters
    ----------
    network:
        The simulator whose channels are affected.
    symmetric:
        When true (default), faulting ``u → v`` also faults ``v → u`` —
        the usual broken-physical-link model.
    """

    def __init__(self, network: "NetworkSimulator", symmetric: bool = True):
        self.network = network
        self.symmetric = symmetric
        self._faulted: Set[ChannelId] = set()

    @property
    def faulted_channels(self) -> Set[ChannelId]:
        """Currently faulty directed channels."""
        return set(self._faulted)

    def _ids(self, u: Coordinate, v: Coordinate) -> List[ChannelId]:
        ids: List[ChannelId] = [(tuple(u), tuple(v))]
        if self.symmetric:
            ids.append((tuple(v), tuple(u)))
        return ids

    def fail_channel(self, u: Coordinate, v: Coordinate) -> None:
        """Mark the channel (pair) between ``u`` and ``v`` faulty."""
        for cid in self._ids(u, v):
            channel = self.network.channels.get(cid)
            if channel is None:
                raise KeyError(f"no channel {cid[0]} -> {cid[1]}")
            channel.faulty = True
            self._faulted.add(cid)

    def repair_channel(self, u: Coordinate, v: Coordinate) -> None:
        """Clear the fault on the channel (pair) between ``u`` and ``v``."""
        for cid in self._ids(u, v):
            channel = self.network.channels.get(cid)
            if channel is None:
                raise KeyError(f"no channel {cid[0]} -> {cid[1]}")
            channel.faulty = False
            self._faulted.discard(cid)

    def repair_all(self) -> None:
        """Clear every injected fault."""
        for cid in list(self._faulted):
            self.network.channels[cid].faulty = False
        self._faulted.clear()

    def fail_random_links(
        self, count: int, rng_stream: str = "faults"
    ) -> List[ChannelId]:
        """Fault ``count`` distinct links chosen uniformly at random.

        Returns the (directed) ids of the primary channels failed.
        """
        links = sorted(
            {tuple(sorted((u, v))) for (u, v) in self.network.channels},
        )
        if count > len(links):
            raise ValueError(f"only {len(links)} links exist, cannot fail {count}")
        rng = self.network.random[rng_stream]
        chosen_idx = rng.choice(len(links), size=count, replace=False)
        failed: List[ChannelId] = []
        for i in chosen_idx:
            u, v = links[int(i)]
            self.fail_channel(u, v)
            failed.append((u, v))
        return failed

    def healthy_neighbors(self, coord: Coordinate) -> Iterable[Coordinate]:
        """Neighbours of ``coord`` reachable over non-faulty channels."""
        for v in self.network.topology.neighbors(coord):
            if not self.network.channel(coord, v).faulty:
                yield v
