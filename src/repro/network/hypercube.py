"""Binary hypercube topology.

The generalised hypercube is the second "future directions" topology in
the paper's conclusion.  An ``n``-dimensional binary hypercube has
``2^n`` nodes; two nodes are adjacent when their addresses differ in
exactly one bit.  Equivalently it is the 2-ary n-mesh, but the bitwise
formulation gives O(n) adjacency tests and a natural recursive-doubling
broadcast.
"""

from __future__ import annotations

from typing import List

from repro.network.coordinates import Coordinate, validate_coordinate
from repro.network.topology import Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """The binary n-cube.

    Parameters
    ----------
    order:
        Number of dimensions ``n``; the network has ``2^n`` nodes.

    Notes
    -----
    Coordinates are bit tuples, e.g. ``(1, 0, 1)`` in a 3-cube, so the
    generic mesh/grid machinery (indexing, iteration) applies unchanged.
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"hypercube order must be >= 1, got {order}")
        super().__init__((2,) * order)
        self.order = order

    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        coord = validate_coordinate(coord, self.dims)
        return [
            coord[:axis] + (1 - coord[axis],) + coord[axis + 1 :]
            for axis in range(self.order)
        ]

    def distance(self, u: Coordinate, v: Coordinate) -> int:
        """Hamming distance."""
        u = validate_coordinate(u, self.dims)
        v = validate_coordinate(v, self.dims)
        return sum(a != b for a, b in zip(u, v))

    def flip(self, coord: Coordinate, axis: int) -> Coordinate:
        """The neighbour of ``coord`` across dimension ``axis``."""
        coord = validate_coordinate(coord, self.dims)
        if not 0 <= axis < self.order:
            raise ValueError(f"axis {axis} out of range")
        return coord[:axis] + (1 - coord[axis],) + coord[axis + 1 :]
