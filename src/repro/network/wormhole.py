"""Wormhole path transmission.

:class:`PathTransmission` is the paper's *path process*: the simulation
process that carries one worm from its source across the network,
delivering a copy to every destination on its path.

Mechanics (matching the paper's path-level model):

1. acquire an injection port at the source, pay the start-up latency
   ``Ts``;
2. advance the header one channel at a time — each channel is a
   single-queue FIFO resource, and while the header waits for a busy
   channel the worm *keeps holding* every channel behind it (wormhole
   blocking);
3. once the header reaches the end of the path, the body pipelines
   behind it: a node on the path holds the complete message
   ``(L-1)·β`` after the header passed it;
4. destinations absorb their copy as the body streams past
   (coded-path delivery);
5. the worm releases its channels when the tail drains.

The release model holds the full path until the tail arrives at the
terminus.  For the paper's parameters (L = 32–2048 flits vs. path
lengths ≤ ~45 hops) the worm genuinely spans its whole path during
transmission, so this is exact, not an approximation, except for worms
shorter than their path — a regime the paper does not enter.

Hop batching
------------
The header walk is *hop-batched*: while no other simulation event can
fire before the header's next arrival time (``env.peek()`` strictly
later), consecutive free channels are claimed eventlessly with
``Resource.claim`` and the worm pays one combined ``hold_until``
instead of a per-hop request/yield/timeout triple.  The no-interleaving guard
makes this provably unobservable — per-hop times are accumulated with
the same float arithmetic, channel state is untouched by third parties
inside the batched window, and adaptive routing samples
``channel_load`` against exactly the state it would have seen hop by
hop.  The walk falls back to the per-hop slow path at the first busy
or faulty channel, or whenever another event is due in the window.
``docs/performance.md`` spells out the invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.network.coordinates import Coordinate
from repro.network.message import DeliveryRecord, Message
from repro.routing.base import RoutingFunction
from repro.routing.paths import Path

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import NetworkSimulator
    from repro.sim.process import Process

__all__ = ["PathTransmission", "TransmissionResult"]


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of one worm's journey.

    Parameters
    ----------
    message:
        The transmitted message.
    queued_at:
        When the send was initiated (before port wait).
    injected_at:
        When the header entered the network (after port wait + ``Ts``).
    completed_at:
        When the tail arrived at the path terminus.
    arrivals:
        Full-message arrival time at every delivered node.
    visited:
        The nodes the header traversed, in order.
    """

    message: Message
    queued_at: float
    injected_at: float
    completed_at: float
    arrivals: Dict[Coordinate, float]
    visited: Tuple[Coordinate, ...]

    @property
    def network_latency(self) -> float:
        """Queued-to-last-delivery latency of this worm."""
        return self.completed_at - self.queued_at

    def latency_to(self, node: Coordinate) -> float:
        """Queued-to-delivery latency for one destination."""
        return self.arrivals[node] - self.queued_at


class PathTransmission:
    """A path process: transmits one worm, possibly multidestination.

    Exactly one of ``path`` / ``waypoints`` must be given:

    ``path``
        a pre-built :class:`~repro.routing.paths.Path`; the worm
        follows it hop for hop (deterministic schemes build these
        offline);
    ``waypoints``
        an ordered list of nodes to visit (first entry = source); the
        route between consecutive waypoints is resolved hop-by-hop by
        ``routing`` at simulation time — when ``adaptive`` is true the
        least-loaded legal channel is chosen at each branch, which is
        how the AB algorithm exploits the west-first turn model.

    Parameters
    ----------
    network:
        The simulator to transmit on.
    message:
        The worm; ``message.destinations`` must lie on the route.
    batch_hops:
        Batch the header walk over consecutive free channels (default).
        The batched and per-hop walks are event-for-event identical —
        the flag exists for the determinism tests that prove it.
    """

    def __init__(
        self,
        network: "NetworkSimulator",
        message: Message,
        *,
        path: Optional[Path] = None,
        waypoints: Optional[Sequence[Coordinate]] = None,
        routing: Optional[RoutingFunction] = None,
        adaptive: bool = False,
        batch_hops: bool = True,
    ):
        if (path is None) == (waypoints is None):
            raise ValueError("give exactly one of path= or waypoints=")
        if waypoints is not None:
            if routing is None:
                raise ValueError("waypoints= requires a routing function")
            waypoints = [tuple(w) for w in waypoints]
            if waypoints[0] != message.source:
                raise ValueError(
                    f"waypoints must start at the source {message.source},"
                    f" got {waypoints[0]}"
                )
            if len(waypoints) < 2:
                raise ValueError("waypoints must include at least one target")
        if path is not None:
            if path.source != message.source:
                raise ValueError(
                    f"path starts at {path.source}, message source is {message.source}"
                )
            # Destinations covered by the path's declared deliveries
            # (the common case) need no set materialisation at all.
            if not (message.destinations <= path.deliveries):
                stray = (
                    message.destinations - path.deliveries - set(path.nodes)
                )
                if stray:
                    raise ValueError(
                        f"destinations {sorted(stray)} are not on the path"
                    )
        self.network = network
        self.message = message
        self.path = path
        self.waypoints = waypoints
        self.routing = routing
        self.adaptive = adaptive
        self.batch_hops = batch_hops
        self.result: Optional[TransmissionResult] = None

    # -- launching ---------------------------------------------------------
    def start(self) -> "Process":
        """Spawn the path process; its value is the TransmissionResult."""
        return self.network.env.process(self._run())

    def _next_nodes(self):
        """Yield the nodes after the source, resolving adaptivity live."""
        if self.path is not None:
            for node in self.path.nodes[1:]:
                yield node
            return
        net = self.network
        load = net.channel_load if self.adaptive else None
        current = self.message.source
        for target in self.waypoints[1:]:
            guard = 0
            while current != target:
                current = self.routing.next_hop(current, target, load)
                guard += 1
                if guard > net.num_nodes:  # pragma: no cover - defensive
                    raise RuntimeError("routing made no progress")
                yield current

    def _run(self):
        net = self.network
        env = net.env
        msg = self.message
        timing = net.config.timing
        source_node = net.node(msg.source)

        queued_at = env.now
        # 1. injection port + start-up latency.
        port_req = source_node.ports.request()
        if not port_req.consume_inline():
            yield port_req
        yield env.hold(net.config.startup_latency)
        injected_at = env.now
        source_node.sent_count += 1

        # 2. header walk: acquire channels in order, holding all behind.
        held = []
        current = tuple(msg.source)
        visited: List[Coordinate] = [current]
        header_times: Dict[Coordinate, float] = {}
        remaining = set(msg.destinations)
        hop_time = timing.header_hop_time
        batching = self.batch_hops and env._fastpath
        heap = env._heap
        channels = net.channels
        profile = env._profile
        # Pre-built paths walk their node tuple by index — no generator
        # machinery on the per-hop fast path; adaptive waypoint routes
        # resolve lazily through _next_nodes() as before.
        if self.path is not None:
            route = self.path.nodes
            route_len = len(route)
            route_idx = 1
            next_nodes = None
            nxt = route[1] if route_len > 1 else None
        else:
            route = None
            next_nodes = self._next_nodes()
            nxt = next(next_nodes, None)
        claim_token = object() if batching else None
        while nxt is not None:
            channel = channels[(current, nxt)]
            if batching:
                # Greedily claim consecutive free channels, then pay one
                # combined hold.  `t` accumulates per-hop times with the
                # slow path's exact float arithmetic.  Both the *routing
                # decision* for a hop and its channel claim happen at
                # the header's arrival time `t`; they may run early only
                # when no other event fires at or before `t`
                # (`heap[0][0] > t`): the heap cannot change before its
                # own head pops, so channel state — including the
                # `channel_load` samples adaptive routing reads — is
                # provably what the hop-by-hop walk would have seen.
                # The first hop was resolved within the current
                # execution slice — synchronous either way, no guard.
                # When the guard fails, the next decision is deferred
                # until the clock catches up (`deferred` below).
                t = start = env._now
                deferred = False
                while True:
                    if channel.faulty:
                        break  # the hop-by-hop path raises, at time t
                    resource = channel.resource
                    if not resource.claim(claim_token, t):
                        break  # busy: the slow path queues at this hop
                    profile.worm_hops_batched += 1
                    held.append((resource, claim_token))
                    t = t + hop_time
                    current = nxt
                    visited.append(current)
                    if current in remaining:
                        header_times[current] = t
                        remaining.discard(current)
                    if heap and heap[0][0] <= t:
                        # Another event interleaves before the header
                        # reaches `current`: the next routing decision
                        # and claim must wait for real time t.
                        deferred = True
                        break
                    if route is not None:
                        route_idx += 1
                        nxt = route[route_idx] if route_idx < route_len else None
                    else:
                        nxt = next(next_nodes, None)
                    if nxt is None:
                        break
                    channel = channels[(current, nxt)]
                if t > start:
                    yield env.hold_until(t)
                if deferred:
                    # env.now == t: resolve the next hop at its exact
                    # per-hop decision time, then retry (batch or slow).
                    if route is not None:
                        route_idx += 1
                        nxt = route[route_idx] if route_idx < route_len else None
                    else:
                        nxt = next(next_nodes, None)
                    continue
                if nxt is None:
                    break
            if channel.faulty:
                for res, req in reversed(held):
                    res.release(req)
                source_node.ports.release(port_req)
                from repro.network.faults import FaultyChannelError

                raise FaultyChannelError(channel)
            request = channel.resource.request()
            if not request.consume_inline():
                yield request
            held.append((channel.resource, request))
            profile.worm_hops_slow += 1
            yield env.hold(hop_time)
            current = nxt
            visited.append(current)
            if current in remaining:
                header_times[current] = env.now
                remaining.discard(current)
            if route is not None:
                route_idx += 1
                nxt = route[route_idx] if route_idx < route_len else None
            else:
                nxt = next(next_nodes, None)

        if remaining:
            for res, req in reversed(held):
                res.release(req)
            source_node.ports.release(port_req)
            raise RuntimeError(
                f"worm #{msg.uid} finished its path without reaching {sorted(remaining)}"
            )

        # 3-4. body pipelining + coded-path deliveries in arrival order.
        body = timing.body_time(msg.length_flits)
        arrivals: Dict[Coordinate, float] = {}
        if len(header_times) > 1:
            deliveries = sorted(header_times.items(), key=lambda kv: kv[1])
        else:  # unicast fast path: nothing to sort
            deliveries = header_times.items()
        for node, header_t in deliveries:
            arrival = header_t + body
            if arrival > env.now:
                yield env.hold(arrival - env.now)
            arrivals[node] = arrival
            net.record_delivery(
                DeliveryRecord(
                    message_uid=msg.uid, node=node, time=arrival, step=msg.step
                )
            )

        # 5. tail drains at the terminus; free the path and the port.
        completed_at = env.now
        for res, request in reversed(held):
            res.release(request)
        source_node.ports.release(port_req)

        self.result = TransmissionResult(
            message=msg,
            queued_at=queued_at,
            injected_at=injected_at,
            completed_at=completed_at,
            arrivals=arrivals,
            visited=tuple(visited),
        )
        return self.result
