"""Coordinate arithmetic for n-dimensional grids.

A node in a ``d1 × d2 × … × dn`` network is addressed by an integer
tuple ``(x1, …, xn)`` with ``0 <= xi < di``.  Linear indices use
row-major (C) order: the *last* dimension varies fastest, matching
``numpy.ravel_multi_index``.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence, Tuple

__all__ = [
    "Coordinate",
    "to_index",
    "from_index",
    "coordinate_iter",
    "manhattan_distance",
    "chebyshev_distance",
    "add",
    "validate_dims",
    "validate_coordinate",
]

#: A node address: one integer per dimension.
Coordinate = Tuple[int, ...]


def validate_dims(dims: Sequence[int]) -> Tuple[int, ...]:
    """Check and normalise a dimension vector."""
    dims = tuple(int(d) for d in dims)
    if not dims:
        raise ValueError("network must have at least one dimension")
    if any(d < 1 for d in dims):
        raise ValueError(f"all dimensions must be >= 1, got {dims}")
    return dims


def validate_coordinate(coord: Sequence[int], dims: Sequence[int]) -> Coordinate:
    """Check ``coord`` lies inside the grid defined by ``dims``."""
    coord = tuple(int(c) for c in coord)
    if len(coord) != len(dims):
        raise ValueError(f"coordinate {coord} has wrong arity for dims {tuple(dims)}")
    for c, d in zip(coord, dims):
        if not 0 <= c < d:
            raise ValueError(f"coordinate {coord} outside grid {tuple(dims)}")
    return coord


def to_index(coord: Sequence[int], dims: Sequence[int]) -> int:
    """Linear (row-major) index of ``coord`` in a grid of shape ``dims``."""
    coord = validate_coordinate(coord, dims)
    index = 0
    for c, d in zip(coord, dims):
        index = index * d + c
    return index


def from_index(index: int, dims: Sequence[int]) -> Coordinate:
    """Inverse of :func:`to_index`."""
    dims = validate_dims(dims)
    total = 1
    for d in dims:
        total *= d
    if not 0 <= index < total:
        raise ValueError(f"index {index} outside grid of {total} nodes")
    out = []
    for d in reversed(dims):
        out.append(index % d)
        index //= d
    return tuple(reversed(out))


def coordinate_iter(dims: Sequence[int]) -> Iterator[Coordinate]:
    """Iterate all coordinates in linear-index order."""
    dims = validate_dims(dims)
    # product() yields row-major order (last dimension fastest) — the
    # same sequence as from_index(0..total), without re-deriving each
    # coordinate from its index.
    return iter(product(*(range(d) for d in dims)))


def manhattan_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Sum of per-dimension offsets — the mesh hop distance."""
    if len(a) != len(b):
        raise ValueError("coordinates of different arity")
    return sum(abs(x - y) for x, y in zip(a, b))


def chebyshev_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Maximum per-dimension offset."""
    if len(a) != len(b):
        raise ValueError("coordinates of different arity")
    return max(abs(x - y) for x, y in zip(a, b))


def add(coord: Sequence[int], delta: Sequence[int]) -> Coordinate:
    """Component-wise sum (no bounds check)."""
    if len(coord) != len(delta):
        raise ValueError("coordinates of different arity")
    return tuple(c + d for c, d in zip(coord, delta))
