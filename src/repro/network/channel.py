"""Physical channels.

A :class:`Channel` is a unidirectional link between two adjacent
routers.  Following the paper's simulator, each channel is a server
with a *single FIFO queue*: a worm's header requests the channel and
waits in that queue while it is busy ("Each channel has a single queue
where messages are held while awaiting transmission").

:class:`ChannelTiming` carries the paper's timing constants: the
per-flit transmission time ``β = 0.003 µs`` and an optional per-hop
router (routing-decision) delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.coordinates import Coordinate
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["ChannelTiming", "Channel"]


@dataclass(frozen=True)
class ChannelTiming:
    """Per-channel timing constants (times in µs, as in the paper).

    Parameters
    ----------
    flit_time:
        Time to transmit one flit on a channel (the paper's ``β``).
    router_delay:
        Extra per-hop latency for the routing decision; the paper folds
        this into the flit time, so it defaults to 0.
    """

    flit_time: float = 0.003
    router_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.flit_time <= 0:
            raise ValueError(f"flit_time must be positive, got {self.flit_time}")
        if self.router_delay < 0:
            raise ValueError(f"router_delay must be >= 0, got {self.router_delay}")

    @property
    def header_hop_time(self) -> float:
        """Time for the header flit to advance one hop."""
        return self.flit_time + self.router_delay

    def body_time(self, length_flits: int) -> float:
        """Pipeline time for the body after the header arrives.

        With wormhole pipelining the remaining ``L - 1`` flits stream
        behind the header at one flit per ``β``.
        """
        if length_flits < 1:
            raise ValueError("length_flits must be >= 1")
        return (length_flits - 1) * self.flit_time


class Channel:
    """A unidirectional physical channel ``src → dst``.

    The embedded :class:`~repro.sim.resources.Resource` (capacity 1)
    realises the single-queue channel of the paper's model.
    """

    __slots__ = ("src", "dst", "resource", "timing", "faulty")

    def __init__(
        self,
        env: "Environment",
        src: Coordinate,
        dst: Coordinate,
        timing: ChannelTiming,
    ):
        self.src = src
        self.dst = dst
        self.timing = timing
        self.faulty = False
        # No name label: formatting one per channel dominates network
        # construction on large meshes, and reprs carry src/dst anyway.
        self.resource = Resource(env, capacity=1)

    @property
    def busy(self) -> bool:
        """True while a worm occupies the channel."""
        return self.resource.count > 0

    @property
    def queue_length(self) -> int:
        """Worms waiting for this channel."""
        return self.resource.queue_length

    @property
    def load_metric(self) -> int:
        """Occupancy + queue — the congestion signal adaptive routing reads."""
        return self.resource.count + self.resource.queue_length

    def utilisation(self) -> float:
        """Fraction of simulated time the channel was busy."""
        return self.resource.utilisation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAULTY" if self.faulty else ("busy" if self.busy else "idle")
        return f"<Channel {self.src}->{self.dst} {state} q={self.queue_length}>"
