"""k-ary n-cube (torus) topology.

The paper's conclusion names the k-ary n-cube as the natural next
topology for these broadcast algorithms; this module provides it so the
extension experiments can run on it.  A torus is a mesh with wraparound
channels in every dimension.
"""

from __future__ import annotations

from typing import List

from repro.network.coordinates import Coordinate, validate_coordinate
from repro.network.topology import Topology

__all__ = ["Torus"]


class Torus(Topology):
    """The k-ary n-cube: a mesh with wraparound links.

    Parameters
    ----------
    dims:
        Radix per dimension.  A radix-2 dimension would create a double
        channel between the same pair of nodes; the duplicate is
        suppressed (neighbour sets are deduplicated), matching the usual
        definition where a 2-ary torus dimension equals a mesh dimension.

    Examples
    --------
    >>> t = Torus((4, 4))
    >>> t.distance((0, 0), (3, 3))
    2
    """

    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        coord = validate_coordinate(coord, self.dims)
        out: List[Coordinate] = []
        seen = set()
        for axis, (c, d) in enumerate(zip(coord, self.dims)):
            if d == 1:
                continue
            for delta in (-1, +1):
                v = coord[:axis] + ((c + delta) % d,) + coord[axis + 1 :]
                if v not in seen and v != coord:
                    seen.add(v)
                    out.append(v)
        return out

    def distance(self, u: Coordinate, v: Coordinate) -> int:
        u = validate_coordinate(u, self.dims)
        v = validate_coordinate(v, self.dims)
        total = 0
        for a, b, d in zip(u, v, self.dims):
            offset = abs(a - b)
            total += min(offset, d - offset)
        return total

    def ring(self, coord: Coordinate, axis: int) -> List[Coordinate]:
        """All nodes on the wraparound ring through ``coord`` along ``axis``."""
        coord = validate_coordinate(coord, self.dims)
        return [
            coord[:axis] + (v,) + coord[axis + 1 :] for v in range(self.dims[axis])
        ]
