"""Simulation events.

An :class:`Event` is the unit of synchronisation between processes and
the :class:`~repro.sim.engine.Environment`.  Events move through three
states:

``pending``
    created but not yet triggered;
``triggered``
    given a value (or an exception) and scheduled on the event heap;
``processed``
    callbacks have run and waiting processes resumed.

The design follows the classic process-oriented kernel structure (CSIM,
simpy): processes ``yield`` events, and the kernel resumes them when the
event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Interrupt", "ConditionEvent", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single-shot synchronisation point.

    Parameters
    ----------
    env:
        The owning environment.

    Notes
    -----
    ``callbacks`` is a list of callables invoked (with the event) when the
    event is processed.  Once processed the list is replaced by ``None``
    so late registration is an error surfaced early.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._triggered: bool = False
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is Event._PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits, the environment raises it at
        ``run()`` time instead of silently dropping it (unless the event
        was explicitly :meth:`defused <defuse>`).
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- waiting --------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately to preserve semantics for
            # late joiners (e.g. waiting on a finished process).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "ConditionEvent":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "ConditionEvent":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)


class ConditionEvent(Event):
    """Base for composite events over a set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if any(e.env is not env for e in self.events):
            raise ValueError("all events must belong to the same environment")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.processed or e.triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have triggered (fails fast)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(ConditionEvent):
    """Triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed({event: event._value})
