"""Simulation events.

An :class:`Event` is the unit of synchronisation between processes and
the :class:`~repro.sim.engine.Environment`.  Events move through three
states:

``pending``
    created but not yet triggered;
``triggered``
    given a value (or an exception) and scheduled on the event heap;
``processed``
    callbacks have run and waiting processes resumed.

The design follows the classic process-oriented kernel structure (CSIM,
simpy): processes ``yield`` events, and the kernel resumes them when the
event is processed.

Fast-path notes
---------------
The kernel's hot loop bypasses much of this machinery — see
``docs/performance.md``:

* ``env.hold(delay)`` resumes the active process straight off the heap
  with no :class:`Event` object at all;
* :class:`Timeout` objects are pooled and reused by the environment;
* an uncontended :class:`~repro.sim.resources.Request` carries a
  reserved heap sequence number (``_fast_eid``) instead of a scheduled
  grant event, letting the waiting process resume without a heap
  round-trip while preserving the exact ``(time, priority, order)``
  semantics of the slow path.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Interrupt", "ConditionEvent", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single-shot synchronisation point.

    Parameters
    ----------
    env:
        The owning environment.

    Notes
    -----
    ``callbacks`` is a list of callables invoked (with the event) when the
    event is processed.  Once processed the list is replaced by ``None``
    so late registration is an error surfaced early.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    _PENDING = object()

    #: Reserved heap order of a fast-granted resource request; ``None``
    #: for every other event (class default read through the slot-less
    #: fallback; :class:`~repro.sim.resources.Request` overrides it).
    _fast_eid: Optional[int] = None

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._triggered: bool = False
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is Event._PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        env = self.env
        heappush(env._heap, (env._now, 1, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits, the environment raises it at
        ``run()`` time instead of silently dropping it (unless the event
        was explicitly :meth:`defused <defuse>`).
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._triggered = True
        env = self.env
        heappush(env._heap, (env._now, 1, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- waiting --------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately to preserve semantics for
            # late joiners (e.g. waiting on a finished process).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "ConditionEvent":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "ConditionEvent":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units.

    Instances are pooled: when the kernel's run loop finishes processing
    a :class:`Timeout` that nothing else references, the object is
    recycled and handed out again by :meth:`Environment.timeout
    <repro.sim.engine.Environment.timeout>`.  The pool is invisible to
    well-behaved code — an object is only reused once its previous life
    is fully over and unreferenced.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._triggered = True
        self._defused = False
        self.delay = delay
        heappush(env._heap, (env._now + delay, 1, next(env._eid), self))

    def _reuse(self, delay: float, value: Any) -> None:
        """Re-arm a pooled instance (kernel internal)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        self._defused = False
        env = self.env
        heappush(env._heap, (env._now + delay, 1, next(env._eid), self))


class ConditionEvent(Event):
    """Base for composite events over a set of sub-events.

    The result mapping is pre-built in declaration order at
    construction time and filled in as sub-events trigger, so firing
    never re-walks ``self.events``.
    """

    __slots__ = ("events", "_count", "_total", "_values")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if any(e.env is not env for e in self.events):
            raise ValueError("all events must belong to the same environment")
        self._prepare()
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _prepare(self) -> None:
        """Subclass hook run before any ``_check`` callback can fire."""

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have triggered (fails fast)."""

    __slots__ = ()

    def _prepare(self) -> None:
        # Seed the result dict with every sub-event so values land in
        # declaration order regardless of trigger order; AnyOf's result
        # is a single-entry dict, so only AllOf pays for this.
        self._total = len(self.events)
        self._values = dict.fromkeys(self.events)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._values[event] = event._value
        self._count += 1
        if self._count == self._total:
            self.succeed(self._values)


class AnyOf(ConditionEvent):
    """Triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed({event: event._value})
