"""Structure-of-arrays sweep for batches of independent broadcasts.

The paper's headline experiments are grids of thousands of *independent*
single-source broadcasts, each run on a fresh idle network.  Their
event-driven executions never interact, so — as with the hop-batched
wormhole walk of PR 3, but one level up — the interleaving collapses:
every worm's begin / injection / per-hop header / delivery / completion
times are a pure function of its own schedule and of the completions of
the sends launched before it from the same node.  This module exploits
that by replacing per-source event heaps with flat numpy arrays and
advancing *all* sources one synchronised launch wave at a time.

Exactness contract
------------------
The sweep replicates the event-driven kernel's float arithmetic
operation for operation:

* per-hop header times are **accumulated** (``t = t + hop_time``), never
  computed closed-form — the same left-fold of IEEE additions the
  per-hop and hop-batched walks perform;
* a delivery's arrival is ``header_t + body`` (one addition), recorded
  at the *first* visit of the node, exactly like the walk's
  ``remaining.discard`` bookkeeping;
* a worm's completion is ``max(walk_end, last_arrival)`` — the two
  floats the DES clock actually takes its maximum over;
* injection-port turnaround uses the min-heap recurrence that is
  provably equivalent to the FIFO port Resource when all of a node's
  sends are launched at its single arrival time (they are: the
  event-driven executor launches a node's sends back-to-back inside one
  delivery hook).

Eligibility and fallback
------------------------
A schedule batches only when the sweep can *prove* the event-driven run
would never wait and would record arrivals in nondecreasing order:

* every send carries a pre-built path (adaptive waypoint sends resolve
  routing against live channel load — inherently event-driven);
* delivery sets are disjoint across sends and cover exactly the
  schedule's non-source nodes (the exactly-once delivery invariant);
* every sending node is itself delivered to (local causality);
* each worm's walk ends no later than its first delivery's arrival
  (``hops_remaining < length_flits - 1``), so delivery hooks fire at
  their arrival times and the global arrival order is by value;
* no two worms of the same source occupy a directed channel in
  overlapping (or even touching) logical intervals — checked *after*
  the sweep against the predicted occupancy windows
  ``[claim_time, completion]``; a conflict (which would make the DES
  block) invalidates the whole source.

Anything that fails these checks is reported through the ``ok`` mask of
:class:`BatchSweepResult` and must be re-run per-source on the
event-driven engine (see :mod:`repro.core.batch_broadcast`), mirroring
the batched-walk guard of :mod:`repro.network.wormhole`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BatchPlan", "BatchSweepResult", "plan_broadcast", "sweep_broadcasts"]


@dataclass
class BatchPlan:
    """One broadcast schedule flattened into index space.

    Built by :func:`plan_broadcast`; consumed by
    :func:`sweep_broadcasts`.  All arrays are structure-of-arrays views
    of the schedule: worms are stored launcher-major (a *launcher* is a
    sending node) in launch order, deliveries and channels hang off
    each worm as CSR slices.
    """

    algorithm: str
    source: Tuple[int, ...]
    source_idx: int
    n_nodes: int
    total_sends: int
    #: node index of each launcher (first-launch order; includes source)
    launcher_nodes: np.ndarray
    #: CSR pointer: worms of launcher ``l`` are ``launcher_ptr[l]`` to
    #: ``launcher_ptr[l+1]`` (worm ids are launcher-major, so the slice
    #: is contiguous and ordered by launch order)
    launcher_ptr: np.ndarray
    worm_hops: np.ndarray
    worm_first_delivery_hop: np.ndarray
    #: CSR deliveries per worm: hop offset + delivered node index, in
    #: path (= header-time) order
    deliv_ptr: np.ndarray
    deliv_hop: np.ndarray
    deliv_node: np.ndarray
    #: CSR directed channels per worm, hop order; channel ``h`` is
    #: claimed at the worm's ``times[h]`` and held to its completion
    chan_ptr: np.ndarray
    #: channel key ``u_idx * n_nodes + v_idx``
    chan_key: np.ndarray
    #: delivered node indices (== every covered node except the source)
    delivered_nodes: np.ndarray
    #: same order as ``delivered_nodes``, as coordinate tuples
    delivered_coords: List[Tuple[int, ...]]


@dataclass
class BatchSweepResult:
    """Everything the sweep learned about a batch of plans.

    ``node_time[k, i]`` is the full-message arrival time of node ``i``
    under plan ``k`` (NaN where not delivered); ``ok[k]`` is false when
    plan ``k`` violated an eligibility condition the sweep could only
    check dynamically (channel-occupancy conflict, unreachable
    launcher, walk outrunning its first delivery) and must be re-run
    event-driven.
    """

    node_time: np.ndarray
    ok: np.ndarray


def plan_broadcast(
    schedule, node_index: Dict[Tuple[int, ...], int], n_nodes: int
) -> Optional[BatchPlan]:
    """Flatten one schedule into a :class:`BatchPlan`, or ``None``.

    ``None`` means the schedule is statically ineligible for the batch
    sweep (waypoint sends, overlapping or incomplete delivery sets, a
    sender that is never delivered to) and the source must run on the
    event-driven engine.
    """
    template = schedule.sends_by_node()
    if not template:
        return None  # degenerate: nothing to send, nothing to measure
    source = tuple(schedule.source)
    covered = schedule.covered_nodes()

    launcher_nodes: List[int] = []
    launcher_ptr: List[int] = [0]
    worm_hops: List[int] = []
    worm_first: List[int] = []
    deliv_ptr: List[int] = [0]
    deliv_hop: List[int] = []
    deliv_node: List[int] = []
    chan_ptr: List[int] = [0]
    chan_key: List[int] = []
    delivered: Dict[Tuple[int, ...], int] = {}

    for sender, sends in template.items():
        launcher_nodes.append(node_index[tuple(sender)])
        for _step, send in sends:
            path = send.path
            if path is None:
                return None  # adaptive waypoint send: event-driven only
            nodes = path.nodes
            remaining = set(send.deliveries)
            first_hop = -1
            for hop, node in enumerate(nodes):
                if node in remaining:
                    remaining.discard(node)
                    if node in delivered:
                        return None  # delivered twice: hook order unclear
                    delivered[tuple(node)] = node_index[node]
                    deliv_hop.append(hop)
                    deliv_node.append(node_index[node])
                    if first_hop < 0:
                        first_hop = hop
            if remaining or first_hop < 0:
                return None  # path misses a declared delivery
            deliv_ptr.append(len(deliv_hop))
            previous = nodes[0]
            for node in nodes[1:]:
                chan_key.append(
                    node_index[previous] * n_nodes + node_index[node]
                )
                previous = node
            chan_ptr.append(len(chan_key))
            worm_hops.append(path.hop_count)
            worm_first.append(first_hop)
        launcher_ptr.append(len(worm_hops))

    if source in delivered:
        return None  # the source must never be an arrival
    if set(delivered) != {tuple(n) for n in covered} - {source}:
        return None  # arrivals would not cover exactly covered-1 nodes
    for sender in template:
        if tuple(sender) != source and tuple(sender) not in delivered:
            return None  # launcher unreachable: the DES would stall

    return BatchPlan(
        algorithm=schedule.algorithm,
        source=source,
        source_idx=node_index[source],
        n_nodes=n_nodes,
        total_sends=schedule.total_sends(),
        launcher_nodes=np.asarray(launcher_nodes, dtype=np.int64),
        launcher_ptr=np.asarray(launcher_ptr, dtype=np.int64),
        worm_hops=np.asarray(worm_hops, dtype=np.int64),
        worm_first_delivery_hop=np.asarray(worm_first, dtype=np.int64),
        deliv_ptr=np.asarray(deliv_ptr, dtype=np.int64),
        deliv_hop=np.asarray(deliv_hop, dtype=np.int64),
        deliv_node=np.asarray(deliv_node, dtype=np.int64),
        chan_ptr=np.asarray(chan_ptr, dtype=np.int64),
        chan_key=np.asarray(chan_key, dtype=np.int64),
        delivered_nodes=np.asarray(
            sorted(delivered.values()), dtype=np.int64
        ),
        delivered_coords=[
            coord
            for coord, _ in sorted(delivered.items(), key=lambda kv: kv[1])
        ],
    )


def _csr_gather(start: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Flat indices of the CSR slices ``start[i] : start[i]+count[i]``."""
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(count)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - count, count)
        + np.repeat(start, count)
    )


def sweep_broadcasts(
    plans: Sequence[BatchPlan],
    *,
    startup: float,
    hop_time: float,
    body: float,
    length_flits: int,
    ports: int,
) -> BatchSweepResult:
    """Advance every plan one synchronised launch wave at a time.

    All state lives in flat arrays indexed by a *global* launcher /
    worm / node id (plan ``k``'s node ``i`` is ``k * n_nodes + i``).
    Each round launches the next pending send of every active launcher
    at once: begin times come from the per-launcher sorted port rows,
    header times accumulate hop by hop across a ``(wave, max_hops)``
    matrix, and the deliveries of the wave activate the next wave's
    launchers.  Rounds are bounded by the schedule's launch depth times
    its per-node send count — a few dozen — while each round's work is
    a handful of numpy sweeps over every in-flight worm.
    """
    K = len(plans)
    if K == 0:
        return BatchSweepResult(
            node_time=np.empty((0, 0)), ok=np.empty(0, dtype=bool)
        )
    n_nodes = plans[0].n_nodes

    l_counts = np.asarray([p.launcher_nodes.size for p in plans])
    l_off = np.concatenate(([0], np.cumsum(l_counts)))
    w_counts = np.asarray([p.worm_hops.size for p in plans])
    w_off = np.concatenate(([0], np.cumsum(w_counts)))
    n_launchers = int(l_off[-1])

    launcher_gnode = np.concatenate(
        [p.launcher_nodes + k * n_nodes for k, p in enumerate(plans)]
    )
    launcher_worm_start = np.concatenate(
        [p.launcher_ptr[:-1] + w_off[k] for k, p in enumerate(plans)]
    )
    launcher_sends = np.concatenate(
        [np.diff(p.launcher_ptr) for p in plans]
    )
    worm_hops = np.concatenate([p.worm_hops for p in plans])
    worm_first = np.concatenate(
        [p.worm_first_delivery_hop for p in plans]
    )
    worm_plan = np.repeat(np.arange(K), w_counts)
    deliv_ptr_parts = [p.deliv_ptr for p in plans]
    d_off = np.concatenate(
        ([0], np.cumsum([p.deliv_hop.size for p in plans]))
    )
    deliv_start = np.concatenate(
        [part[:-1] + d_off[k] for k, part in enumerate(deliv_ptr_parts)]
    )
    deliv_count = np.concatenate([np.diff(part) for part in deliv_ptr_parts])
    deliv_hop = np.concatenate([p.deliv_hop for p in plans])
    deliv_gnode = np.concatenate(
        [p.deliv_node + k * n_nodes for k, p in enumerate(plans)]
    )
    chan_ptr_parts = [p.chan_ptr for p in plans]
    c_off = np.concatenate(
        ([0], np.cumsum([p.chan_key.size for p in plans]))
    )
    chan_start = np.concatenate(
        [part[:-1] + c_off[k] for k, part in enumerate(chan_ptr_parts)]
    )
    chan_count = np.concatenate([np.diff(part) for part in chan_ptr_parts])
    chan_gkey = np.concatenate(
        [p.chan_key + k * n_nodes * n_nodes for k, p in enumerate(plans)]
    )

    ok = np.ones(K, dtype=bool)
    # Static wave-eligibility: the walk must end no later than the first
    # delivery's arrival so delivery hooks fire at their arrival times
    # (integer comparison — one full flit of slack makes float
    # accumulation error irrelevant by nine orders of magnitude).
    bad_worms = ~(
        (worm_hops == worm_first)
        | (worm_hops - worm_first < length_flits - 1)
    )
    if bad_worms.any():
        ok[np.unique(worm_plan[bad_worms])] = False

    node_to_launcher = np.full(K * n_nodes, -1, dtype=np.int64)
    node_to_launcher[launcher_gnode] = np.arange(n_launchers)

    arrival = np.full(n_launchers, np.nan)
    port_rows = np.zeros((n_launchers, ports))
    next_ptr = np.zeros(n_launchers, dtype=np.int64)
    node_time = np.full(K * n_nodes, np.nan)

    source_launchers = node_to_launcher[
        np.asarray(
            [k * n_nodes + p.source_idx for k, p in enumerate(plans)],
            dtype=np.int64,
        )
    ]
    # plan_broadcast guarantees the source launches at least one send,
    # so every source owns a launcher row; broadcasts begin at t = 0.
    arrival[source_launchers] = 0.0

    occ_key: List[np.ndarray] = []
    occ_begin: List[np.ndarray] = []
    occ_end: List[np.ndarray] = []

    while True:
        ready = np.flatnonzero(
            ~np.isnan(arrival) & (next_ptr < launcher_sends)
        )
        if ready.size == 0:
            break
        w = launcher_worm_start[ready] + next_ptr[ready]
        nw = w.size
        # Port begin: rows are kept sorted and every entry is >= the
        # launcher's arrival, so the min (column 0) is the heap pop.
        begin = port_rows[ready, 0]
        injected = begin + startup
        hops = worm_hops[w]
        max_hops = int(hops.max())
        times = np.empty((nw, max_hops + 1))
        times[:, 0] = injected
        for h in range(max_hops):
            # The exact left-fold of the per-hop walk: an elementwise
            # IEEE add per hop, never a closed-form hops * hop_time.
            times[:, h + 1] = times[:, h] + hop_time
        rows_idx = np.arange(nw)
        walk_end = times[rows_idx, hops]

        dstart = deliv_start[w]
        dcount = deliv_count[w]
        drow = np.repeat(rows_idx, dcount)
        dflat = _csr_gather(dstart, dcount)
        arrival_t = times[drow, deliv_hop[dflat]] + body
        node_time[deliv_gnode[dflat]] = arrival_t
        last_arrival = arrival_t[np.cumsum(dcount) - 1]
        completed = np.maximum(walk_end, last_arrival)

        cstart = chan_start[w]
        ccount = chan_count[w]
        if ccount.any():
            crow = np.repeat(rows_idx, ccount)
            cpos = (
                np.arange(int(ccount.sum()), dtype=np.int64)
                - np.repeat(np.cumsum(ccount) - ccount, ccount)
            )
            occ_key.append(chan_gkey[_csr_gather(cstart, ccount)])
            occ_begin.append(times[crow, cpos])
            occ_end.append(completed[crow])

        # Heap push: drop the popped column 0, insert the completion,
        # restore sorted order.
        port_rows[ready] = np.sort(
            np.concatenate(
                (port_rows[ready, 1:], completed[:, None]), axis=1
            ),
            axis=1,
        )
        next_ptr[ready] += 1

        # Activate the launchers this wave delivered to: their sends
        # launch at the delivery hook, i.e. at the arrival time.
        lid = node_to_launcher[deliv_gnode[dflat]]
        mask = lid >= 0
        if mask.any():
            arrival[lid[mask]] = arrival_t[mask]
            port_rows[lid[mask]] = arrival_t[mask, None]

    # A launcher that still has pending sends was never delivered to
    # (a cycle unreachable from the source): the event-driven run would
    # deadlock differently than we predicted — hand the source back.
    stalled = next_ptr < launcher_sends
    if stalled.any():
        plan_of_launcher = np.repeat(np.arange(K), l_counts)
        ok[np.unique(plan_of_launcher[stalled])] = False

    # Channel-occupancy conflicts: any same-source directed channel
    # whose predicted windows overlap — or merely touch, where DES
    # event order between release and claim is ambiguous — invalidates
    # its source.  No conflict ⟹ (by induction on the first deviation)
    # the event-driven run never waits and reproduces the prediction.
    if occ_key:
        keys = np.concatenate(occ_key)
        begins = np.concatenate(occ_begin)
        ends = np.concatenate(occ_end)
        order = np.lexsort((begins, keys))
        keys = keys[order]
        begins = begins[order]
        ends = ends[order]
        same = keys[1:] == keys[:-1]
        clash = same & (begins[1:] <= ends[:-1])
        if clash.any():
            bad = np.unique(keys[1:][clash] // (n_nodes * n_nodes))
            ok[bad] = False

    return BatchSweepResult(
        node_time=node_time.reshape(K, n_nodes), ok=ok
    )
