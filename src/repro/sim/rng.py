"""Named, independently seeded random-number streams.

Simulation studies need *repeatable* randomness, and independent
subsystems (traffic generation, source selection, routing tie-breaks)
must not perturb each other's streams when one of them draws more or
fewer numbers.  :class:`RandomStreams` derives one
:class:`numpy.random.Generator` per named stream from a single master
seed using ``SeedSequence.spawn``-style key derivation, so

* the same master seed always reproduces the same experiment, and
* adding draws to one stream never changes another stream's sequence.

Streams can additionally be *namespaced*: ``streams.namespaced("shard3")``
returns a view whose stream names are transparently prefixed with
``"shard3/"``, giving a whole family of substreams that is a pure
function of ``(master seed, namespace)`` and statistically independent
of every other namespace (and of the root namespace).  Sharded
simulation units use one namespace per shard, so shard ``k`` draws the
same numbers no matter which worker — or how many sibling shards —
exist.  The empty namespace is the root: a namespaced view with
``prefix == ""`` is draw-for-draw identical to the plain streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["RandomStreams"]

#: Derived bit-generator states keyed by (master entropy, stream name);
#: see ``RandomStreams.__getitem__``.
_STATE_MEMO: Dict = {}
_STATE_MEMO_MAX = 4096


class RandomStreams:
    """A registry of named RNG streams derived from one master seed.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws entropy from the OS (not
        reproducible; experiments always pass an explicit seed).

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams["traffic"].integers(0, 100)
    >>> b = RandomStreams(seed=42)["traffic"].integers(0, 100)
    >>> a == b
    True
    """

    def __init__(self, seed: Optional[int] = 0, namespace: str = ""):
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self.namespace = namespace
        self._streams: Dict[str, np.random.Generator] = {}

    def namespaced(self, prefix: str) -> "RandomStreams":
        """A view of the same master seed under ``<prefix>/`` names.

        ``streams.namespaced("shard3")["traffic"]`` is exactly
        ``streams["shard3/traffic"]`` — an independent stream that is a
        pure function of ``(seed, "shard3/traffic")``.  Views do not
        share generator instances with the parent, so draws through a
        view never perturb the parent's streams.
        """
        if not prefix:
            return RandomStreams(self.seed, namespace=self.namespace)
        return RandomStreams(
            self.seed, namespace=f"{self.namespace}{prefix}/"
        )

    def __getitem__(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        name = self.namespace + name
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the master seed and the stream
            # name, so stream identity is stable across runs regardless
            # of creation order.  The derived bit-generator state is a
            # pure function of (entropy, name); memoising it spares the
            # SeedSequence expansion for the hundreds of identically
            # named per-node streams a sweep's simulations re-create.
            memo_key = (self._root.entropy, name) if self.seed is not None else None
            state = _STATE_MEMO.get(memo_key) if memo_key else None
            if state is None:
                key = [b for b in name.encode("utf-8")]
                child = np.random.SeedSequence(
                    entropy=self._root.entropy, spawn_key=tuple(key)
                )
                bit_gen = np.random.PCG64(child)
                if memo_key:
                    if len(_STATE_MEMO) >= _STATE_MEMO_MAX:
                        _STATE_MEMO.clear()
                    _STATE_MEMO[memo_key] = bit_gen.state
            else:
                bit_gen = np.random.PCG64()
                bit_gen.state = state
            gen = np.random.Generator(bit_gen)
            self._streams[name] = gen
        return gen

    def stream(self, name: str) -> np.random.Generator:
        """Alias for ``streams[name]``."""
        return self[name]

    def names(self) -> Iterable[str]:
        """Names of the streams created so far."""
        return tuple(self._streams)

    def exponential(self, name: str, rate: float) -> float:
        """One draw from Exp(rate) on stream ``name`` (mean ``1/rate``)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return float(self[name].exponential(1.0 / rate))

    def choice_index(self, name: str, n: int) -> int:
        """Uniform integer in ``[0, n)`` on stream ``name``."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return int(self[name].integers(0, n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
