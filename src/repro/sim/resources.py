"""Capacity-limited resources and stores.

The paper models every physical channel as a server with a single FIFO
queue ("Each channel has a single queue where messages are held while
awaiting transmission").  :class:`Resource` reproduces that behaviour:
``request()`` returns an event that triggers when a slot is granted, in
strict FIFO order.  :class:`PriorityResource` additionally orders waiters
by a priority key, and :class:`Store` is a FIFO buffer of items (used
for node inboxes).

Fast-path notes
---------------
Granting is synchronous in *state* in every kernel mode — ``request()``
on a free resource updates ``users``/``grants`` immediately; only the
waiter's resumption used to round-trip the event heap.  With the fast
path, an uncontended grant skips that round-trip: the request carries a
reserved heap insertion order (``_fast_eid``) and the process trampoline
resumes directly when no other event could interleave, or replays the
exact heap schedule when one could.  ``try_acquire()`` goes further for
the hop-batched wormhole walk: it claims a free slot with no event at
all, back-dating the utilisation bookkeeping to the logical acquisition
time.  Contended grants (from ``release()``) always travel through the
heap — that is what keeps FIFO hand-off interleaving exact.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Resource", "Request", "PriorityResource", "Store"]

#: Process-wide ticket counter shared by every resource (see
#: ``Resource.__init__``).
_TICKETS = count()


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with channel.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    __slots__ = ("resource", "priority", "_order", "_fast_eid", "_queued_at")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        # Inlined Event.__init__ — one request per channel per hop makes
        # this one of the hottest constructors in the simulator.
        self.env = resource.env
        self.callbacks = []
        self._value = Event._PENDING
        self._ok = True
        self._triggered = False
        self._defused = False
        self.resource = resource
        self.priority = priority
        self._order = next(resource._ticket)
        self._fast_eid: Optional[int] = None

    def add_callback(self, callback) -> None:
        """Register ``callback``, materialising a deferred fast grant.

        A fast-granted request holds a reserved heap slot instead of a
        scheduled event; any consumer other than the owning process's
        trampoline (e.g. an ``AllOf``) flushes it onto the heap first so
        the callback fires with the exact slow-path ordering.
        """
        fast_eid = self._fast_eid
        if fast_eid is not None:
            self._fast_eid = None
            env = self.env
            heapq.heappush(env._heap, (env._now, 1, fast_eid, self))
        Event.add_callback(self, callback)

    def consume_inline(self) -> bool:
        """Consume a fast grant without yielding, when provably exact.

        Returns True when the request is granted *and* resuming now is
        indistinguishable from yielding it — either it is already
        processed, or it holds a reserved fast-grant slot and no other
        event is pending at this instant (the same check the process
        trampoline applies on yield, hoisted into the caller so hot
        loops can skip the generator round-trip entirely)::

            req = resource.request()
            if not req.consume_inline():
                yield req

        Returns False for queued grants and interleaved instants; the
        caller must yield as usual.
        """
        if self.callbacks is None:
            return True
        fast_eid = self._fast_eid
        if fast_eid is not None:
            env = self.env
            heap = env._heap
            if not heap or heap[0][0] > env._now:
                self._fast_eid = None
                self.callbacks = None
                return True
        return False

    def cancel(self) -> None:
        """Withdraw the request (release if granted, dequeue if waiting)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()


class Resource:
    """A server pool with ``capacity`` slots and a FIFO wait queue.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous holders (physical channels use 1).
    name:
        Optional label for diagnostics.
    """

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # Shared ticket stream: only the relative order of tickets on
        # one resource matters (FIFO/priority tie-breaks), which a
        # global counter preserves while sparing every channel its own
        # iterator allocation.
        self._ticket = _TICKETS
        # Cumulative statistics for utilisation reporting.
        self._busy_time = 0.0
        self._last_change = env._now
        self._grants = 0

    # -- introspection ------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self.queue)

    @property
    def grants(self) -> int:
        """Total number of requests ever granted."""
        return self._grants

    def utilisation(self, now: Optional[float] = None) -> float:
        """Fraction of time at least one slot was busy, up to ``now``."""
        now = self.env.now if now is None else now
        busy = self._busy_time
        if self.users:
            busy += now - self._last_change
        return busy / now if now > 0 else 0.0

    def _mark(self, now: Optional[float] = None) -> None:
        if now is None:
            now = self.env._now
        if self.users:
            self._busy_time += now - self._last_change
        self._last_change = now

    # -- operations ---------------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self.queue:
            if self.env._fastpath:
                # Immediate grant: the slot is taken synchronously (as
                # always) but no grant event goes on the heap — the
                # request reserves its insertion order instead, and the
                # waiting process resumes without a heap round-trip
                # unless another same-instant event must interleave.
                self._mark()
                self.users.append(req)
                self._grants += 1
                req._value = self
                req._triggered = True
                req._fast_eid = next(self.env._eid)
            else:
                self._grant(req)
        else:
            self._enqueue(req)
        return req

    def try_acquire(self, at: Optional[float] = None) -> Optional[Request]:
        """Claim a free slot immediately, with no event at all.

        Returns a granted :class:`Request` (release it as usual), or
        ``None`` when the resource is busy or has waiters.  ``at``
        back-dates the utilisation bookkeeping to the logical
        acquisition time — the hop-batched wormhole walk acquires
        channels ahead of the clock under a no-interleaving guard, so
        the statistics must record the time the header *would* have
        claimed the channel.
        """
        if self.queue or len(self.users) >= self.capacity:
            return None
        req = Request(self, 0.0)
        self._mark(at)
        self.users.append(req)
        self._grants += 1
        req._value = self
        req._triggered = True
        req.callbacks = None  # never scheduled: processed on arrival
        return req

    def claim(self, token: Any, at: Optional[float] = None) -> bool:
        """Like :meth:`try_acquire`, but the caller brings its own token.

        The hop-batched wormhole walk holds many channels per worm; an
        opaque reusable token in ``users`` (released with the usual
        :meth:`release`) spares one :class:`Request` per hop.  Plain
        FIFO resources never order by ticket, so skipping it is
        unobservable.  Returns True when the slot was claimed.
        """
        if self.queue or len(self.users) >= self.capacity:
            return False
        self._mark(at)
        self.users.append(token)
        self._grants += 1
        return True

    def release(self, request: Request) -> None:
        """Return a granted slot (or withdraw a waiting request)."""
        if request in self.users:
            self._mark()
            self.users.remove(request)
            self._dispatch()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass  # Already released / never queued: release is idempotent.

    # -- internals ------------------------------------------------------------
    def _enqueue(self, req: Request) -> None:
        req._queued_at = self.env._now
        self.queue.append(req)

    def _next_waiter(self) -> Optional[Request]:
        return self.queue.popleft() if self.queue else None

    def _grant(self, req: Request) -> None:
        self._mark()
        self.users.append(req)
        self._grants += 1
        # Profile the wait of requests that had to queue (the slot is
        # unset — and the counters untouched — for immediate grants).
        queued_at = getattr(req, "_queued_at", None)
        if queued_at is not None:
            profile = self.env._profile
            profile.channel_waits += 1
            profile.channel_wait_s += self.env._now - queued_at
        req.succeed(self)

    def _dispatch(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._next_waiter()
            if nxt is None:
                break
            self._grant(nxt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} {self.count}/{self.capacity} busy,"
            f" {self.queue_length} queued>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served by priority.

    Lower ``priority`` values are served first; ties break FIFO.
    """

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._pqueue: List[tuple] = []

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def try_acquire(self, at: Optional[float] = None) -> Optional[Request]:
        if self._pqueue:
            return None
        return super().try_acquire(at)

    def claim(self, token: Any, at: Optional[float] = None) -> bool:
        if self._pqueue:
            return False
        return super().claim(token, at)

    def _enqueue(self, req: Request) -> None:
        req._queued_at = self.env._now
        heapq.heappush(self._pqueue, (req.priority, req._order, req))

    def _next_waiter(self) -> Optional[Request]:
        if not self._pqueue:
            return None
        return heapq.heappop(self._pqueue)[2]

    def release(self, request: Request) -> None:
        if request in self.users:
            super().release(request)
        else:
            self._pqueue = [e for e in self._pqueue if e[2] is not request]
            heapq.heapify(self._pqueue)


class Store:
    """An unbounded (or bounded) FIFO buffer of items.

    ``put`` never blocks unless a ``capacity`` is given; ``get`` returns
    an event that triggers with the oldest item once one is available.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event triggers once stored."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(item)
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove and return (via the event's value) the oldest item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed(item)
            self._serve_getters()
