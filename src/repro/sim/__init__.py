"""Process-oriented discrete-event simulation kernel.

This subpackage is the reproduction's substitute for the CSIM-18 /
MultiSim stack the paper built its simulator on.  It provides the same
process-oriented abstraction: active entities are *processes* (Python
generators driven by the :class:`Environment`), time advances through an
event heap, and contention points are modelled with FIFO
:class:`Resource` objects (the paper's "each channel has a single queue
where messages are held while awaiting transmission").

Public API
----------
Environment
    The simulation kernel: clock, event heap, process scheduler.
Event, Timeout, Process, AllOf, AnyOf
    Awaitable simulation events.
Resource, Request
    Capacity-limited FIFO resource (used for network channels).
Store
    FIFO message store (used for node inboxes).
RandomStreams
    Named, independently seeded RNG streams for reproducibility.
Monitor
    Time-series recorder for simulation statistics.
"""

from repro.sim.engine import Environment, SimulationError
from repro.sim.event import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import PriorityResource, Request, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Monitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
