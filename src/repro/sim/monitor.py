"""Time-series recording for simulation statistics.

:class:`Monitor` records ``(time, value)`` observations and offers the
summary statistics the paper reports: mean, standard deviation,
coefficient of variation, and time-weighted averages (for quantities
like queue length that persist between observations).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Monitor"]


class Monitor:
    """Record observations and summarise them.

    Parameters
    ----------
    name:
        Label used in reports.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    # -- recording ----------------------------------------------------------
    def record(self, time: float, value: float) -> None:
        """Append one observation taken at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"observations must be time-ordered ({time} < {self._times[-1]})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def clear(self) -> None:
        """Discard all observations."""
        self._times.clear()
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)

    # -- access ---------------------------------------------------------------
    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self._times), np.asarray(self._values)

    def since(self, t0: float) -> "Monitor":
        """A new monitor holding only observations with ``time >= t0``."""
        out = Monitor(self.name)
        for t, v in zip(self._times, self._values):
            if t >= t0:
                out.record(t, v)
        return out

    # -- statistics -------------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of the observed values."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.mean(self._values))

    def std(self, ddof: int = 0) -> float:
        """Standard deviation of the observed values."""
        if len(self._values) <= ddof:
            raise ValueError("not enough observations for std")
        return float(np.std(self._values, ddof=ddof))

    def coefficient_of_variation(self) -> float:
        """``std / mean`` — the paper's node-level parallelism metric."""
        m = self.mean()
        if m == 0:
            return 0.0 if self.std() == 0 else math.inf
        return self.std() / abs(m)

    def minimum(self) -> float:
        if not self._values:
            raise ValueError("no observations")
        return min(self._values)

    def maximum(self) -> float:
        if not self._values:
            raise ValueError("no observations")
        return max(self._values)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, treating values as piecewise-constant.

        Each value is weighted by the duration until the next
        observation (or ``until`` for the last one).
        """
        if not self._values:
            raise ValueError("no observations")
        t = list(self._times)
        end = t[-1] if until is None else float(until)
        if end < t[-1]:
            raise ValueError("until precedes the last observation")
        total = 0.0
        weight = 0.0
        for i, v in enumerate(self._values):
            t1 = t[i + 1] if i + 1 < len(t) else end
            dt = t1 - t[i]
            total += v * dt
            weight += dt
        if weight == 0:
            return float(np.mean(self._values))
        return total / weight

    def rate(self) -> float:
        """Observations per unit time over the observed span."""
        if len(self._times) < 2:
            raise ValueError("need at least two observations for a rate")
        span = self._times[-1] - self._times[0]
        if span == 0:
            return math.inf
        return (len(self._times) - 1) / span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Monitor {self.name!r} n={len(self)}>"
