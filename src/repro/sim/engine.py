"""The simulation kernel.

:class:`Environment` owns the simulation clock and the event heap and
drives process execution.  The structure mirrors CSIM's scheduler (the
engine the paper's MultiSim simulator runs on): events are processed in
``(time, priority, insertion order)`` order, so simultaneous events are
deterministic — essential for reproducible experiments.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, Optional

from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError"]

#: Default event priority.  Lower values are processed first among
#: events scheduled for the same time.
NORMAL = 1
#: Priority used for urgent bookkeeping events (process resumption).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(3.0)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    3.0
    >>> p.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the heap (kernel internal)."""
        heapq.heappush(self._heap, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the next event on the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _prio, _eid, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError("event processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error instead of
            # silently continuing with a corrupted simulation.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event heap is exhausted;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed, returning its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                break
            self.step()
        else:
            if stop_time != float("inf"):
                self._now = stop_time

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) finished before the event triggered"
                )
            if not stop_event.ok:
                stop_event.defuse()
                raise stop_event.value  # type: ignore[misc]
            return stop_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now} pending={len(self._heap)}>"
