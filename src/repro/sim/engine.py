"""The simulation kernel.

:class:`Environment` owns the simulation clock and the event heap and
drives process execution.  The structure mirrors CSIM's scheduler (the
engine the paper's MultiSim simulator runs on): events are processed in
``(time, priority, insertion order)`` order, so simultaneous events are
deterministic — essential for reproducible experiments.

Fast paths
----------
The run loop is allocation-free for the model's hot operations:

* :meth:`Environment.hold` / :meth:`Environment.hold_until` suspend the
  active process on its reusable hold marker — no ``Timeout`` object,
  no callback list, no event bookkeeping;
* :meth:`Environment.timeout` recycles ``Timeout`` objects from a pool
  once the loop proves (by reference count) that nothing else can
  observe them;
* the :meth:`run` loop pops and dispatches heap entries inline — no
  per-event ``peek()``/``step()`` calls, no property lookups.

All fast paths preserve the exact ``(time, priority, insertion order)``
event semantics of the straightforward kernel; pass ``fastpath=False``
to force the reference behaviour (used by the golden-trace equivalence
tests).  See ``docs/performance.md`` for the invariants.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from sys import getrefcount
from typing import Any, Dict, Generator, Iterable, Optional

from repro.obs.simprof import SimProfile
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import HOLD, Process, _HoldEntry

__all__ = ["Environment", "SimulationError"]

#: Default event priority.  Lower values are processed first among
#: events scheduled for the same time.
NORMAL = 1
#: Priority used for urgent bookkeeping events (process resumption).
URGENT = 0

#: Upper bound on pooled ``Timeout`` objects per environment.
_TIMEOUT_POOL_MAX = 256


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    fastpath:
        Enable the zero-allocation kernel fast paths (default).  The
        observable event order is identical either way; ``False`` exists
        for the equivalence tests that prove exactly that.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(3.0)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    3.0
    >>> p.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0, fastpath: bool = True):
        self._now = float(initial_time)
        self._heap: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._fastpath = bool(fastpath)
        self._timeout_pool: list = []
        # Always-on kernel counters (observers only — nothing in the
        # kernel reads them back, so they cannot perturb event order).
        self._profile = SimProfile()

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def fastpath(self) -> bool:
        """Whether the zero-allocation fast paths are enabled."""
        return self._fastpath

    def profile(self) -> Dict[str, Any]:
        """Snapshot of the kernel profiling counters.

        Events dispatched by category (holds / timeouts / other),
        heap high-water mark, timeout-pool hit rate, channel wait
        time and the wormhole batched-vs-fallback ratio; see
        :class:`~repro.obs.simprof.SimProfile` for the field list.
        """
        return self._profile.as_dict()

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        pool = self._timeout_pool
        if pool:
            self._profile.timeout_pool_hits += 1
            timeout = pool.pop()
            timeout._reuse(delay, value)
            return timeout
        self._profile.timeout_pool_misses += 1
        return Timeout(self, delay, value)

    def hold(self, delay: float):
        """Suspend the active process for ``delay`` — the fast timeout.

        Semantically identical to ``yield env.timeout(delay)`` from
        inside a process (same heap time arithmetic, same priority, one
        insertion-order ticket) but allocation-free: the process's
        reusable hold marker goes on the heap and the run loop resumes
        the generator directly.  The returned sentinel must be yielded
        immediately.  Outside a process (or with ``fastpath=False``) it
        degrades to a regular :class:`Timeout`.
        """
        process = self._active_process
        if process is None or not self._fastpath:
            return self.timeout(delay)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        hold = process._hold
        hold.eid = eid = next(self._eid)
        hold.active = True
        heappush(self._heap, (self._now + delay, NORMAL, eid, hold))
        return HOLD

    def hold_until(self, when: float):
        """Suspend the active process until the absolute time ``when``.

        Unlike ``hold(when - now)`` this schedules the exact ``when``
        value with no float round-trip — the primitive the hop-batched
        wormhole walk uses to land on iteratively accumulated per-hop
        times bit-for-bit.
        """
        if when < self._now:
            raise ValueError(f"hold_until({when}) is in the past (now={self._now})")
        process = self._active_process
        if process is None or not self._fastpath:
            return self.timeout(when - self._now)
        hold = process._hold
        hold.eid = eid = next(self._eid)
        hold.active = True
        heappush(self._heap, (when, NORMAL, eid, hold))
        return HOLD

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the heap (kernel internal)."""
        heappush(self._heap, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the next event on the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        prof = self._profile
        if len(self._heap) > prof.heap_peak:
            prof.heap_peak = len(self._heap)
        when, _prio, eid, event = heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        if event.__class__ is _HoldEntry:
            prof.holds += 1
            if event.active and event.eid == eid:
                event.active = False
                event.process._advance(False, None)
            return  # else: stale marker of an interrupted hold
        if event.__class__ is Timeout:
            prof.timeouts += 1
        else:
            prof.events += 1
        if not event._triggered:  # pragma: no cover - defensive
            return  # stale entry of a process that was preempted
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError("event processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error instead of
            # silently continuing with a corrupted simulation.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event heap is exhausted;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed, returning its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # Inlined event loop: one heap pop per event, hold markers and
        # timeout recycling handled in place.  Mirrors step() exactly.
        heap = self._heap
        pool = self._timeout_pool
        pooling = self._fastpath
        prof = self._profile
        bounded = stop_time != float("inf")
        # Profile counters live in locals for the duration of the loop
        # (STORE_FAST, not STORE_ATTR on a slotted object) and are
        # folded back once on exit; the heap high-water mark is sampled
        # on every 64th event id, which keeps the hot loop at one cheap
        # int test per dispatch.  See SimProfile for the accuracy
        # contract this buys.
        holds = timeouts = others = 0
        peak = prof.heap_peak
        try:
            while heap:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if bounded and heap[0][0] > stop_time:
                    self._now = stop_time
                    break
                when, _prio, eid, event = heappop(heap)
                if not eid & 63:
                    size = len(heap)
                    if size >= peak:
                        peak = size + 1  # include the entry just popped
                if when < self._now:  # pragma: no cover - defensive
                    raise SimulationError("event scheduled in the past")
                self._now = when
                if event.__class__ is _HoldEntry:
                    holds += 1
                    if event.active and event.eid == eid:
                        event.active = False
                        event.process._advance(False, None)
                    continue
                if not event._triggered:  # pragma: no cover - defensive
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks is None:  # pragma: no cover - defensive
                    raise SimulationError("event processed twice")
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event.__class__ is Timeout:
                    timeouts += 1
                    if (
                        pooling
                        and getrefcount(event) == 2  # only this loop sees it
                        and len(pool) < _TIMEOUT_POOL_MAX
                    ):
                        pool.append(event)
                else:
                    others += 1
            else:
                if bounded:
                    self._now = stop_time
        finally:
            prof.holds += holds
            prof.timeouts += timeouts
            prof.events += others
            prof.heap_peak = peak

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) finished before the event triggered"
                )
            if not stop_event.ok:
                stop_event.defuse()
                raise stop_event.value  # type: ignore[misc]
            return stop_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now} pending={len(self._heap)}>"
