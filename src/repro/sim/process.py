"""Processes: generators driven by the simulation kernel.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
events; when a yielded event is processed the kernel resumes the
generator with the event's value (or throws the event's exception into
it).  A process is itself an :class:`~repro.sim.event.Event` that
triggers when the generator finishes, so processes can be joined
(``yield other_process``) or composed with ``AllOf``/``AnyOf``.

Fast-path notes
---------------
Two kernel-internal shortcuts live here (see ``docs/performance.md``):

* ``yield env.hold(delay)`` suspends the process on a reusable
  :class:`_HoldEntry` marker instead of a fresh ``Timeout`` event — the
  run loop resumes the generator directly when the marker pops;
* resuming is a *trampoline*: when a yielded event is already
  processed (or is an uncontended resource grant whose resumption is
  provably unobservable), the generator is advanced in a loop rather
  than by recursive callbacks, so arbitrarily long chains of immediate
  completions cannot overflow the Python stack.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.event import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Process"]

#: Sentinel yielded by :meth:`Environment.hold`; the trampoline treats
#: it as "already scheduled, nothing to wait on".
HOLD = object()


class _HoldEntry:
    """Reusable heap marker for a process suspended in ``hold()``.

    One marker exists per process and is pushed (never copied) for the
    process start event and every subsequent hold.  ``eid`` — the heap
    insertion-order ticket of the *latest* arming — guards against
    stale pops: an interrupt deactivates the marker and a later hold
    re-arms it under a fresh ticket, so an old heap entry (whose
    ticket can never match, even if its deadline coincides) is
    silently skipped — exactly like the detached ``Timeout`` it
    replaces.
    """

    __slots__ = ("process", "eid", "active")

    def __init__(self, process: "Process"):
        self.process = process
        self.eid = -1
        self.active = False


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator to execute.  Each yielded value must be an
        :class:`Event` of the same environment (or the marker returned
        by ``env.hold()``).
    """

    __slots__ = ("_generator", "_target", "_hold")

    def __init__(self, env: "Environment", generator: Generator):
        if getattr(generator, "throw", None) is None or getattr(
            generator, "send", None
        ) is None:
            raise TypeError(f"{generator!r} is not a generator")
        # Inlined Event.__init__ — one process per worm makes this hot.
        self.env = env
        self.callbacks = []
        self._value = Event._PENDING
        self._ok = True
        self._triggered = False
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick off the process at the current simulation time.  The
        # reusable hold marker doubles as the start event: it pops at
        # (now, URGENT, eid) and sends None into the fresh generator —
        # the same resumption the seed kernel's init Event produced.
        hold = self._hold = _HoldEntry(self)
        hold.eid = eid = next(env._eid)
        hold.active = True
        heappush(env._heap, (env._now, 0, eid, hold))

    @property
    def name(self) -> str:
        """Diagnostic label (the generator's function name)."""
        generator = self._generator
        return getattr(generator, "__name__", type(generator).__name__)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: raise :class:`Interrupt` inside it.

        The process must be alive and not currently executing.  The
        interrupt is delivered as an urgent event, pre-empting whatever
        the process was waiting on.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already finished")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event.add_callback(self._resume)
        self.env._schedule(event, priority=0)

    # -- kernel internals -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._triggered:
            # The process already finished (e.g. interrupted after its
            # target triggered but before delivery).  Nothing to do.
            return
        if self._target is not None and event is not self._target:
            # An interrupt arrived while waiting on another event: detach
            # from that event so its later processing does not resume us.
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        elif self._target is None and self._hold.active:
            # An interrupt arrived while suspended in hold(): deactivate
            # the marker so its pending heap entry pops as a no-op.
            self._hold.active = False
        self._target = None
        if event._ok:
            self._advance(False, event._value)
        else:
            event.defuse()
            self._advance(True, event._value)

    def _advance(self, throw: bool, value: Any) -> None:
        """Trampoline: drive the generator over synchronous completions."""
        env = self.env
        generator = self._generator
        send = generator.send
        heap = env._heap
        while True:
            env._active_process = self
            try:
                if throw:
                    result = generator.throw(value)
                else:
                    result = send(value)
            except StopIteration as stop:
                env._active_process = None
                self._hold.active = False  # neutralise an unyielded hold
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self._hold.active = False
                self.fail(exc)
                return
            env._active_process = None

            if result is HOLD:
                # env.hold() already pushed our marker; just suspend.
                if not self._hold.active:  # pragma: no cover - defensive
                    self._no_hold_pending()
                    return
                return
            if not isinstance(result, Event):
                generator.close()
                self.fail(TypeError(f"process yielded a non-event: {result!r}"))
                return
            if self._hold.active:
                generator.close()
                self.fail(
                    RuntimeError(
                        "hold() was called but its marker was not yielded"
                    )
                )
                return
            if result.env is not env:
                generator.close()
                self.fail(
                    ValueError("yielded event belongs to a different environment")
                )
                return

            callbacks = result.callbacks
            if callbacks is None:
                # Already processed — resume synchronously (the seed
                # kernel's add_callback did the same, recursively).
                if result._ok:
                    throw, value = False, result._value
                else:
                    result.defuse()
                    throw, value = True, result._value
                continue

            fast_eid = result._fast_eid
            if fast_eid is not None:
                # Uncontended resource grant that skipped the heap.
                result._fast_eid = None
                if not heap or heap[0][0] > env._now:
                    # No other event can interleave before the grant
                    # would have popped: resume directly (unobservable
                    # shortcut, grants always succeed).
                    result.callbacks = None
                    throw, value = False, result._value
                    continue
                # Something else is pending at this instant: replay the
                # exact slow path by scheduling the grant under its
                # reserved insertion order.
                heappush(heap, (env._now, 1, fast_eid, result))

            callbacks.append(self._resume)
            self._target = result
            return

    def _no_hold_pending(self) -> None:  # pragma: no cover - defensive
        self._generator.close()
        self.fail(RuntimeError("yielded a hold marker without calling hold()"))
