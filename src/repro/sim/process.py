"""Processes: generators driven by the simulation kernel.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
events; when a yielded event is processed the kernel resumes the
generator with the event's value (or throws the event's exception into
it).  A process is itself an :class:`~repro.sim.event.Event` that
triggers when the generator finishes, so processes can be joined
(``yield other_process``) or composed with ``AllOf``/``AnyOf``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.event import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator to execute.  Each yielded value must be an
        :class:`Event` of the same environment.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = getattr(generator, "__name__", type(generator).__name__)
        # Kick off the process at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init._triggered = True
        init.add_callback(self._resume)
        env._schedule(init, priority=0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: raise :class:`Interrupt` inside it.

        The process must be alive and not currently executing.  The
        interrupt is delivered as an urgent event, pre-empting whatever
        the process was waiting on.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already finished")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event.add_callback(self._resume)
        self.env._schedule(event, priority=0)

    # -- kernel internals -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._triggered:
            # The process already finished (e.g. interrupted after its
            # target triggered but before delivery).  Nothing to do.
            return
        if self._target is not None and event is not self._target:
            # An interrupt arrived while waiting on another event: detach
            # from that event so its later processing does not resume us.
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None
        self.env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event.defuse()
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(result, Event):
            self._generator.close()
            self.fail(TypeError(f"process yielded a non-event: {result!r}"))
            return
        if result.env is not self.env:
            self._generator.close()
            self.fail(ValueError("yielded event belongs to a different environment"))
            return
        self._target = result
        result.add_callback(self._resume)
