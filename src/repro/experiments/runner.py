"""Experiment dispatch.

``run_experiment(id, scale)`` regenerates any of the paper's tables or
figures (or one of our ablations) and returns ``(rows, rendered_text)``.
Every experiment is a *campaign* — a declarative grid of independent
simulation units — so all of them accept ``workers`` (process pool),
``store`` (any resumable :class:`~repro.campaigns.store.CampaignStore`
backend), ``schedule`` (fifo/adaptive dispatch order) and ``cache``
(prior stores to reuse overlapping results from); see
:mod:`repro.campaigns`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.pool import ProgressFn
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore
from repro.experiments.common import run_units
from repro.experiments.ablations import (
    length_ablation_campaign,
    maxdest_ablation_campaign,
    ports_ablation_campaign,
    startup_ablation_campaign,
)
from repro.experiments.fig1 import fig1_campaign, format_fig1
from repro.experiments.fig2 import fig2_campaign, format_fig2
from repro.experiments.reporting import format_table
from repro.experiments.tables_cv import cv_table_campaign, format_cv_table
from repro.experiments.traffic_sweep import format_traffic_sweep, traffic_campaign

__all__ = [
    "CAMPAIGNS",
    "EXPERIMENTS",
    "FORMATTERS",
    "campaign_for",
    "run_experiment",
]

CampaignBuilder = Callable[..., CampaignSpec]

#: Experiment id → campaign builder (scale, seed, shards=1) ->
#: CampaignSpec.  ``shards`` (an int or ``"auto"``) reaches every
#: grid: traffic points embed it as protocol (``auto`` resolves from
#: the fitted cost model at declaration), broadcast grids switch to
#: sliceable cell-level units whose actual fan-out the pool picks at
#: dispatch time.
CAMPAIGNS: Dict[str, CampaignBuilder] = {
    "fig1": lambda scale, seed, shards=1: fig1_campaign(
        scale, seed, shards
    ),
    "fig2": lambda scale, seed, shards=1: fig2_campaign(
        scale, seed, shards=shards
    ),
    "table1": lambda scale, seed, shards=1: cv_table_campaign(
        "DB", scale, seed, shards
    ),
    "table2": lambda scale, seed, shards=1: cv_table_campaign(
        "AB", scale, seed, shards
    ),
    "fig3": lambda scale, seed, shards=1: traffic_campaign(
        "fig3", scale, seed, shards=shards
    ),
    "fig4": lambda scale, seed, shards=1: traffic_campaign(
        "fig4", scale, seed, shards=shards
    ),
    "ablation-startup": lambda scale, seed, shards=1: (
        startup_ablation_campaign(scale, seed, shards=shards)
    ),
    "ablation-length": lambda scale, seed, shards=1: (
        length_ablation_campaign(scale, seed, shards=shards)
    ),
    "ablation-maxdest": lambda scale, seed, shards=1: (
        maxdest_ablation_campaign(scale, seed, shards=shards)
    ),
    "ablation-ports": lambda scale, seed, shards=1: (
        ports_ablation_campaign(scale, seed, shards=shards)
    ),
}

#: Experiment id → row formatter.
FORMATTERS: Dict[str, Callable[[List[Any]], str]] = {
    "fig1": format_fig1,
    "fig2": format_fig2,
    "table1": format_cv_table,
    "table2": format_cv_table,
    "fig3": format_traffic_sweep,
    "fig4": format_traffic_sweep,
    "ablation-startup": format_table,
    "ablation-length": format_table,
    "ablation-maxdest": format_table,
    "ablation-ports": format_table,
}

#: Experiment id → one-line description.  Ids match DESIGN.md's
#: experiment index; ``repro list`` prints this table.
EXPERIMENTS: Dict[str, str] = {
    "fig1": "broadcast latency vs network size (Fig. 1)",
    "fig2": "CV of arrival times vs network size (Fig. 2)",
    "table1": "DB improvement over RD/EDN (Table 1)",
    "table2": "AB improvement over RD/EDN (Table 2)",
    "fig3": "latency vs load, 8x8x8 mixed traffic (Fig. 3)",
    "fig4": "latency vs load, 16x16x8 mixed traffic (Fig. 4)",
    "ablation-startup": "start-up latency ablation (Ts = 0.15 vs 1.5 us)",
    "ablation-length": "message-length ablation (32-2048 flits)",
    "ablation-maxdest": "AB per-path destination-limit ablation",
    "ablation-ports": "port-count ablation (1-3 ports per node)",
}


def campaign_for(
    experiment_id: str,
    scale: str = "quick",
    seed: int = 0,
    shards: int | str = 1,
) -> CampaignSpec:
    """Declare (without running) an experiment's campaign.

    ``shards`` splits each heavy traffic point into that many
    mergeable sub-units (``"auto"`` resolves per point from the fitted
    cost model) and declares broadcast grids as sliceable cell-level
    units; ``1`` is the original per-replication protocol everywhere.
    """
    experiment_id = experiment_id.lower()
    try:
        builder = CAMPAIGNS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r};"
            f" choose from {sorted(CAMPAIGNS)}"
        ) from None
    return builder(scale, seed, shards=shards)


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    seed: int = 0,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    schedule: str = "fifo",
    cache: Sequence[CampaignStore] = (),
    shards: int | str = 1,
    spec: Optional[CampaignSpec] = None,
    trace_dir: Optional[Any] = None,
    retries: int = 2,
    max_failures: Optional[int] = None,
    engine: Optional[str] = None,
) -> Tuple[List[Any], str]:
    """Regenerate one table/figure; returns (rows, rendered text).

    ``spec`` lets a caller that already declared the campaign (e.g.
    the CLI, which needs it for store naming and advisories) pass it
    through instead of rebuilding the grid.  ``trace_dir`` spools
    span/event traces of the run there (see :mod:`repro.obs.trace`).
    ``retries``/``max_failures`` set the failure budget (see
    :func:`repro.campaigns.run_campaign`): failing units retry with
    backoff, quarantine on exhaustion, and drop out of the rendered
    rows with a warning rather than aborting the run.
    """
    experiment_id = experiment_id.lower()
    if spec is None:
        spec = campaign_for(experiment_id, scale, seed, shards=shards)
    rows = run_units(
        experiment_id,
        spec,
        workers=workers,
        store=store,
        schedule=schedule,
        cache=cache,
        shards=shards,
        progress=progress,
        trace_dir=trace_dir,
        retries=retries,
        max_failures=max_failures,
        engine=engine,
    )
    return rows, FORMATTERS[experiment_id](rows)
