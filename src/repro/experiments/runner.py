"""Experiment dispatch.

``run_experiment(id, scale)`` regenerates any of the paper's tables or
figures (or one of our ablations) and returns ``(rows, rendered_text)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.experiments.ablations import (
    run_max_destinations_ablation,
    run_message_length_ablation,
    run_port_count_ablation,
    run_startup_latency_ablation,
)
from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.reporting import format_table
from repro.experiments.tables_cv import format_cv_table, run_cv_table
from repro.experiments.traffic_sweep import format_traffic_sweep, run_traffic_sweep

__all__ = ["EXPERIMENTS", "run_experiment"]


def _fig1(scale: str, seed: int):
    rows = run_fig1(scale, seed)
    return rows, format_fig1(rows)


def _fig2(scale: str, seed: int):
    rows = run_fig2(scale, seed)
    return rows, format_fig2(rows)


def _table1(scale: str, seed: int):
    rows = run_cv_table("DB", scale, seed)
    return rows, format_cv_table(rows)


def _table2(scale: str, seed: int):
    rows = run_cv_table("AB", scale, seed)
    return rows, format_cv_table(rows)


def _fig3(scale: str, seed: int):
    rows = run_traffic_sweep("fig3", scale, seed)
    return rows, format_traffic_sweep(rows)


def _fig4(scale: str, seed: int):
    rows = run_traffic_sweep("fig4", scale, seed)
    return rows, format_traffic_sweep(rows)


def _ablation(runner) -> Callable:
    def run(scale: str, seed: int):
        rows = runner(scale, seed)
        return rows, format_table(rows)

    return run


#: Experiment id → runner.  Ids match DESIGN.md's experiment index.
EXPERIMENTS: Dict[str, Callable[[str, int], Tuple[List[Any], str]]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "table1": _table1,
    "table2": _table2,
    "fig3": _fig3,
    "fig4": _fig4,
    "ablation-startup": _ablation(run_startup_latency_ablation),
    "ablation-length": _ablation(run_message_length_ablation),
    "ablation-maxdest": _ablation(run_max_destinations_ablation),
    "ablation-ports": _ablation(run_port_count_ablation),
}


def run_experiment(
    experiment_id: str, scale: str = "quick", seed: int = 0
) -> Tuple[List[Any], str]:
    """Regenerate one table/figure; returns (rows, rendered text)."""
    try:
        runner = EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r};"
            f" choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale, seed)
