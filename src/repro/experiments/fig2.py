"""Fig. 2 — coefficient of variation of arrival times vs network size.

The paper's node-level parallelism metric: ``CV = SD / Mnl`` of the
per-destination arrival latencies of a single-source broadcast,
averaged over random sources, on meshes of 64–1024 nodes
(4×4×4, 4×4×16, 8×8×8, 8×8×16), L=100 flits, Ts=1.5 µs.

Shape targets: AB's CV is the lowest and DB's beats EDN's; the
proposed coded-path algorithms keep arrival times far tighter than
the step-heavy RD/EDN (the paper's Tables quantify this as 34–117 %
improvements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.registry import algorithm_names
from repro.experiments.common import (
    random_sources,
    run_barrier_broadcasts,
    run_single_broadcasts,
)
from repro.experiments.config import FIG2_SIZES, ExperimentScale, scale_by_name

__all__ = ["Fig2Row", "run_fig2", "format_fig2"]

MESSAGE_LENGTH = 100  # flits, per the figure caption
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class Fig2Row:
    """(algorithm, size) → mean coefficient of variation."""

    algorithm: str
    dims: Tuple[int, int, int]
    num_nodes: int
    mean_cv: float
    std_cv: float
    mean_cv_barrier: float
    samples: int


def run_fig2(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    length_flits: int = MESSAGE_LENGTH,
) -> List[Fig2Row]:
    """Regenerate the Fig. 2 series."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    rows: List[Fig2Row] = []
    for dims in FIG2_SIZES:
        sources = random_sources(dims, scale.sources_per_point, seed)
        for name in algorithm_names():
            outcomes = run_single_broadcasts(
                name, dims, sources, length_flits, STARTUP_LATENCY
            )
            cvs = [o.coefficient_of_variation for o in outcomes]
            barrier = run_barrier_broadcasts(
                name, dims, sources, length_flits, STARTUP_LATENCY
            )
            barrier_cvs = [o.coefficient_of_variation for o in barrier]
            rows.append(
                Fig2Row(
                    algorithm=name,
                    dims=dims,
                    num_nodes=int(np.prod(dims)),
                    mean_cv=float(np.mean(cvs)),
                    std_cv=float(np.std(cvs)),
                    mean_cv_barrier=float(np.mean(barrier_cvs)),
                    samples=len(cvs),
                )
            )
    return rows


def format_fig2(rows: List[Fig2Row]) -> str:
    """Print the figure as series over network size."""
    sizes = sorted({r.num_nodes for r in rows})
    by_algo: Dict[str, Dict[int, float]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, {})[row.num_nodes] = row.mean_cv
    lines = [
        "Fig. 2 — coefficient of variation of arrival times vs network size",
        "algo   " + "".join(f"{s:>10d}" for s in sizes),
    ]
    for name in ("RD", "EDN", "AB", "DB"):  # the paper's legend order
        series = by_algo.get(name, {})
        lines.append(
            f"{name:<6s} "
            + "".join(f"{series.get(s, float('nan')):>10.4f}" for s in sizes)
        )
    return "\n".join(lines)
