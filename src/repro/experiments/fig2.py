"""Fig. 2 — coefficient of variation of arrival times vs network size.

The paper's node-level parallelism metric: ``CV = SD / Mnl`` of the
per-destination arrival latencies of a single-source broadcast,
averaged over random sources, on meshes of 64–1024 nodes
(4×4×4, 4×4×16, 8×8×8, 8×8×16), L=100 flits, Ts=1.5 µs.

Shape targets: AB's CV is the lowest and DB's beats EDN's; the
proposed coded-path algorithms keep arrival times far tighter than
the step-heavy RD/EDN (the paper's Tables quantify this as 34–117 %
improvements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore
from repro.core.registry import algorithm_names
from repro.experiments.common import broadcast_units, campaign, run_units
from repro.experiments.config import FIG2_SIZES, ExperimentScale

__all__ = ["Fig2Row", "fig2_campaign", "run_fig2", "format_fig2"]

MESSAGE_LENGTH = 100  # flits, per the figure caption
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class Fig2Row:
    """(algorithm, size) → mean coefficient of variation."""

    algorithm: str
    dims: Tuple[int, int, int]
    num_nodes: int
    mean_cv: float
    std_cv: float
    mean_cv_barrier: float
    samples: int


def fig2_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    length_flits: int = MESSAGE_LENGTH,
    shards: int | str = 1,
) -> CampaignSpec:
    """Declare the Fig. 2 unit grid (each unit measures both the
    event-driven and the barrier CV of one broadcast; sharded cells
    keep each source's event-driven/barrier pair in one slice)."""
    units = broadcast_units(
        "fig2",
        FIG2_SIZES,
        algorithm_names(),
        length_flits,
        scale,
        seed,
        barrier=True,
        startup_latency=STARTUP_LATENCY,
        shards=shards,
    )
    return campaign("fig2", units, scale, seed)


def run_fig2(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    length_flits: int = MESSAGE_LENGTH,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
    engine: Optional[str] = None,
) -> List[Fig2Row]:
    """Regenerate the Fig. 2 series (via the campaign engine)."""
    return run_units(
        "fig2",
        fig2_campaign(scale, seed, length_flits, shards),
        workers=workers,
        store=store,
        schedule=schedule,
        shards=shards,
        engine=engine,
    )


def format_fig2(rows: List[Fig2Row]) -> str:
    """Print the figure as series over network size."""
    sizes = sorted({r.num_nodes for r in rows})
    by_algo: Dict[str, Dict[int, float]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, {})[row.num_nodes] = row.mean_cv
    lines = [
        "Fig. 2 — coefficient of variation of arrival times vs network size",
        "algo   " + "".join(f"{s:>10d}" for s in sizes),
    ]
    for name in ("RD", "EDN", "AB", "DB"):  # the paper's legend order
        series = by_algo.get(name, {})
        lines.append(
            f"{name:<6s} "
            + "".join(f"{series.get(s, float('nan')):>10.4f}" for s in sizes)
        )
    return "\n".join(lines)
