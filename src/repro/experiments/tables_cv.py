"""Tables 1 & 2 — CV of the baselines and DB/AB improvement percentages.

The paper's table protocol: L = 64 flits, sizes 64–1024 nodes, values
averaged over at least 40 experiments; the improvement column is
``IMR% = (CV_baseline − CV_proposed) / CV_proposed · 100``.

Table 1 compares DB against RD and EDN; Table 2 compares AB.  The
measured tables are printed side by side with the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore
from repro.experiments.common import broadcast_units, campaign, run_units
from repro.experiments.config import FIG2_SIZES, ExperimentScale

__all__ = ["CVTableRow", "cv_table_campaign", "run_cv_table", "format_cv_table"]

MESSAGE_LENGTH = 64  # flits, per §3.2
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class CVTableRow:
    """One cell group of a table: baseline × size."""

    baseline: str
    proposed: str
    dims: Tuple[int, int, int]
    num_nodes: int
    baseline_cv: float
    proposed_cv: float
    improvement_percent: float
    barrier_baseline_cv: float
    barrier_proposed_cv: float
    barrier_improvement_percent: float
    paper_baseline_cv: Optional[float]
    paper_improvement_percent: Optional[float]


def _table_id(proposed: str) -> str:
    proposed = proposed.upper()
    if proposed not in ("DB", "AB"):
        raise ValueError(f"the paper's tables propose DB or AB, not {proposed!r}")
    return "table1" if proposed == "DB" else "table2"


def cv_table_campaign(
    proposed: str,
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    shards: int | str = 1,
) -> CampaignSpec:
    """Declare the unit grid of Table 1 (``"DB"``) or Table 2 (``"AB"``).

    One cell per (algorithm, size) with barrier twins; the aggregator
    pairs the proposed algorithm against both baselines.  ``shards``
    other than 1 declares the cells as sliceable cell units.
    """
    proposed = proposed.upper()
    experiment = _table_id(proposed)
    units = broadcast_units(
        experiment,
        FIG2_SIZES,
        ("RD", "EDN", proposed),
        MESSAGE_LENGTH,
        scale,
        seed,
        barrier=True,
        startup_latency=STARTUP_LATENCY,
        shards=shards,
    )
    return campaign(experiment, units, scale, seed)


def run_cv_table(
    proposed: str,
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[CVTableRow]:
    """Regenerate Table 1 (``proposed="DB"``) or Table 2 (``"AB"``)."""
    experiment = _table_id(proposed)
    return run_units(
        experiment,
        cv_table_campaign(proposed, scale, seed, shards),
        workers=workers,
        store=store,
        schedule=schedule,
        shards=shards,
    )


def format_cv_table(rows: List[CVTableRow]) -> str:
    """Side-by-side measured vs paper table."""
    if not rows:
        return "(empty table)"
    proposed = rows[0].proposed
    label = "DBIMR%" if proposed == "DB" else "ABIMR%"
    lines = [
        f"Table ({proposed}) — CV and improvement over RD/EDN, L={MESSAGE_LENGTH}"
        " flits",
        f"{'base':<5s}{'nodes':>7s}{'CV':>9s}{label:>9s}{'bCV':>9s}"
        f"{'b' + label:>9s}{'paper CV':>10s}{'paper ' + label:>13s}",
        "(CV: locally-causal event-driven; bCV: step-barrier semantics)",
    ]
    for row in sorted(rows, key=lambda r: (r.baseline, r.num_nodes)):
        paper_cv = (
            f"{row.paper_baseline_cv:.4f}" if row.paper_baseline_cv else "-"
        )
        paper_imr = (
            f"{row.paper_improvement_percent:.2f}"
            if row.paper_improvement_percent
            else "-"
        )
        lines.append(
            f"{row.baseline:<5s}{row.num_nodes:>7d}{row.baseline_cv:>9.4f}"
            f"{row.improvement_percent:>9.2f}{row.barrier_baseline_cv:>9.4f}"
            f"{row.barrier_improvement_percent:>9.2f}"
            f"{paper_cv:>10s}{paper_imr:>13s}"
        )
    return "\n".join(lines)
