"""Tables 1 & 2 — CV of the baselines and DB/AB improvement percentages.

The paper's table protocol: L = 64 flits, sizes 64–1024 nodes, values
averaged over at least 40 experiments; the improvement column is
``IMR% = (CV_baseline − CV_proposed) / CV_proposed · 100``.

Table 1 compares DB against RD and EDN; Table 2 compares AB.  The
measured tables are printed side by side with the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import (
    random_sources,
    run_barrier_broadcasts,
    run_single_broadcasts,
)
from repro.experiments.config import (
    FIG2_SIZES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    ExperimentScale,
    scale_by_name,
)
from repro.metrics.stats import improvement_percent

__all__ = ["CVTableRow", "run_cv_table", "format_cv_table"]

MESSAGE_LENGTH = 64  # flits, per §3.2
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class CVTableRow:
    """One cell group of a table: baseline × size."""

    baseline: str
    proposed: str
    dims: Tuple[int, int, int]
    num_nodes: int
    baseline_cv: float
    proposed_cv: float
    improvement_percent: float
    barrier_baseline_cv: float
    barrier_proposed_cv: float
    barrier_improvement_percent: float
    paper_baseline_cv: Optional[float]
    paper_improvement_percent: Optional[float]


def run_cv_table(
    proposed: str,
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
) -> List[CVTableRow]:
    """Regenerate Table 1 (``proposed="DB"``) or Table 2 (``"AB"``)."""
    proposed = proposed.upper()
    if proposed not in ("DB", "AB"):
        raise ValueError(f"the paper's tables propose DB or AB, not {proposed!r}")
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    paper = PAPER_TABLE1 if proposed == "DB" else PAPER_TABLE2

    rows: List[CVTableRow] = []
    for dims in FIG2_SIZES:
        nodes = int(np.prod(dims))
        sources = random_sources(dims, scale.sources_per_point, seed)
        cvs: Dict[str, float] = {}
        barrier_cvs: Dict[str, float] = {}
        for name in ("RD", "EDN", proposed):
            outcomes = run_single_broadcasts(
                name, dims, sources, MESSAGE_LENGTH, STARTUP_LATENCY
            )
            cvs[name] = float(
                np.mean([o.coefficient_of_variation for o in outcomes])
            )
            barrier = run_barrier_broadcasts(
                name, dims, sources, MESSAGE_LENGTH, STARTUP_LATENCY
            )
            barrier_cvs[name] = float(
                np.mean([o.coefficient_of_variation for o in barrier])
            )
        for baseline in ("RD", "EDN"):
            paper_cv, paper_imr = paper.get(baseline, {}).get(nodes, (None, None))
            rows.append(
                CVTableRow(
                    baseline=baseline,
                    proposed=proposed,
                    dims=dims,
                    num_nodes=nodes,
                    baseline_cv=cvs[baseline],
                    proposed_cv=cvs[proposed],
                    improvement_percent=improvement_percent(
                        cvs[baseline], cvs[proposed]
                    ),
                    barrier_baseline_cv=barrier_cvs[baseline],
                    barrier_proposed_cv=barrier_cvs[proposed],
                    barrier_improvement_percent=improvement_percent(
                        barrier_cvs[baseline], barrier_cvs[proposed]
                    ),
                    paper_baseline_cv=paper_cv,
                    paper_improvement_percent=paper_imr,
                )
            )
    return rows


def format_cv_table(rows: List[CVTableRow]) -> str:
    """Side-by-side measured vs paper table."""
    if not rows:
        return "(empty table)"
    proposed = rows[0].proposed
    label = "DBIMR%" if proposed == "DB" else "ABIMR%"
    lines = [
        f"Table ({proposed}) — CV and improvement over RD/EDN, L={MESSAGE_LENGTH}"
        " flits",
        f"{'base':<5s}{'nodes':>7s}{'CV':>9s}{label:>9s}{'bCV':>9s}"
        f"{'b' + label:>9s}{'paper CV':>10s}{'paper ' + label:>13s}",
        "(CV: locally-causal event-driven; bCV: step-barrier semantics)",
    ]
    for row in sorted(rows, key=lambda r: (r.baseline, r.num_nodes)):
        paper_cv = (
            f"{row.paper_baseline_cv:.4f}" if row.paper_baseline_cv else "-"
        )
        paper_imr = (
            f"{row.paper_improvement_percent:.2f}"
            if row.paper_improvement_percent
            else "-"
        )
        lines.append(
            f"{row.baseline:<5s}{row.num_nodes:>7d}{row.baseline_cv:>9.4f}"
            f"{row.improvement_percent:>9.2f}{row.barrier_baseline_cv:>9.4f}"
            f"{row.barrier_improvement_percent:>9.2f}"
            f"{paper_cv:>10s}{paper_imr:>13s}"
        )
    return "\n".join(lines)
