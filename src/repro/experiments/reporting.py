"""Plain-text result rendering shared by the CLI and examples."""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, List, Sequence

__all__ = ["format_table", "rows_to_dicts"]


def rows_to_dicts(rows: Sequence[Any]) -> List[dict]:
    """Convert dataclass result rows into plain dictionaries."""
    out = []
    for row in rows:
        if is_dataclass(row):
            out.append(asdict(row))
        elif isinstance(row, dict):
            out.append(dict(row))
        else:
            raise TypeError(f"cannot tabulate {type(row).__name__}")
    return out


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, tuple):
        return "x".join(str(v) for v in value)
    return str(value)


def format_table(rows: Sequence[Any], columns: Sequence[str] | None = None) -> str:
    """Render rows (dataclasses or dicts) as an aligned text table."""
    dicts = rows_to_dicts(rows)
    if not dicts:
        return "(no rows)"
    columns = list(columns) if columns else list(dicts[0].keys())
    table = [[_fmt(d.get(c, "")) for c in columns] for d in dicts]
    widths = [
        max(len(col), *(len(row[i]) for row in table))
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
