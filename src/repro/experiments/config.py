"""Experiment configuration: the paper's parameters, and our scales.

Paper constants (§3): start-up latency ``Ts ∈ {0.15, 1.5} µs``, flit
time ``β = 0.003 µs``, message lengths 32–2048 flits, ≥40 experiments
per point, 21 batches with the first discarded.

Load-axis calibration: the paper sweeps 0.005–0.05 messages/ms/node but
reports ms-scale latencies, which its own µs-scale timing constants
cannot produce — the axis units are internally inconsistent (see
EXPERIMENTS.md).  We keep the paper's *relative* sweep (a 10× range
ending past saturation) but calibrate the absolute values to our
simulator's saturation region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "ExperimentScale",
    "FIG1_SIZES",
    "FIG2_SIZES",
    "FIG3_DIMS",
    "FIG4_DIMS",
    "FIG3_LOADS",
    "FIG4_LOADS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_FIG1_SERIES",
    "scale_by_name",
]

#: Fig. 1 network sizes: 64, 512, 1000, 4096 nodes.
FIG1_SIZES: List[Tuple[int, int, int]] = [
    (4, 4, 4),
    (8, 8, 8),
    (10, 10, 10),
    (16, 16, 16),
]

#: Fig. 2 / Tables 1-2 sizes: 64, 256, 512, 1024 nodes (as labelled).
FIG2_SIZES: List[Tuple[int, int, int]] = [
    (4, 4, 4),
    (4, 4, 16),
    (8, 8, 8),
    (8, 8, 16),
]

FIG3_DIMS: Tuple[int, int, int] = (8, 8, 8)
FIG4_DIMS: Tuple[int, int, int] = (16, 16, 8)

#: Calibrated load sweeps (messages/ms/node); same 10x dynamic range as
#: the paper's 0.005-0.05 axis, positioned around our saturation knee.
FIG3_LOADS: List[float] = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0]
FIG4_LOADS: List[float] = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0]

#: Paper Table 1: CV of RD/EDN and DB's improvement (DBIMR%).
PAPER_TABLE1: Dict[str, Dict[int, Tuple[float, float]]] = {
    "RD": {64: (0.2540, 65.41), 256: (0.3661, 84.31),
           512: (0.4263, 92.54), 1024: (0.5160, 109.5)},
    "EDN": {64: (0.2064, 34.32), 256: (0.3164, 60.34),
            512: (0.3962, 83.33), 1024: (0.4761, 93.34)},
}

#: Paper Table 2: CV of RD/EDN and AB's improvement (ABIMR%).
PAPER_TABLE2: Dict[str, Dict[int, Tuple[float, float]]] = {
    "RD": {64: (0.2540, 73.844), 256: (0.3661, 92.87),
           512: (0.4263, 104.65), 1024: (0.5160, 116.81)},
    "EDN": {64: (0.2064, 41.27), 256: (0.3164, 66.70),
            512: (0.3962, 90.21), 1024: (0.4761, 100.1)},
}

#: Paper Fig. 1 series (communication latency, paper's ms axis), eyeballed
#: from the bar chart for shape comparison only.
PAPER_FIG1_SERIES: Dict[str, Dict[int, float]] = {
    "RD": {64: 1.4, 512: 3.1, 1000: 4.6, 4096: 7.2},
    "EDN": {64: 1.0, 512: 2.6, 1000: 3.9, 4096: 6.3},
    "DB": {64: 1.0, 512: 1.3, 1000: 1.5, 4096: 1.9},
    "AB": {64: 0.8, 512: 1.0, 1000: 1.2, 4096: 1.5},
}


@dataclass(frozen=True)
class ExperimentScale:
    """Sample sizes for one fidelity level.

    Parameters
    ----------
    sources_per_point:
        Random broadcast sources averaged per (size, algorithm) point
        (the paper: "at least 40 experiments").
    batch_size:
        Operations per batch in traffic sweeps.
    num_batches / discard:
        Batch-means protocol for traffic sweeps.
    max_sim_time_us:
        Safety cap per traffic point.
    """

    name: str
    sources_per_point: int
    batch_size: int
    num_batches: int
    discard: int
    max_sim_time_us: float


QUICK = ExperimentScale(
    name="quick",
    sources_per_point=5,
    batch_size=15,
    num_batches=5,
    discard=1,
    max_sim_time_us=30_000.0,
)

FULL = ExperimentScale(
    name="full",
    sources_per_point=40,
    batch_size=25,
    num_batches=21,
    discard=1,
    max_sim_time_us=2_000_000.0,
)

#: Minimal scale used by unit tests and pytest-benchmark rounds.
SMOKE = ExperimentScale(
    name="smoke",
    sources_per_point=2,
    batch_size=8,
    num_batches=3,
    discard=1,
    max_sim_time_us=20_000.0,
)

_SCALES = {s.name: s for s in (QUICK, FULL, SMOKE)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a fidelity level ("smoke", "quick", "full")."""
    try:
        return _SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
