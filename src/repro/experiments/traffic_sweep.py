"""Figs. 3 & 4 — communication latency under mixed traffic loads.

The §3.3 setting: every node generates Poisson traffic, 90 % unicast /
10 % broadcast, L = 32 flits, Ts = 1.5 µs; the mean communication
latency (batch means, 21 batches, first discarded) is plotted against
the per-node load.  Fig. 3 uses the 8×8×8 mesh, Fig. 4 the 16×16×8.

Shape targets: latency grows with load and saturates earliest for
RD/EDN; AB gives the best latency/throughput on 8×8×8, with its lead
over DB shrinking on the larger 16×16×8 mesh (AB's long third-step
paths load the bigger network).

Load-axis calibration: see `repro.experiments.config`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore
from repro.core.registry import algorithm_names
from repro.experiments.common import campaign, run_units, traffic_units
from repro.experiments.config import (
    FIG3_DIMS,
    FIG3_LOADS,
    FIG4_DIMS,
    FIG4_LOADS,
    ExperimentScale,
)

__all__ = [
    "TrafficSweepRow",
    "traffic_campaign",
    "run_traffic_sweep",
    "format_traffic_sweep",
]

MESSAGE_LENGTH = 32  # flits, per the figure captions
BROADCAST_FRACTION = 0.1


@dataclass(frozen=True)
class TrafficSweepRow:
    """One curve point: (algorithm, load) → mean latency."""

    algorithm: str
    dims: Tuple[int, int, int]
    load_messages_per_ms: float
    mean_latency_us: float
    unicast_mean_latency_us: Optional[float]
    broadcast_mean_latency_us: Optional[float]
    throughput_msgs_per_us: float
    operations: int
    saturated: bool


def traffic_campaign(
    figure: str = "fig3",
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    loads: Optional[List[float]] = None,
    algorithms: Optional[List[str]] = None,
    shards: int | str = 1,
) -> CampaignSpec:
    """Declare the algorithm × load unit grid of Fig. 3 or Fig. 4.

    ``shards=K`` declares every load point as K mergeable sub-unit
    replications (see :mod:`repro.campaigns.shards`), letting a worker
    fleet parallelise *inside* the heavy points instead of waiting on
    the slowest one.  ``shards="auto"`` picks each point's fan-out
    from the fitted cost model at declaration time (the shard count is
    measurement protocol, so it must be pinned before hashing; see
    :func:`repro.experiments.common.traffic_units`).
    """
    figure = figure.lower()
    if figure == "fig3":
        dims, default_loads = FIG3_DIMS, FIG3_LOADS
    elif figure == "fig4":
        dims, default_loads = FIG4_DIMS, FIG4_LOADS
    else:
        raise ValueError(f"figure must be 'fig3' or 'fig4', got {figure!r}")
    loads = loads if loads is not None else default_loads
    algorithms = algorithms if algorithms is not None else algorithm_names()
    units = traffic_units(
        figure,
        dims,
        algorithms,
        loads,
        MESSAGE_LENGTH,
        scale,
        seed,
        broadcast_fraction=BROADCAST_FRACTION,
        shards=shards,
    )
    return campaign(figure, units, scale, seed)


def run_traffic_sweep(
    figure: str = "fig3",
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    loads: Optional[List[float]] = None,
    algorithms: Optional[List[str]] = None,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[TrafficSweepRow]:
    """Regenerate the Fig. 3 (8×8×8) or Fig. 4 (16×16×8) curves."""
    spec = traffic_campaign(figure, scale, seed, loads, algorithms, shards)
    return run_units(
        figure.lower(), spec, workers=workers, store=store, schedule=schedule
    )


def format_traffic_sweep(rows: List[TrafficSweepRow]) -> str:
    """Print the latency-vs-load curves, one line per algorithm."""
    if not rows:
        return "(empty sweep)"
    dims = rows[0].dims
    loads = sorted({r.load_messages_per_ms for r in rows})
    by_algo: Dict[str, Dict[float, TrafficSweepRow]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, {})[row.load_messages_per_ms] = row
    lines = [
        f"Latency (µs) vs load (msgs/ms/node) on {'x'.join(map(str, dims))},"
        f" L={MESSAGE_LENGTH} flits, {BROADCAST_FRACTION:.0%} broadcast",
        "algo   " + "".join(f"{ld:>9.3g}" for ld in loads),
    ]
    for name in ("EDN", "AB", "RD", "DB"):  # the paper's legend order
        series = by_algo.get(name)
        if not series:
            continue
        cells = []
        for load in loads:
            row = series.get(load)
            if row is None:
                cells.append(f"{'-':>9s}")
            else:
                marker = "*" if row.saturated else ""
                cells.append(f"{row.mean_latency_us:>8.2f}{marker or ' '}")
        lines.append(f"{name:<6s} " + "".join(cells))
    lines.append("(* = run hit the simulated-time cap before finishing batches)")
    return "\n".join(lines)
