"""Experiment harness: one runner per table/figure of the paper.

Each experiment module exposes a ``run_*`` function returning plain
result rows plus a formatter producing the same table/series the paper
prints.  ``runner.run_experiment`` dispatches by experiment id
("fig1", "fig2", "table1", "table2", "fig3", "fig4", plus the
ablations); the CLI wraps it.

Every experiment supports two scales: ``quick`` (seconds-to-minutes,
for CI and benchmarks) and ``full`` (the paper's sample counts).
"""

from repro.experiments.config import (
    ExperimentScale,
    FIG1_SIZES,
    FIG2_SIZES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    scale_by_name,
)
from repro.experiments.fig1 import Fig1Row, fig1_campaign, run_fig1
from repro.experiments.fig2 import Fig2Row, fig2_campaign, run_fig2
from repro.experiments.tables_cv import (
    CVTableRow,
    cv_table_campaign,
    run_cv_table,
)
from repro.experiments.traffic_sweep import (
    TrafficSweepRow,
    run_traffic_sweep,
    traffic_campaign,
)
from repro.experiments.ablations import (
    run_message_length_ablation,
    run_max_destinations_ablation,
    run_port_count_ablation,
    run_startup_latency_ablation,
)
from repro.experiments.runner import (
    CAMPAIGNS,
    EXPERIMENTS,
    campaign_for,
    run_experiment,
)
from repro.experiments.reporting import format_table

__all__ = [
    "CAMPAIGNS",
    "CVTableRow",
    "EXPERIMENTS",
    "ExperimentScale",
    "FIG1_SIZES",
    "FIG2_SIZES",
    "Fig1Row",
    "Fig2Row",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "TrafficSweepRow",
    "campaign_for",
    "cv_table_campaign",
    "fig1_campaign",
    "fig2_campaign",
    "format_table",
    "run_cv_table",
    "run_experiment",
    "run_fig1",
    "run_fig2",
    "run_message_length_ablation",
    "run_max_destinations_ablation",
    "run_port_count_ablation",
    "run_startup_latency_ablation",
    "run_traffic_sweep",
    "scale_by_name",
    "traffic_campaign",
]
