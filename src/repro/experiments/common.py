"""Shared experiment helpers: broadcast runners and unit-grid builders.

Besides the single-broadcast runners the experiment modules have always
shared, this module hosts the *grid declaration* helpers of the
campaign engine: each experiment declares its unit grid through
:func:`broadcast_units` / :func:`traffic_units` and hands the resulting
:class:`~repro.campaigns.spec.CampaignSpec` to :func:`run_units`, the
shared execute-and-aggregate path that threads workers, store
backends, scheduling policy and cache stores through
:func:`repro.campaigns.run_campaign`.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.campaigns.aggregate import aggregate, failed_records
from repro.campaigns.pool import ProgressFn, run_campaign
from repro.campaigns.spec import CampaignSpec, UnitSpec, freeze_params
from repro.campaigns.store import CampaignStore
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import (
    BarrierStepExecutor,
    BroadcastOutcome,
    EventDrivenExecutor,
)
from repro.core.registry import get_algorithm
from repro.experiments.config import ExperimentScale, scale_by_name
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh
from repro.sim.rng import RandomStreams

__all__ = [
    "random_sources",
    "run_single_broadcasts",
    "run_barrier_broadcasts",
    "paper_config",
    "resolve_scale",
    "broadcast_units",
    "traffic_units",
    "campaign",
    "run_units",
]


def paper_config(ports: int, startup_latency: float = 1.5) -> NetworkConfig:
    """The paper's timing constants with a given port budget."""
    return NetworkConfig(
        startup_latency=startup_latency, flit_time=0.003, ports_per_node=ports
    )


def random_sources(
    dims: Tuple[int, ...], count: int, seed: int
) -> List[Tuple[int, ...]]:
    """``count`` uniformly random source nodes (the paper's protocol).

    Drawn from the named ``"sources"`` stream of the master seed, so
    source selection is stable and independent of any other draw an
    experiment (or campaign unit) makes from the same seed.
    """
    rng = RandomStreams(seed)["sources"]
    return [tuple(int(rng.integers(0, d)) for d in dims) for _ in range(count)]


def run_single_broadcasts(
    algorithm_name: str,
    dims: Tuple[int, ...],
    sources: List[Tuple[int, ...]],
    length_flits: int,
    startup_latency: float = 1.5,
    max_destinations_per_path: Optional[int] = None,
    ports_override: Optional[int] = None,
) -> List[BroadcastOutcome]:
    """Event-driven single-source broadcasts, one per source.

    Each broadcast runs on a fresh, otherwise idle network — the
    paper's §3.1/§3.2 setting.
    """
    mesh = Mesh(dims)
    cls = get_algorithm(algorithm_name)
    if cls is AdaptiveBroadcast and max_destinations_per_path is not None:
        algorithm = cls(mesh, max_destinations_per_path=max_destinations_per_path)
    else:
        algorithm = cls(mesh)
    ports = ports_override or algorithm.ports_required
    config = paper_config(ports, startup_latency)
    outcomes: List[BroadcastOutcome] = []
    for source in sources:
        schedule = algorithm.schedule(source)
        network = NetworkSimulator(mesh, config)
        routing = (
            type(algorithm).make_routing(mesh)
            if getattr(algorithm, "adaptive", False)
            else None
        )
        executor = EventDrivenExecutor(network, adaptive_routing=routing)
        outcomes.append(executor.execute(schedule, length_flits))
    return outcomes


def run_barrier_broadcasts(
    algorithm_name: str,
    dims: Tuple[int, ...],
    sources: List[Tuple[int, ...]],
    length_flits: int,
    startup_latency: float = 1.5,
) -> List[BroadcastOutcome]:
    """Closed-form step-synchronised broadcasts (no contention).

    The semantics under which the paper's per-step arguments are exact;
    used as the second CV column of the table experiments.
    """
    mesh = Mesh(dims)
    algorithm = get_algorithm(algorithm_name)(mesh)
    config = paper_config(algorithm.ports_required, startup_latency)
    executor = BarrierStepExecutor(mesh, config)
    return [
        executor.execute(algorithm.schedule(source), length_flits)
        for source in sources
    ]


# ------------------------------------------------------------ unit grids
def resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Accept a scale name or an :class:`ExperimentScale` instance."""
    return scale_by_name(scale) if isinstance(scale, str) else scale


def broadcast_units(
    experiment: str,
    dims_list: Sequence[Tuple[int, ...]],
    algorithms: Sequence[str],
    length_flits: int,
    scale: str | ExperimentScale,
    seed: int,
    *,
    barrier: bool = False,
    startup_latency: float = 1.5,
    max_destinations_per_path: Optional[int] = None,
    ports_override: Optional[int] = None,
    shards: int | str = 1,
) -> List[UnitSpec]:
    """Declare a dims × algorithm × replication grid of broadcast units.

    With ``shards=1`` (the default): one unit per random source
    (replication), bit-identical — hashes included — to the grids every
    prior release declared.  All algorithms of a cell share the same
    sources — the paper's fairness protocol — because every
    replication re-derives the source list from (dims, seed).

    The scale's ``sources_per_point`` fixes only *how many*
    replications are declared, and is deliberately **not** part of the
    unit's hashed parameters: replication ``r`` always measures the
    ``r``-th draw of the named "sources" stream, whatever the total
    count, so a ``quick`` grid's units are a strict hash-subset of the
    ``full`` grid's and cross-scale cache lookup
    (:func:`repro.campaigns.run_campaign`'s ``cache=``) can reuse
    them.

    ``shards=K`` (K > 1) or ``shards="auto"`` declares each dims ×
    algorithm cell as **one** cell-level unit spanning the whole
    replication axis (kind ``"broadcast-cell"``,
    ``sources_count=sources_per_point``).  The requested fan-out is
    *not* recorded in the spec — slicing the source axis cannot change
    a float of the cell's merged record, so the pool picks the actual
    fan-out at dispatch time (``run_campaign(..., shards=...)``; see
    :mod:`repro.campaigns.shards`) and the aggregated rows stay
    byte-identical to the unsharded grid's.
    """
    scale = resolve_scale(scale)
    if shards != "auto" and (not isinstance(shards, int) or shards < 1):
        raise ValueError(
            f"shards must be a positive int or 'auto', got {shards!r}"
        )
    units: List[UnitSpec] = []
    for dims in dims_list:
        for algorithm in algorithms:
            common = dict(
                experiment=experiment,
                algorithm=algorithm,
                dims=tuple(dims),
                length_flits=length_flits,
                seed=seed,
            )
            if shards != 1:
                units.append(
                    UnitSpec(
                        kind="broadcast-cell",
                        params=freeze_params(
                            barrier=barrier or None,
                            startup_latency=startup_latency,
                            max_destinations_per_path=max_destinations_per_path,
                            ports_override=ports_override,
                            sources_count=scale.sources_per_point,
                        ),
                        **common,
                    )
                )
                continue
            for replication in range(scale.sources_per_point):
                units.append(
                    UnitSpec(
                        kind="broadcast",
                        replication=replication,
                        params=freeze_params(
                            barrier=barrier or None,
                            startup_latency=startup_latency,
                            max_destinations_per_path=max_destinations_per_path,
                            ports_override=ports_override,
                        ),
                        **common,
                    )
                )
    return units


def traffic_units(
    experiment: str,
    dims: Tuple[int, ...],
    algorithms: Sequence[str],
    loads: Iterable[float],
    length_flits: int,
    scale: str | ExperimentScale,
    seed: int,
    *,
    broadcast_fraction: float = 0.1,
    shards: int | str = 1,
) -> List[UnitSpec]:
    """Declare an algorithm × load grid of mixed-traffic units.

    ``shards=K`` (K > 1) declares each load point as K independent
    replications merged by the deterministic reducer of
    :mod:`repro.campaigns.shards`; the campaign pool fans the shards
    out across workers (and pools) and merges when the last one lands.
    ``shards=1`` is the original single-trajectory protocol and leaves
    every unit hash untouched.  The shard count *is* part of the
    measurement protocol (a different, statistically equivalent
    realisation of the point), which is why it belongs in the hashed
    parameters — and why ``shards="auto"`` resolves **here, at
    declaration time**, as a pure function of the spec and the fitted
    cost model on disk (never of worker counts): every pool, and every
    later ``status``/``aggregate`` invocation, reconstructs the same
    per-point fan-out and therefore the same unit hashes.  Without a
    fitted model, ``auto`` conservatively leaves traffic points
    unsharded (see :func:`repro.campaigns.costmodel.auto_shard_count`).
    """
    scale = resolve_scale(scale)
    auto = shards == "auto"
    if not auto:
        if not isinstance(shards, int) or shards < 1:
            raise ValueError(
                f"shards must be a positive int or 'auto', got {shards!r}"
            )
        if shards > 1 and shards > scale.num_batches - scale.discard:
            raise ValueError(
                f"scale {scale.name!r} retains"
                f" {scale.num_batches - scale.discard}"
                f" batches; use --shards <= that (got {shards})"
            )
    cost_model = None
    if auto:
        from repro.campaigns.costmodel import load_default_cost_model

        cost_model = load_default_cost_model()
    loads = list(loads)
    units: List[UnitSpec] = []
    for algorithm in algorithms:
        for load in loads:
            unit = UnitSpec(
                experiment=experiment,
                kind="traffic",
                algorithm=algorithm,
                dims=tuple(dims),
                length_flits=length_flits,
                seed=seed,
                load=float(load),
                params=freeze_params(
                    broadcast_fraction=broadcast_fraction,
                    batch_size=scale.batch_size,
                    num_batches=scale.num_batches,
                    discard=scale.discard,
                    max_sim_time_us=scale.max_sim_time_us,
                    shards=None if auto or shards == 1 else shards,
                ),
            )
            if auto:
                from repro.campaigns.costmodel import auto_shard_count

                point_shards = auto_shard_count(unit, cost_model)
                if point_shards > 1:
                    unit = replace(
                        unit,
                        params=freeze_params(
                            **dict(unit.params), shards=point_shards
                        ),
                    )
            units.append(unit)
    return units


def run_units(
    experiment: str,
    spec: CampaignSpec,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    cache: Sequence[CampaignStore] = (),
    shards: int | str = 1,
    progress: Optional[ProgressFn] = None,
    trace_dir: Optional[Any] = None,
    retries: int = 2,
    max_failures: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[Any]:
    """Execute a declared campaign and aggregate it into result rows.

    The one shared execution path behind every ``run_*`` experiment
    function: dispatch through :func:`repro.campaigns.run_campaign`
    (which honours workers, store backend, scheduling policy, cache
    stores, the broadcast-cell fan-out request ``shards``, the
    ``trace_dir`` span spool, and the ``retries``/``max_failures``
    failure budget) and fold the records back into the experiment's
    row dataclasses.  Rows are identical for any combination of the
    dispatch knobs — tracing included.

    Units that exhausted their retry budget contribute no rows; each
    such cell is announced with an explicit warning line (through
    ``progress`` when given, as a :class:`RuntimeWarning` otherwise)
    so a partial table is never mistaken for a complete one.
    """
    records = run_campaign(
        spec,
        workers=workers,
        store=store,
        schedule=schedule,
        cache=cache,
        shards=shards,
        progress=progress,
        trace_dir=trace_dir,
        retries=retries,
        max_failures=max_failures,
        engine=engine,
    )
    failed = failed_records(records)
    for record in failed:
        note = (
            f"warning: skipping failed cell {record.unit_hash[:12]}"
            f" ({record.attempts} attempt(s)): {record.failure_reason}"
        )
        if progress is not None:
            progress(note)
        else:
            warnings.warn(note, RuntimeWarning, stacklevel=2)
    return aggregate(experiment, records)


def campaign(
    experiment: str,
    units: Sequence[UnitSpec],
    scale: str | ExperimentScale,
    seed: int,
) -> CampaignSpec:
    """Wrap a unit grid as a named campaign (``fig1-quick-s0`` style).

    Duplicate units are dropped (first occurrence wins): a caller-side
    repeat — e.g. ``loads=[2.0, 2.0]`` — describes the same
    computation twice, and the legacy serial loops would simply have
    measured it twice for identical numbers.
    """
    scale = resolve_scale(scale)
    seen = set()
    unique = []
    for unit in units:
        if unit.unit_hash not in seen:
            seen.add(unit.unit_hash)
            unique.append(unit)
    name = f"{experiment}-{scale.name}-s{seed}"
    return CampaignSpec(name=name, seed=seed, units=tuple(unique))
