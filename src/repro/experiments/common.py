"""Shared experiment helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.core.executors import (
    BarrierStepExecutor,
    BroadcastOutcome,
    EventDrivenExecutor,
)
from repro.core.registry import get_algorithm
from repro.network.network import NetworkConfig, NetworkSimulator
from repro.network.topology import Mesh

__all__ = [
    "random_sources",
    "run_single_broadcasts",
    "run_barrier_broadcasts",
    "paper_config",
]


def paper_config(ports: int, startup_latency: float = 1.5) -> NetworkConfig:
    """The paper's timing constants with a given port budget."""
    return NetworkConfig(
        startup_latency=startup_latency, flit_time=0.003, ports_per_node=ports
    )


def random_sources(
    dims: Tuple[int, ...], count: int, seed: int
) -> List[Tuple[int, ...]]:
    """``count`` uniformly random source nodes (the paper's protocol)."""
    rng = np.random.default_rng(seed)
    return [tuple(int(rng.integers(0, d)) for d in dims) for _ in range(count)]


def run_single_broadcasts(
    algorithm_name: str,
    dims: Tuple[int, ...],
    sources: List[Tuple[int, ...]],
    length_flits: int,
    startup_latency: float = 1.5,
    max_destinations_per_path: Optional[int] = None,
    ports_override: Optional[int] = None,
) -> List[BroadcastOutcome]:
    """Event-driven single-source broadcasts, one per source.

    Each broadcast runs on a fresh, otherwise idle network — the
    paper's §3.1/§3.2 setting.
    """
    mesh = Mesh(dims)
    cls = get_algorithm(algorithm_name)
    if cls is AdaptiveBroadcast and max_destinations_per_path is not None:
        algorithm = cls(mesh, max_destinations_per_path=max_destinations_per_path)
    else:
        algorithm = cls(mesh)
    ports = ports_override or algorithm.ports_required
    config = paper_config(ports, startup_latency)
    outcomes: List[BroadcastOutcome] = []
    for source in sources:
        schedule = algorithm.schedule(source)
        network = NetworkSimulator(mesh, config)
        routing = (
            type(algorithm).make_routing(mesh)
            if getattr(algorithm, "adaptive", False)
            else None
        )
        executor = EventDrivenExecutor(network, adaptive_routing=routing)
        outcomes.append(executor.execute(schedule, length_flits))
    return outcomes


def run_barrier_broadcasts(
    algorithm_name: str,
    dims: Tuple[int, ...],
    sources: List[Tuple[int, ...]],
    length_flits: int,
    startup_latency: float = 1.5,
) -> List[BroadcastOutcome]:
    """Closed-form step-synchronised broadcasts (no contention).

    The semantics under which the paper's per-step arguments are exact;
    used as the second CV column of the table experiments.
    """
    mesh = Mesh(dims)
    algorithm = get_algorithm(algorithm_name)(mesh)
    config = paper_config(algorithm.ports_required, startup_latency)
    executor = BarrierStepExecutor(mesh, config)
    return [
        executor.execute(algorithm.schedule(source), length_flits)
        for source in sources
    ]
