"""Result export: JSON and CSV serialisation of experiment rows.

Experiment runners return lists of dataclass rows; this module writes
them to disk so full-scale runs can be archived and re-plotted without
re-simulating.  Tuples (mesh dims) are flattened to ``AxBxC`` strings
for CSV friendliness; ``inf``/``nan`` survive the JSON round trip via
string sentinels.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, List, Sequence

from repro.experiments.reporting import rows_to_dicts

__all__ = [
    "rows_to_json",
    "rows_to_csv",
    "save_rows",
    "load_json_rows",
    "load_csv_rows",
]

_INF = "__inf__"
_NINF = "__-inf__"
_NAN = "__nan__"


def _encode(value: Any) -> Any:
    if isinstance(value, tuple):
        return "x".join(str(v) for v in value)
    if isinstance(value, float):
        if math.isnan(value):
            return _NAN
        if math.isinf(value):
            return _INF if value > 0 else _NINF
    return value


def _decode(value: Any) -> Any:
    if value == _NAN:
        return math.nan
    if value == _INF:
        return math.inf
    if value == _NINF:
        return -math.inf
    return value


def rows_to_json(rows: Sequence[Any]) -> str:
    """Serialise result rows to a JSON array string."""
    dicts = [
        {key: _encode(val) for key, val in row.items()}
        for row in rows_to_dicts(rows)
    ]
    return json.dumps(dicts, indent=2, sort_keys=True)


def load_json_rows(text: str) -> List[dict]:
    """Inverse of :func:`rows_to_json` (tuples stay as ``AxB`` strings)."""
    rows = json.loads(text)
    if not isinstance(rows, list):
        raise ValueError("expected a JSON array of rows")
    return [
        {key: _decode(val) for key, val in row.items()} for row in rows
    ]


def rows_to_csv(rows: Sequence[Any]) -> str:
    """Serialise result rows to CSV (header from the first row's keys)."""
    dicts = rows_to_dicts(rows)
    if not dicts:
        return ""
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(dicts[0].keys()))
    writer.writeheader()
    for row in dicts:
        writer.writerow({key: _encode(val) for key, val in row.items()})
    return buffer.getvalue()


def _decode_csv(value: str) -> Any:
    """Undo CSV stringification: sentinels, None/bool, int, float."""
    decoded = _decode(value)
    if not isinstance(decoded, str):
        return decoded
    if decoded == "":
        return None
    if decoded in ("True", "False"):
        return decoded == "True"
    try:
        return int(decoded)
    except ValueError:
        pass
    try:
        return float(decoded)
    except ValueError:
        return decoded


def load_csv_rows(text: str) -> List[dict]:
    """Inverse of :func:`rows_to_csv`.

    Cell types are recovered to mirror :func:`load_json_rows`:
    numerics come back as ``int``/``float`` (including the
    ``__inf__``/``__nan__`` sentinels), ``True``/``False`` as bools
    and empty cells as ``None``; everything else — e.g. the flattened
    ``AxBxC`` dims — stays a string.
    """
    import io

    reader = csv.DictReader(io.StringIO(text))
    return [
        {key: _decode_csv(val) for key, val in row.items()} for row in reader
    ]


def save_rows(rows: Sequence[Any], path: str | Path) -> Path:
    """Write rows to ``path``; format chosen by suffix (.json / .csv)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(rows_to_json(rows))
    elif path.suffix == ".csv":
        path.write_text(rows_to_csv(rows))
    else:
        raise ValueError(f"unsupported export format {path.suffix!r}")
    return path
