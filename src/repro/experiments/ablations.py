"""Ablation studies.

The design choices the paper mentions but does not isolate:

* **start-up latency** — §3 examines Ts = 0.15 and 1.5 µs; this
  ablation quantifies how the algorithm ranking depends on the
  Ts/β ratio (the step-count argument weakens as Ts → 0);
* **message length** — the paper's stated range is 32–2048 flits;
* **AB's destination limit** — AB "limits the number of destination
  nodes for each message path"; sweeping the limit trades step-3
  parallelism against path length;
* **port count** — EDN is designed for multiport routers; giving every
  algorithm the same port budget isolates the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.registry import algorithm_names
from repro.experiments.common import random_sources, run_single_broadcasts
from repro.experiments.config import ExperimentScale, scale_by_name

__all__ = [
    "AblationRow",
    "run_startup_latency_ablation",
    "run_message_length_ablation",
    "run_max_destinations_ablation",
    "run_port_count_ablation",
]

DIMS = (8, 8, 8)


@dataclass(frozen=True)
class AblationRow:
    """One ablation point."""

    algorithm: str
    parameter: str
    value: float
    mean_latency_us: float
    mean_cv: float
    samples: int


def _measure(
    name: str,
    dims: Tuple[int, int, int],
    sources,
    length_flits: int,
    startup_latency: float = 1.5,
    max_destinations_per_path: Optional[int] = None,
    ports_override: Optional[int] = None,
) -> Tuple[float, float]:
    outcomes = run_single_broadcasts(
        name,
        dims,
        sources,
        length_flits,
        startup_latency,
        max_destinations_per_path=max_destinations_per_path,
        ports_override=ports_override,
    )
    return (
        float(np.mean([o.network_latency for o in outcomes])),
        float(np.mean([o.coefficient_of_variation for o in outcomes])),
    )


def run_startup_latency_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    startup_values: Tuple[float, ...] = (0.15, 1.5),
    length_flits: int = 100,
) -> List[AblationRow]:
    """Latency/CV of all four algorithms at both paper Ts values."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    sources = random_sources(DIMS, scale.sources_per_point, seed)
    rows: List[AblationRow] = []
    for ts in startup_values:
        for name in algorithm_names():
            latency, cv = _measure(name, DIMS, sources, length_flits, ts)
            rows.append(
                AblationRow(
                    algorithm=name,
                    parameter="startup_latency_us",
                    value=ts,
                    mean_latency_us=latency,
                    mean_cv=cv,
                    samples=len(sources),
                )
            )
    return rows


def run_message_length_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    lengths: Tuple[int, ...] = (32, 128, 512, 2048),
) -> List[AblationRow]:
    """The paper's stated 32–2048-flit message-length range."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    sources = random_sources(DIMS, scale.sources_per_point, seed)
    rows: List[AblationRow] = []
    for length in lengths:
        for name in algorithm_names():
            latency, cv = _measure(name, DIMS, sources, length)
            rows.append(
                AblationRow(
                    algorithm=name,
                    parameter="message_length_flits",
                    value=float(length),
                    mean_latency_us=latency,
                    mean_cv=cv,
                    samples=len(sources),
                )
            )
    return rows


def run_max_destinations_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    limits: Tuple[Optional[int], ...] = (None, 32, 16, 8),
    length_flits: int = 100,
) -> List[AblationRow]:
    """AB's per-path destination bound: long worms vs many worms."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    sources = random_sources(DIMS, scale.sources_per_point, seed)
    rows: List[AblationRow] = []
    for limit in limits:
        latency, cv = _measure(
            "AB", DIMS, sources, length_flits, max_destinations_per_path=limit
        )
        rows.append(
            AblationRow(
                algorithm="AB",
                parameter="max_destinations_per_path",
                value=float(limit) if limit is not None else float("inf"),
                mean_latency_us=latency,
                mean_cv=cv,
                samples=len(sources),
            )
        )
    return rows


def run_port_count_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    ports: Tuple[int, ...] = (1, 2, 3),
    length_flits: int = 100,
) -> List[AblationRow]:
    """Every algorithm at every port budget (EDN's multiport advantage)."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    sources = random_sources(DIMS, scale.sources_per_point, seed)
    rows: List[AblationRow] = []
    for port_count in ports:
        for name in algorithm_names():
            latency, cv = _measure(
                name, DIMS, sources, length_flits, ports_override=port_count
            )
            rows.append(
                AblationRow(
                    algorithm=name,
                    parameter="ports_per_node",
                    value=float(port_count),
                    mean_latency_us=latency,
                    mean_cv=cv,
                    samples=len(sources),
                )
            )
    return rows
