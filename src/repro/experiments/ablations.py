"""Ablation studies.

The design choices the paper mentions but does not isolate:

* **start-up latency** — §3 examines Ts = 0.15 and 1.5 µs; this
  ablation quantifies how the algorithm ranking depends on the
  Ts/β ratio (the step-count argument weakens as Ts → 0);
* **message length** — the paper's stated range is 32–2048 flits;
* **AB's destination limit** — AB "limits the number of destination
  nodes for each message path"; sweeping the limit trades step-3
  parallelism against path length;
* **port count** — EDN is designed for multiport routers; giving every
  algorithm the same port budget isolates the benefit.

Each ablation declares a value × algorithm × source unit grid and runs
through the campaign engine (``workers``/``store``/``schedule``
parallelise, resume and reorder it like any other campaign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec, UnitSpec
from repro.campaigns.store import CampaignStore
from repro.core.registry import algorithm_names
from repro.experiments.common import broadcast_units, campaign, run_units
from repro.experiments.config import ExperimentScale

__all__ = [
    "AblationRow",
    "startup_ablation_campaign",
    "length_ablation_campaign",
    "maxdest_ablation_campaign",
    "ports_ablation_campaign",
    "run_startup_latency_ablation",
    "run_message_length_ablation",
    "run_max_destinations_ablation",
    "run_port_count_ablation",
]

DIMS = (8, 8, 8)


@dataclass(frozen=True)
class AblationRow:
    """One ablation point."""

    algorithm: str
    parameter: str
    value: float
    mean_latency_us: float
    mean_cv: float
    samples: int


def _run(
    spec: CampaignSpec,
    experiment: str,
    workers: int,
    store: Optional[CampaignStore],
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[AblationRow]:
    return run_units(
        experiment,
        spec,
        workers=workers,
        store=store,
        schedule=schedule,
        shards=shards,
    )


def startup_ablation_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    startup_values: Tuple[float, ...] = (0.15, 1.5),
    length_flits: int = 100,
    shards: int | str = 1,
) -> CampaignSpec:
    """All four algorithms at each paper Ts value."""
    units: List[UnitSpec] = []
    for ts in startup_values:
        units += broadcast_units(
            "ablation-startup",
            [DIMS],
            algorithm_names(),
            length_flits,
            scale,
            seed,
            startup_latency=ts,
            shards=shards,
        )
    return campaign("ablation-startup", units, scale, seed)


def run_startup_latency_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    startup_values: Tuple[float, ...] = (0.15, 1.5),
    length_flits: int = 100,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[AblationRow]:
    """Latency/CV of all four algorithms at both paper Ts values."""
    spec = startup_ablation_campaign(
        scale, seed, startup_values, length_flits, shards
    )
    return _run(spec, "ablation-startup", workers, store, schedule, shards)


def length_ablation_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    lengths: Tuple[int, ...] = (32, 128, 512, 2048),
    shards: int | str = 1,
) -> CampaignSpec:
    """All four algorithms at each message length."""
    units: List[UnitSpec] = []
    for length in lengths:
        units += broadcast_units(
            "ablation-length", [DIMS], algorithm_names(), length, scale,
            seed, shards=shards,
        )
    return campaign("ablation-length", units, scale, seed)


def run_message_length_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    lengths: Tuple[int, ...] = (32, 128, 512, 2048),
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[AblationRow]:
    """The paper's stated 32–2048-flit message-length range."""
    spec = length_ablation_campaign(scale, seed, lengths, shards)
    return _run(spec, "ablation-length", workers, store, schedule, shards)


def maxdest_ablation_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    limits: Tuple[Optional[int], ...] = (None, 32, 16, 8),
    length_flits: int = 100,
    shards: int | str = 1,
) -> CampaignSpec:
    """AB at each per-path destination bound."""
    units: List[UnitSpec] = []
    for limit in limits:
        units += broadcast_units(
            "ablation-maxdest",
            [DIMS],
            ["AB"],
            length_flits,
            scale,
            seed,
            max_destinations_per_path=limit,
            shards=shards,
        )
    return campaign("ablation-maxdest", units, scale, seed)


def run_max_destinations_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    limits: Tuple[Optional[int], ...] = (None, 32, 16, 8),
    length_flits: int = 100,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[AblationRow]:
    """AB's per-path destination bound: long worms vs many worms."""
    spec = maxdest_ablation_campaign(scale, seed, limits, length_flits, shards)
    return _run(spec, "ablation-maxdest", workers, store, schedule, shards)


def ports_ablation_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    ports: Tuple[int, ...] = (1, 2, 3),
    length_flits: int = 100,
    shards: int | str = 1,
) -> CampaignSpec:
    """Every algorithm at every port budget."""
    units: List[UnitSpec] = []
    for port_count in ports:
        units += broadcast_units(
            "ablation-ports",
            [DIMS],
            algorithm_names(),
            length_flits,
            scale,
            seed,
            ports_override=port_count,
            shards=shards,
        )
    return campaign("ablation-ports", units, scale, seed)


def run_port_count_ablation(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    ports: Tuple[int, ...] = (1, 2, 3),
    length_flits: int = 100,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
) -> List[AblationRow]:
    """Every algorithm at every port budget (EDN's multiport advantage)."""
    spec = ports_ablation_campaign(scale, seed, ports, length_flits, shards)
    return _run(spec, "ablation-ports", workers, store, schedule, shards)
