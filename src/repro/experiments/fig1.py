"""Fig. 1 — communication latency vs network size.

Single-source broadcast latency on 3-D meshes of 64, 512, 1000 and
4096 nodes; message length 100 flits, ``Ts = 1.5 µs``.  Sources are
drawn uniformly at random and averaged (the paper: "different source
nodes have been chosen randomly").

Shape targets: RD's and EDN's latency grows with network size, DB's
and AB's stays nearly flat, DB ≈ EDN on the 4×4×4 mesh (both need the
same number of steps there, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore
from repro.core.registry import algorithm_names
from repro.experiments.common import broadcast_units, campaign, run_units
from repro.experiments.config import FIG1_SIZES, ExperimentScale

__all__ = ["Fig1Row", "fig1_campaign", "run_fig1", "format_fig1"]

MESSAGE_LENGTH = 100  # flits, per the figure caption
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class Fig1Row:
    """One bar of the figure: (algorithm, size) → mean latency."""

    algorithm: str
    dims: Tuple[int, int, int]
    num_nodes: int
    mean_latency_us: float
    std_latency_us: float
    samples: int


def fig1_campaign(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    shards: int | str = 1,
) -> CampaignSpec:
    """Declare the Fig. 1 unit grid (dims × algorithm × source).

    ``shards`` other than 1 declares each dims × algorithm cell as one
    sliceable cell unit (see :func:`broadcast_units`); the rows stay
    byte-identical to the unsharded grid's.
    """
    units = broadcast_units(
        "fig1",
        FIG1_SIZES,
        algorithm_names(),
        MESSAGE_LENGTH,
        scale,
        seed,
        startup_latency=STARTUP_LATENCY,
        shards=shards,
    )
    return campaign("fig1", units, scale, seed)


def run_fig1(
    scale: str | ExperimentScale = "quick",
    seed: int = 0,
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    schedule: str = "fifo",
    shards: int | str = 1,
    engine: Optional[str] = None,
) -> List[Fig1Row]:
    """Regenerate the Fig. 1 series (via the campaign engine)."""
    return run_units(
        "fig1",
        fig1_campaign(scale, seed, shards),
        workers=workers,
        store=store,
        schedule=schedule,
        shards=shards,
        engine=engine,
    )


def format_fig1(rows: List[Fig1Row]) -> str:
    """Print the figure as the paper's series (one column per size)."""
    sizes = sorted({r.num_nodes for r in rows})
    by_algo: Dict[str, Dict[int, float]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, {})[row.num_nodes] = row.mean_latency_us
    lines = [
        "Fig. 1 — mean broadcast latency (µs) vs network size"
        f" (L={MESSAGE_LENGTH} flits, Ts={STARTUP_LATENCY} µs)",
        "algo   " + "".join(f"{s:>10d}" for s in sizes),
    ]
    for name in ("RD", "EDN", "DB", "AB"):
        series = by_algo.get(name, {})
        lines.append(
            f"{name:<6s} "
            + "".join(f"{series.get(s, float('nan')):>10.3f}" for s in sizes)
        )
    return "\n".join(lines)
