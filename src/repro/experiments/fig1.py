"""Fig. 1 — communication latency vs network size.

Single-source broadcast latency on 3-D meshes of 64, 512, 1000 and
4096 nodes; message length 100 flits, ``Ts = 1.5 µs``.  Sources are
drawn uniformly at random and averaged (the paper: "different source
nodes have been chosen randomly").

Shape targets: RD's and EDN's latency grows with network size, DB's
and AB's stays nearly flat, DB ≈ EDN on the 4×4×4 mesh (both need the
same number of steps there, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.registry import algorithm_names
from repro.experiments.common import random_sources, run_single_broadcasts
from repro.experiments.config import FIG1_SIZES, ExperimentScale, scale_by_name

__all__ = ["Fig1Row", "run_fig1", "format_fig1"]

MESSAGE_LENGTH = 100  # flits, per the figure caption
STARTUP_LATENCY = 1.5  # µs


@dataclass(frozen=True)
class Fig1Row:
    """One bar of the figure: (algorithm, size) → mean latency."""

    algorithm: str
    dims: Tuple[int, int, int]
    num_nodes: int
    mean_latency_us: float
    std_latency_us: float
    samples: int


def run_fig1(
    scale: str | ExperimentScale = "quick", seed: int = 0
) -> List[Fig1Row]:
    """Regenerate the Fig. 1 series."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    rows: List[Fig1Row] = []
    for dims in FIG1_SIZES:
        sources = random_sources(dims, scale.sources_per_point, seed)
        for name in algorithm_names():
            outcomes = run_single_broadcasts(
                name, dims, sources, MESSAGE_LENGTH, STARTUP_LATENCY
            )
            latencies = [o.network_latency for o in outcomes]
            rows.append(
                Fig1Row(
                    algorithm=name,
                    dims=dims,
                    num_nodes=int(np.prod(dims)),
                    mean_latency_us=float(np.mean(latencies)),
                    std_latency_us=float(np.std(latencies)),
                    samples=len(latencies),
                )
            )
    return rows


def format_fig1(rows: List[Fig1Row]) -> str:
    """Print the figure as the paper's series (one column per size)."""
    sizes = sorted({r.num_nodes for r in rows})
    by_algo: Dict[str, Dict[int, float]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, {})[row.num_nodes] = row.mean_latency_us
    lines = [
        "Fig. 1 — mean broadcast latency (µs) vs network size"
        f" (L={MESSAGE_LENGTH} flits, Ts={STARTUP_LATENCY} µs)",
        "algo   " + "".join(f"{s:>10d}" for s in sizes),
    ]
    for name in ("RD", "EDN", "DB", "AB"):
        series = by_algo.get(name, {})
        lines.append(
            f"{name:<6s} "
            + "".join(f"{series.get(s, float('nan')):>10.3f}" for s in sizes)
        )
    return "\n".join(lines)
