"""The batch-means procedure.

The paper's §3.3 measurement protocol, verbatim: "A batch strategy has
been used to compute the mean communication latency where 20 batches
have been used to collect the statistics reported here (actually 21
batches were used, but the first batch statistics have been ignored
because it produces optimistic values due to cold start)."

:class:`BatchMeans` implements exactly that: observations stream in,
are grouped into fixed-size batches, the first ``discard`` batch means
are dropped as warm-up, and the remaining batch means give the point
estimate and its confidence interval (batch means are approximately
independent, making the t interval valid for steady-state output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.confidence import ConfidenceInterval, t_confidence_interval

__all__ = ["BatchMeans", "BatchMeansResult"]

#: The paper's protocol: 21 batches collected, the first discarded.
PAPER_BATCHES = 21
PAPER_DISCARD = 1


@dataclass(frozen=True)
class BatchMeansResult:
    """Outcome of a batch-means estimation."""

    batch_means: tuple
    discarded: int
    interval: Optional[ConfidenceInterval]

    @property
    def mean(self) -> float:
        if not self.batch_means:
            raise ValueError("no retained batches")
        return float(np.mean(self.batch_means))

    @property
    def num_batches(self) -> int:
        return len(self.batch_means)


class BatchMeans:
    """Streaming batch-means estimator.

    Parameters
    ----------
    batch_size:
        Observations per batch.
    num_batches:
        Total batches to collect (including discarded ones).
    discard:
        Leading batches to drop as cold-start warm-up.
    confidence:
        Level for the interval over retained batch means.
    """

    def __init__(
        self,
        batch_size: int,
        num_batches: int = PAPER_BATCHES,
        discard: int = PAPER_DISCARD,
        confidence: float = 0.95,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if not 0 <= discard < num_batches:
            raise ValueError("discard must be in [0, num_batches)")
        self.batch_size = batch_size
        self.num_batches = num_batches
        self.discard = discard
        self.confidence = confidence
        self._current: List[float] = []
        self._means: List[float] = []

    # -- streaming ---------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation (ignored once collection is complete)."""
        if self.complete:
            return
        self._current.append(float(value))
        if len(self._current) == self.batch_size:
            self._means.append(float(np.mean(self._current)))
            self._current.clear()

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def batches_collected(self) -> int:
        return len(self._means)

    @property
    def observations_needed(self) -> int:
        """Observations still required to finish all batches."""
        remaining_batches = self.num_batches - len(self._means)
        if remaining_batches <= 0:
            return 0
        return remaining_batches * self.batch_size - len(self._current)

    @property
    def complete(self) -> bool:
        return len(self._means) >= self.num_batches

    # -- results -----------------------------------------------------------
    def result(self) -> BatchMeansResult:
        """Estimate from the retained batches (requires ≥ 1 retained)."""
        retained = self._means[self.discard :]
        if not retained:
            raise ValueError(
                f"no retained batches: collected {len(self._means)},"
                f" discard {self.discard}"
            )
        interval = (
            t_confidence_interval(retained, self.confidence)
            if len(retained) >= 2
            else None
        )
        return BatchMeansResult(
            batch_means=tuple(retained),
            discarded=min(self.discard, len(self._means)),
            interval=interval,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BatchMeans {len(self._means)}/{self.num_batches} batches,"
            f" size={self.batch_size}>"
        )
