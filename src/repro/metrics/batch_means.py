"""The batch-means procedure.

The paper's §3.3 measurement protocol, verbatim: "A batch strategy has
been used to compute the mean communication latency where 20 batches
have been used to collect the statistics reported here (actually 21
batches were used, but the first batch statistics have been ignored
because it produces optimistic values due to cold start)."

:class:`BatchMeans` implements exactly that: observations stream in,
are grouped into fixed-size batches, the first ``discard`` batch means
are dropped as warm-up, and the remaining batch means give the point
estimate and its confidence interval (batch means are approximately
independent, making the t interval valid for steady-state output).

The estimator is built on the mergeable
:class:`~repro.metrics.partial.PartialStat` algebra: :meth:`BatchMeans.
partial` exports the collected state as a serialisable chunk summary,
and :func:`result_from_partial` turns any (possibly merged) partial
back into a :class:`BatchMeansResult` — the route the sharded campaign
units take, with ``merge(split(run)) == run`` guaranteed exactly (see
:mod:`repro.metrics.partial`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.confidence import ConfidenceInterval, interval_from_partial
from repro.metrics.partial import PartialStat, _batch_mean

__all__ = ["BatchMeans", "BatchMeansResult", "result_from_partial"]

#: The paper's protocol: 21 batches collected, the first discarded.
PAPER_BATCHES = 21
PAPER_DISCARD = 1


@dataclass(frozen=True)
class BatchMeansResult:
    """Outcome of a batch-means estimation."""

    batch_means: tuple
    discarded: int
    interval: Optional[ConfidenceInterval]

    @property
    def mean(self) -> float:
        if not self.batch_means:
            raise ValueError("no retained batches")
        return float(np.mean(self.batch_means))

    @property
    def num_batches(self) -> int:
        return len(self.batch_means)


def result_from_partial(
    stat: PartialStat,
    discard: int = PAPER_DISCARD,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Estimate from a (possibly merged) partial's batch means.

    The partial must describe a whole measurement stream (offset 0 —
    a chunk that starts mid-stream has no well-defined warm-up to
    discard).  Incomplete ``tail`` observations are ignored, exactly
    as :class:`BatchMeans` ignores an unfinished batch.
    """
    if stat.offset != 0:
        raise ValueError(
            f"result needs a whole stream (offset 0), got offset {stat.offset}"
        )
    retained = stat.batch_means[discard:]
    if not retained:
        raise ValueError(
            f"no retained batches: collected {len(stat.batch_means)},"
            f" discard {discard}"
        )
    interval = (
        interval_from_partial(stat, confidence, discard)
        if len(retained) >= 2
        else None
    )
    return BatchMeansResult(
        batch_means=tuple(retained),
        discarded=min(discard, len(stat.batch_means)),
        interval=interval,
    )


class BatchMeans:
    """Streaming batch-means estimator.

    Parameters
    ----------
    batch_size:
        Observations per batch.
    num_batches:
        Total batches to collect (including discarded ones).
    discard:
        Leading batches to drop as cold-start warm-up.
    confidence:
        Level for the interval over retained batch means.
    """

    def __init__(
        self,
        batch_size: int,
        num_batches: int = PAPER_BATCHES,
        discard: int = PAPER_DISCARD,
        confidence: float = 0.95,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if not 0 <= discard < num_batches:
            raise ValueError("discard must be in [0, num_batches)")
        self.batch_size = batch_size
        self.num_batches = num_batches
        self.discard = discard
        self.confidence = confidence
        self._current: List[float] = []
        self._means: List[float] = []
        self._total = 0.0

    # -- streaming ---------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation (ignored once collection is complete)."""
        if self.complete:
            return
        self._current.append(float(value))
        self._total += float(value)
        if len(self._current) == self.batch_size:
            self._means.append(_batch_mean(self._current))
            self._current.clear()

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def batches_collected(self) -> int:
        return len(self._means)

    @property
    def observations_needed(self) -> int:
        """Observations still required to finish all batches."""
        remaining_batches = self.num_batches - len(self._means)
        if remaining_batches <= 0:
            return 0
        return remaining_batches * self.batch_size - len(self._current)

    @property
    def complete(self) -> bool:
        return len(self._means) >= self.num_batches

    # -- results -----------------------------------------------------------
    def partial(self) -> PartialStat:
        """The collected state as a mergeable, serialisable partial.

        Contains every closed batch plus the raw observations of the
        unfinished one, so shards can export their contribution and a
        reducer can stitch shards back together exactly.  ``total``
        is the estimator's sequential running sum — deterministic for
        a given stream, but (like every ``PartialStat`` total, see
        :mod:`repro.metrics.partial`) outside the bit-exactness
        contract, which covers the batching fields.
        """
        return PartialStat(
            batch_size=self.batch_size,
            offset=0,
            count=self.batch_size * len(self._means) + len(self._current),
            total=self._total,
            head=(),
            batch_means=tuple(self._means),
            tail=tuple(self._current),
        )

    def result(self) -> BatchMeansResult:
        """Estimate from the retained batches (requires ≥ 1 retained)."""
        return result_from_partial(
            self.partial(), discard=self.discard, confidence=self.confidence
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BatchMeans {len(self._means)}/{self.num_batches} batches,"
            f" size={self.batch_size}>"
        )
