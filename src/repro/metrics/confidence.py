"""Student-t confidence intervals.

The paper collects statistics "with a 95% confidence interval when the
system reaches a steady state".  The t quantiles are computed with a
dependency-free implementation (continued-fraction incomplete beta +
bisection) so the core library needs nothing beyond numpy; values match
``scipy.stats.t.ppf`` to ~1e-9 (verified in the test suite when scipy
is available).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ConfidenceInterval",
    "interval_from_partial",
    "t_confidence_interval",
    "t_quantile",
]


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularised incomplete beta function."""
    MAXIT, EPS, FPMIN = 200, 3e-14, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < FPMIN:
        d = FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, MAXIT + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < EPS:
            return h
    raise RuntimeError("incomplete beta continued fraction did not converge")


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution."""
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    p = 0.5 * _reg_inc_beta(df / 2.0, 0.5, x)
    return 1.0 - p if t > 0 else p


def t_quantile(p: float, df: float) -> float:
    """Inverse CDF of Student's t (bisection on the CDF)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0, 1), got {p}")
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if p == 0.5:
        return 0.0
    lo, hi = -1e6, 1e6
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(mid)):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    level: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (precision measure)."""
        if self.mean == 0:
            return math.inf if self.half_width else 0.0
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {self.half_width:.4g}"
            f" ({self.level:.0%}, n={self.count})"
        )


def interval_from_partial(
    stat, level: float = 0.95, discard: int = 0
) -> ConfidenceInterval:
    """Student-t CI over a (possibly merged) partial's batch means.

    How every batch-means interval is computed (``BatchMeans.result``
    routes through here via ``result_from_partial``): ``stat`` is a
    :class:`~repro.metrics.partial.PartialStat` whose ``batch_means``
    carry the pooled batches; the first ``discard`` are dropped as
    warm-up.  Computes through :func:`t_confidence_interval` on the
    retained means, so a merged stream yields the same interval as the
    serial stream it was split from.
    """
    retained = stat.batch_means[discard:]
    return t_confidence_interval(retained, level)


def t_confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t CI for the mean of ``values`` (needs ≥ 2 observations)."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two observations for a confidence interval")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    t = t_quantile(0.5 + level / 2.0, arr.size - 1)
    return ConfidenceInterval(
        mean=mean, half_width=t * sem, level=level, count=int(arr.size)
    )
