"""Summary statistics.

The paper's node-level metric is the coefficient of variation
``CV = SD / Mnl`` (standard deviation of the per-destination arrival
times over their mean), and its table metric is the *improvement
percentage* ``IMR% = (CV_baseline − CV_ours) / CV_ours · 100`` — the
factor by which the proposed algorithm tightens arrival times,
expressed in percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "SummaryStats",
    "summarize",
    "coefficient_of_variation",
    "improvement_percent",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / standard deviation / extremes of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (``inf`` for zero mean, nonzero std)."""
        if self.mean == 0:
            return 0.0 if self.std == 0 else math.inf
        return self.std / abs(self.mean)

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g}"
            f" cv={self.cv:.4g} range=[{self.minimum:.4g}, {self.maximum:.4g}]"
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """``std/mean`` of a sample — the paper's CV metric."""
    return summarize(values).cv


def improvement_percent(baseline_cv: float, proposed_cv: float) -> float:
    """The paper's IMR%: how much lower the proposed algorithm's CV is.

    Defined as ``(baseline − proposed) / proposed × 100`` so that, e.g.,
    a baseline CV of 0.254 against a proposed CV of 0.1536 yields the
    paper's 65.4 % (Table 1, RD row, 64 nodes).
    """
    if proposed_cv <= 0:
        raise ValueError(f"proposed CV must be positive, got {proposed_cv}")
    if baseline_cv < 0:
        raise ValueError(f"baseline CV must be >= 0, got {baseline_cv}")
    return (baseline_cv - proposed_cv) / proposed_cv * 100.0
