"""Steady-state detection and warm-up truncation.

The paper: "Statistics have been collected with a 95% confidence
interval when the system reaches a steady state (i.e., when results do
not change with time)."  Two standard tools implement that sentence:

:func:`mser_truncation`
    the MSER-5 rule — pick the warm-up cut that minimises the standard
    error of the remaining sample's mean.  Objective, data-driven, and
    the usual modern replacement for eyeballing a Welch plot.
:func:`is_steady`
    the literal "results do not change with time" test: successive
    window means agree within a relative tolerance.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "mser_truncation",
    "is_steady",
    "is_steady_partial",
    "truncate_warmup",
]


def mser_truncation(
    values: Sequence[float], batch: int = 5, max_cut_fraction: float = 0.5
) -> int:
    """MSER warm-up truncation point (in observations).

    Observations are grouped into batches of ``batch``; for every
    candidate cut ``d`` (in whole batches, up to ``max_cut_fraction`` of
    the series) the MSER statistic ``var(X[d:]) / (n-d)²``-style
    standard-error proxy is evaluated, and the minimising cut returned
    as an observation index.

    Parameters
    ----------
    values:
        The raw observation series, time-ordered.
    batch:
        Batch width (5 = the classic MSER-5).
    max_cut_fraction:
        Never truncate more than this fraction of the data.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if not 0.0 < max_cut_fraction < 1.0:
        raise ValueError("max_cut_fraction must be in (0, 1)")
    arr = np.asarray(values, dtype=float)
    if arr.size < 2 * batch:
        return 0
    num_batches = arr.size // batch
    means = arr[: num_batches * batch].reshape(num_batches, batch).mean(axis=1)
    max_cut = max(1, int(num_batches * max_cut_fraction))
    best_d, best_stat = 0, math.inf
    for d in range(0, max_cut + 1):
        tail = means[d:]
        if tail.size < 2:
            break
        stat = float(tail.var()) / tail.size
        if stat < best_stat:
            best_stat, best_d = stat, d
    return best_d * batch


def is_steady(
    values: Sequence[float],
    window: int = 20,
    tolerance: float = 0.05,
) -> bool:
    """True when the last two window means agree within ``tolerance``.

    The direct reading of the paper's steady-state criterion: split the
    tail of the series into two adjacent windows of ``window``
    observations; the relative difference of their means must not
    exceed ``tolerance``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    arr = np.asarray(values, dtype=float)
    if arr.size < 2 * window:
        return False
    recent = float(arr[-window:].mean())
    previous = float(arr[-2 * window : -window].mean())
    scale = max(abs(previous), abs(recent), 1e-300)
    return abs(recent - previous) / scale <= tolerance


def is_steady_partial(
    stat, window: int = 2, tolerance: float = 0.05, discard: int = 0
) -> bool:
    """Steadiness of a (possibly merged) partial's batch means.

    Applies :func:`is_steady` to the retained batch means of a
    :class:`~repro.metrics.partial.PartialStat` — the natural
    steady-state check for a sharded batch-means run, where raw
    observations are no longer available after the merge.  The default
    window is two batches (batch means are already heavily smoothed).
    """
    return is_steady(stat.batch_means[discard:], window=window, tolerance=tolerance)


def truncate_warmup(
    values: Sequence[float], batch: int = 5
) -> Tuple[int, np.ndarray]:
    """Apply :func:`mser_truncation`; returns ``(cut, steady_tail)``."""
    cut = mser_truncation(values, batch=batch)
    return cut, np.asarray(values, dtype=float)[cut:]
