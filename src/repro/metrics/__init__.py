"""Measurement machinery.

The statistics the paper reports: mean/SD/CV of arrival times, Student-t
confidence intervals ("statistics have been collected with a 95%
confidence interval"), and the batch-means procedure of §3.3 ("20
batches have been used ... actually 21, but the first batch statistics
have been ignored because it produces optimistic values due to cold
start").
"""

from repro.metrics.stats import (
    SummaryStats,
    coefficient_of_variation,
    improvement_percent,
    summarize,
)
from repro.metrics.confidence import ConfidenceInterval, t_confidence_interval
from repro.metrics.batch_means import BatchMeans, BatchMeansResult
from repro.metrics.collectors import (
    BroadcastStatsCollector,
    LatencyCollector,
    ThroughputCollector,
)
from repro.metrics.steady_state import is_steady, mser_truncation, truncate_warmup

__all__ = [
    "BatchMeans",
    "BatchMeansResult",
    "BroadcastStatsCollector",
    "ConfidenceInterval",
    "LatencyCollector",
    "SummaryStats",
    "ThroughputCollector",
    "coefficient_of_variation",
    "improvement_percent",
    "is_steady",
    "mser_truncation",
    "summarize",
    "truncate_warmup",
    "t_confidence_interval",
]
