"""Measurement machinery.

The statistics the paper reports: mean/SD/CV of arrival times, Student-t
confidence intervals ("statistics have been collected with a 95%
confidence interval"), and the batch-means procedure of §3.3 ("20
batches have been used ... actually 21, but the first batch statistics
have been ignored because it produces optimistic values due to cold
start").
"""

from repro.metrics.stats import (
    SummaryStats,
    coefficient_of_variation,
    improvement_percent,
    summarize,
)
from repro.metrics.confidence import (
    ConfidenceInterval,
    interval_from_partial,
    t_confidence_interval,
)
from repro.metrics.batch_means import (
    BatchMeans,
    BatchMeansResult,
    result_from_partial,
)
from repro.metrics.collectors import (
    BroadcastStatsCollector,
    LatencyCollector,
    ThroughputCollector,
)
from repro.metrics.partial import (
    BroadcastPartial,
    PartialStat,
    merge_broadcast_partials,
    merge_partials,
    split_broadcast_results,
    split_observations,
)
from repro.metrics.steady_state import (
    is_steady,
    is_steady_partial,
    mser_truncation,
    truncate_warmup,
)

__all__ = [
    "BatchMeans",
    "BatchMeansResult",
    "BroadcastPartial",
    "BroadcastStatsCollector",
    "ConfidenceInterval",
    "LatencyCollector",
    "PartialStat",
    "SummaryStats",
    "ThroughputCollector",
    "coefficient_of_variation",
    "improvement_percent",
    "interval_from_partial",
    "is_steady",
    "is_steady_partial",
    "merge_broadcast_partials",
    "merge_partials",
    "mser_truncation",
    "result_from_partial",
    "split_broadcast_results",
    "split_observations",
    "summarize",
    "truncate_warmup",
    "t_confidence_interval",
]
