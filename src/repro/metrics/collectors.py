"""Online collectors used by the traffic experiments.

:class:`LatencyCollector` accumulates per-message latencies (optionally
split by message kind), :class:`ThroughputCollector` counts deliveries
per unit time, and :class:`BroadcastStatsCollector` aggregates
:class:`~repro.core.executors.BroadcastOutcome` objects into the
paper's per-algorithm rows (mean latency, mean CV, improvement
percentages).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.executors import BroadcastOutcome
from repro.metrics.confidence import ConfidenceInterval, t_confidence_interval
from repro.metrics.stats import SummaryStats, summarize

__all__ = ["LatencyCollector", "ThroughputCollector", "BroadcastStatsCollector"]


class LatencyCollector:
    """Accumulates message latencies, bucketed by a string key."""

    def __init__(self):
        self._buckets: Dict[str, List[float]] = {}

    def record(self, latency: float, bucket: str = "all") -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._buckets.setdefault(bucket, []).append(float(latency))

    def count(self, bucket: str = "all") -> int:
        return len(self._buckets.get(bucket, ()))

    def values(self, bucket: str = "all") -> List[float]:
        return list(self._buckets.get(bucket, ()))

    def summary(self, bucket: str = "all") -> SummaryStats:
        values = self._buckets.get(bucket)
        if not values:
            raise KeyError(f"no observations in bucket {bucket!r}")
        return summarize(values)

    def interval(
        self, bucket: str = "all", level: float = 0.95
    ) -> ConfidenceInterval:
        values = self._buckets.get(bucket)
        if not values or len(values) < 2:
            raise ValueError(f"bucket {bucket!r} has too few observations")
        return t_confidence_interval(values, level)

    def buckets(self) -> List[str]:
        return sorted(self._buckets)

    def clear(self) -> None:
        self._buckets.clear()


class ThroughputCollector:
    """Counts deliveries over simulated time → messages per time unit."""

    def __init__(self):
        self._count = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None

    def record(self, time: float) -> None:
        self._count += 1
        if self._first is None:
            self._first = time
        self._last = time

    @property
    def count(self) -> int:
        return self._count

    def window(self, horizon: Optional[float] = None) -> tuple:
        """``(count, span)`` — the mergeable form of :meth:`throughput`.

        Shard reducers sum counts and spans across shards and divide
        once, which reproduces ``throughput()`` exactly for a single
        collector (same numerator, same denominator).
        """
        if self._count == 0:
            return 0, 0.0
        start = self._first or 0.0
        end = self._last if horizon is None else horizon
        return self._count, (end or 0.0) - start

    def throughput(self, horizon: Optional[float] = None) -> float:
        """Deliveries per time unit over the observation span.

        ``horizon`` overrides the span end (e.g. total simulated time).
        """
        count, span = self.window(horizon)
        if count == 0:
            return 0.0
        if span <= 0:
            return float("inf") if count > 1 else 0.0
        return count / span

    def clear(self) -> None:
        self._count = 0
        self._first = self._last = None


class BroadcastStatsCollector:
    """Aggregates broadcast outcomes into the paper's reporting rows."""

    def __init__(self):
        self._outcomes: Dict[str, List[BroadcastOutcome]] = {}

    def record(self, outcome: BroadcastOutcome) -> None:
        self._outcomes.setdefault(outcome.algorithm, []).append(outcome)

    def algorithms(self) -> List[str]:
        return sorted(self._outcomes)

    def count(self, algorithm: str) -> int:
        return len(self._outcomes.get(algorithm, ()))

    def _require(self, algorithm: str) -> List[BroadcastOutcome]:
        outcomes = self._outcomes.get(algorithm)
        if not outcomes:
            raise KeyError(f"no outcomes recorded for {algorithm!r}")
        return outcomes

    def mean_network_latency(self, algorithm: str) -> float:
        """Mean of the broadcast completion latencies (paper Fig. 1)."""
        return float(
            np.mean([o.network_latency for o in self._require(algorithm)])
        )

    def mean_node_latency(self, algorithm: str) -> float:
        """Mean per-destination latency across all outcomes."""
        values = np.concatenate(
            [o.latencies() for o in self._require(algorithm)]
        )
        return float(values.mean())

    def mean_cv(self, algorithm: str) -> float:
        """Mean coefficient of variation (paper Fig. 2 / Tables 1-2)."""
        return float(
            np.mean(
                [o.coefficient_of_variation for o in self._require(algorithm)]
            )
        )

    def latency_interval(
        self, algorithm: str, level: float = 0.95
    ) -> ConfidenceInterval:
        return t_confidence_interval(
            [o.network_latency for o in self._require(algorithm)], level
        )

    def clear(self) -> None:
        self._outcomes.clear()
