"""Mergeable partial statistics — the algebra behind sharded units.

A :class:`PartialStat` summarises one *contiguous chunk* of an
observation stream in a form that can be serialised, shipped between
processes, and merged back together **exactly**: for any way of
cutting a stream into chunks,

    ``merge_partials(split(stream)) == partial(stream)``

bit for bit, because every batch mean is computed from the same floats
in the same order whether the batch was closed inside one chunk or
stitched across a chunk boundary.  That identity is what lets a heavy
batch-means simulation point fan out into shards whose merged result
is byte-identical to running the shards serially in one process (see
:mod:`repro.campaigns.shards`).

The representation keeps raw observations only where batching needs
them — the ``head`` before the chunk's first global batch boundary and
the ``tail`` after its last complete batch — and compresses everything
between into ``batch_means``.  Merging is *order-independent*: chunks
may arrive in any order (e.g. from a worker pool) and are re-ordered
by their stream ``offset`` before stitching.

Usage::

    a = PartialStat.from_observations(xs[:7],  batch_size=5, offset=0)
    b = PartialStat.from_observations(xs[7:], batch_size=5, offset=7)
    merged = merge_partials([b, a])            # any order
    merged == PartialStat.from_observations(xs, batch_size=5)  # True

The same algebra exists for broadcast cells: a :class:`BroadcastPartial`
carries the ordered per-source samples of one contiguous slice of a
cell's replication axis, and :func:`merge_broadcast_partials` stitches
slices back bit for bit (every source is a whole observation, so the
merge is pure ordered concatenation — see
:mod:`repro.campaigns.shards` for the sharded broadcast cells built on
top of it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PartialStat",
    "merge_partials",
    "split_observations",
    "BroadcastPartial",
    "merge_broadcast_partials",
    "split_broadcast_results",
]


def _batch_mean(values: Sequence[float]) -> float:
    # The one batch-mean kernel shared by streaming collection
    # (BatchMeans.add) and merge stitching: identical floats in
    # identical order produce the identical mean.
    return float(np.mean(values))


@dataclass(frozen=True)
class PartialStat:
    """Order-independent summary of one contiguous observation chunk.

    Parameters
    ----------
    batch_size:
        Width of the global batching grid (observations per batch).
    offset:
        Global index of the chunk's first observation.  Batch
        boundaries are the multiples of ``batch_size`` on this global
        axis, so alignment survives splitting.
    count / total:
        Observation count and sum — the mergeable sums used for
        pooled means.  ``total`` is a *deterministic* reduction (the
        same chunks always merge to the same value) but, unlike
        ``batch_means``/``head``/``tail``, it is not bit-identical
        across different chunkings: a sum of correctly-rounded chunk
        sums may differ in the last ulps from the unsplit stream's
        sum.  The exactness contract covers the batching fields;
        consumers needing exact pooled sums track them per chunk
        (as the traffic shards do for their latency buckets).
    head:
        Raw observations before the chunk's first global batch
        boundary (they complete a batch begun in the preceding chunk).
    batch_means:
        Means of the complete, boundary-aligned batches inside the
        chunk.
    tail:
        Raw observations after the last complete batch.
    """

    batch_size: int
    offset: int = 0
    count: int = 0
    total: float = 0.0
    head: Tuple[float, ...] = ()
    batch_means: Tuple[float, ...] = ()
    tail: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        recon = (
            len(self.head)
            + self.batch_size * len(self.batch_means)
            + len(self.tail)
        )
        if recon != self.count:
            raise ValueError(
                f"inconsistent partial: head/batches/tail describe {recon}"
                f" observations, count says {self.count}"
            )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_observations(
        cls,
        values: Iterable[float],
        batch_size: int,
        offset: int = 0,
    ) -> "PartialStat":
        """Summarise one contiguous chunk starting at ``offset``."""
        xs = [float(v) for v in values]
        boundary = (-offset) % batch_size
        head = tuple(xs[:boundary])
        rest = xs[boundary:]
        n_full = len(rest) // batch_size
        means = tuple(
            _batch_mean(rest[i * batch_size : (i + 1) * batch_size])
            for i in range(n_full)
        )
        return cls(
            batch_size=batch_size,
            offset=offset,
            count=len(xs),
            total=math.fsum(xs),
            head=head,
            batch_means=means,
            tail=tuple(rest[n_full * batch_size :]),
        )

    @classmethod
    def from_batch_means(
        cls,
        means: Sequence[float],
        batch_size: int,
        offset: int = 0,
        total: Optional[float] = None,
    ) -> "PartialStat":
        """Wrap already-closed batches (``offset`` must be aligned).

        When the raw observation sum is no longer available, ``total``
        is reconstructed from the means (``batch_size × Σmeans``) —
        the best derivation the compressed form admits.
        """
        if offset % batch_size:
            raise ValueError(
                f"offset {offset} is not aligned to batch_size {batch_size}"
            )
        means = tuple(float(m) for m in means)
        if total is None:
            total = batch_size * math.fsum(means)
        return cls(
            batch_size=batch_size,
            offset=offset,
            count=batch_size * len(means),
            total=float(total),
            batch_means=means,
        )

    # -- views -------------------------------------------------------------
    @property
    def end(self) -> int:
        """Global index one past the chunk's last observation."""
        return self.offset + self.count

    @property
    def mean(self) -> float:
        """Pooled mean of every observation in the chunk."""
        if not self.count:
            raise ValueError("empty partial has no mean")
        return self.total / self.count

    @property
    def mean_of_batches(self) -> float:
        """Mean of the closed batch means (the batch-means estimate).

        Computed exactly as :attr:`BatchMeansResult.mean` computes it,
        so a merged partial reports the same point estimate as the
        serial estimator it reassembles.
        """
        if not self.batch_means:
            raise ValueError("no closed batches")
        return float(np.mean(self.batch_means))

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable form (inverse: :meth:`from_dict`)."""
        return {
            "batch_size": self.batch_size,
            "offset": self.offset,
            "count": self.count,
            "total": self.total,
            "head": list(self.head),
            "batch_means": list(self.batch_means),
            "tail": list(self.tail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PartialStat":
        return cls(
            batch_size=int(data["batch_size"]),
            offset=int(data["offset"]),
            count=int(data["count"]),
            total=float(data["total"]),
            head=tuple(float(v) for v in data.get("head", ())),
            batch_means=tuple(float(v) for v in data.get("batch_means", ())),
            tail=tuple(float(v) for v in data.get("tail", ())),
        )


def merge_partials(partials: Iterable[PartialStat]) -> PartialStat:
    """Stitch contiguous chunks back into one exact summary.

    Chunks may be given in any order; they are sorted by ``offset``
    and must tile the stream without gaps or overlaps.  Batch means
    that straddle a chunk boundary are recomputed from the stored raw
    ``tail``/``head`` observations — the same floats in the same order
    the unsplit stream would have batched — so the merge reproduces
    the serial :class:`PartialStat` exactly.
    """
    parts = sorted(partials, key=lambda p: p.offset)
    if not parts:
        raise ValueError("nothing to merge")
    batch_size = parts[0].batch_size
    if any(p.batch_size != batch_size for p in parts):
        raise ValueError("cannot merge partials with differing batch_size")
    start = parts[0].offset
    # Empty chunks (a split may cut twice at the same index) carry no
    # observations and would only confuse the contiguity check.
    parts = [p for p in parts if p.count] or parts[:1]
    head_limit = start + ((-start) % batch_size)

    merged_head: List[float] = []
    means: List[float] = []
    pending: List[float] = []
    pos = start

    def feed(value: float) -> None:
        nonlocal pos
        if pos < head_limit:
            merged_head.append(value)
        else:
            pending.append(value)
            if len(pending) == batch_size:
                means.append(_batch_mean(pending))
                pending.clear()
        pos += 1

    for part in parts:
        if part.offset != pos:
            kind = "overlapping" if part.offset < pos else "gapped"
            raise ValueError(
                f"{kind} partials: expected offset {pos}, got {part.offset}"
            )
        for value in part.head:
            feed(value)
        if part.batch_means:
            if pos % batch_size or pending:
                # from_observations can never produce this; it means a
                # hand-built partial mislabelled its alignment.
                raise ValueError(
                    f"partial at offset {part.offset} has batch means that"
                    f" do not start on a batch boundary"
                )
            means.extend(part.batch_means)
            pos += batch_size * len(part.batch_means)
        for value in part.tail:
            feed(value)

    return PartialStat(
        batch_size=batch_size,
        offset=start,
        count=pos - start,
        total=math.fsum(p.total for p in parts),
        head=tuple(merged_head),
        batch_means=tuple(means),
        tail=tuple(pending),
    )


# ------------------------------------------------------- broadcast cells
#: Per-source sample fields of a broadcast cell, in measurement order.
#: ``source`` is the per-replication coordinate; the rest are the floats
#: the aggregators consume.  The two ``barrier_*`` fields exist only on
#: cells measured with a step-barrier twin (Fig. 2 / the CV tables).
_BROADCAST_FIELDS = (
    "source",
    "network_latency",
    "mean_latency",
    "cv",
    "delivered",
)
_BROADCAST_BARRIER_FIELDS = ("barrier_cv", "barrier_network_latency")


@dataclass(frozen=True)
class BroadcastPartial:
    """Ordered per-source samples of one contiguous slice of a cell.

    A broadcast *cell* (one dims × algorithm grid point) measures a
    sequence of independent single-source broadcasts — replication
    ``r`` is always the ``r``-th draw of the cell's "sources" stream.
    A :class:`BroadcastPartial` carries the samples of one contiguous
    slice ``[offset, offset + count)`` of that sequence.  Unlike batch
    means, nothing straddles a slice boundary (every source is a whole
    observation), so the merge is pure ordered concatenation and the
    exactness guarantee is unconditional: for any way of cutting the
    replication axis,

        ``merge_broadcast_partials(split(run)) == run``

    bit for bit — every per-source float of the merged cell is the
    very float the unsliced run produced.

    Barrier twins ride along: a cell measured with ``barrier=True``
    carries the twin's CV/latency for each source *in the same
    partial* — the event-driven run and its closed-form barrier twin
    shard as a pair, never split across slices.
    """

    offset: int
    sources: Tuple[Tuple[int, ...], ...]
    network_latency: Tuple[float, ...]
    mean_latency: Tuple[float, ...]
    cv: Tuple[float, ...]
    delivered: Tuple[int, ...]
    barrier_cv: Optional[Tuple[float, ...]] = None
    barrier_network_latency: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        n = len(self.sources)
        series = [self.network_latency, self.mean_latency, self.cv,
                  self.delivered]
        if (self.barrier_cv is None) != (self.barrier_network_latency is None):
            raise ValueError(
                "barrier_cv and barrier_network_latency must be set together"
            )
        if self.barrier_cv is not None:
            series += [self.barrier_cv, self.barrier_network_latency]
        if any(len(s) != n for s in series):
            raise ValueError(
                f"inconsistent broadcast partial: {n} sources but series"
                f" lengths {[len(s) for s in series]}"
            )

    # -- views -------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of sources (replications) in the slice."""
        return len(self.sources)

    @property
    def end(self) -> int:
        """Global replication index one past the slice's last source."""
        return self.offset + self.count

    @property
    def barrier(self) -> bool:
        """Whether the slice carries barrier-twin samples."""
        return self.barrier_cv is not None

    # -- construction ------------------------------------------------------
    @classmethod
    def from_results(
        cls, results: Sequence[Dict[str, Any]], offset: int = 0
    ) -> "BroadcastPartial":
        """Pack per-source result dicts (the ``"broadcast"`` unit-runner
        schema: source / network_latency / mean_latency / cv / delivered
        plus the optional barrier twin fields) into one partial."""
        barrier = bool(results) and "barrier_cv" in results[0]
        if any(("barrier_cv" in r) != barrier for r in results):
            raise ValueError(
                "cannot mix barrier and non-barrier per-source results"
            )
        return cls(
            offset=offset,
            sources=tuple(tuple(int(c) for c in r["source"]) for r in results),
            network_latency=tuple(float(r["network_latency"]) for r in results),
            mean_latency=tuple(float(r["mean_latency"]) for r in results),
            cv=tuple(float(r["cv"]) for r in results),
            delivered=tuple(int(r["delivered"]) for r in results),
            barrier_cv=(
                tuple(float(r["barrier_cv"]) for r in results)
                if barrier else None
            ),
            barrier_network_latency=(
                tuple(float(r["barrier_network_latency"]) for r in results)
                if barrier else None
            ),
        )

    def results(self) -> List[Dict[str, Any]]:
        """Unpack back into per-source result dicts (inverse of
        :meth:`from_results`, replication order preserved)."""
        out = []
        for i in range(self.count):
            result: Dict[str, Any] = {
                "source": list(self.sources[i]),
                "network_latency": self.network_latency[i],
                "mean_latency": self.mean_latency[i],
                "cv": self.cv[i],
                "delivered": self.delivered[i],
            }
            if self.barrier:
                result["barrier_cv"] = self.barrier_cv[i]
                result["barrier_network_latency"] = (
                    self.barrier_network_latency[i]
                )
            out.append(result)
        return out

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable form (inverse: :meth:`from_dict`)."""
        data: Dict[str, Any] = {
            "offset": self.offset,
            "sources": [list(s) for s in self.sources],
            "network_latency": list(self.network_latency),
            "mean_latency": list(self.mean_latency),
            "cv": list(self.cv),
            "delivered": list(self.delivered),
        }
        if self.barrier:
            data["barrier_cv"] = list(self.barrier_cv)
            data["barrier_network_latency"] = list(
                self.barrier_network_latency
            )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BroadcastPartial":
        barrier = "barrier_cv" in data
        return cls(
            offset=int(data.get("offset", 0)),
            sources=tuple(
                tuple(int(c) for c in s) for s in data["sources"]
            ),
            network_latency=tuple(
                float(v) for v in data["network_latency"]
            ),
            mean_latency=tuple(float(v) for v in data["mean_latency"]),
            cv=tuple(float(v) for v in data["cv"]),
            delivered=tuple(int(v) for v in data["delivered"]),
            barrier_cv=(
                tuple(float(v) for v in data["barrier_cv"])
                if barrier else None
            ),
            barrier_network_latency=(
                tuple(float(v) for v in data["barrier_network_latency"])
                if barrier else None
            ),
        )


def merge_broadcast_partials(
    partials: Iterable[BroadcastPartial],
) -> BroadcastPartial:
    """Stitch contiguous cell slices back into one partial, exactly.

    Slices may arrive in any order (e.g. from a worker pool); they are
    sorted by ``offset`` and must tile the replication axis without
    gaps or overlaps, all carrying (or all lacking) barrier twins.
    Because every source is a whole observation, the merge is ordered
    concatenation — bit-for-bit identical to the unsliced run.
    """
    parts = sorted(partials, key=lambda p: p.offset)
    if not parts:
        raise ValueError("nothing to merge")
    start = parts[0].offset
    # Empty slices (a split may cut twice at the same index) carry no
    # samples — and cannot know whether their cell has barrier twins —
    # so they neither constrain the barrier check nor the tiling.
    parts = [p for p in parts if p.count] or parts[:1]
    barrier = parts[0].barrier
    if any(p.barrier != barrier for p in parts):
        raise ValueError(
            "cannot merge barrier and non-barrier broadcast partials"
        )
    pos = parts[0].offset
    for part in parts:
        if part.offset != pos:
            kind = "overlapping" if part.offset < pos else "gapped"
            raise ValueError(
                f"{kind} broadcast partials: expected offset {pos},"
                f" got {part.offset}"
            )
        pos = part.end

    def cat(field: str) -> Optional[Tuple]:
        if not barrier and field in _BROADCAST_BARRIER_FIELDS:
            return None
        out: List[Any] = []
        for part in parts:
            out.extend(getattr(part, field))
        return tuple(out)

    return BroadcastPartial(
        offset=start,
        sources=cat("sources"),
        network_latency=cat("network_latency"),
        mean_latency=cat("mean_latency"),
        cv=cat("cv"),
        delivered=cat("delivered"),
        barrier_cv=cat("barrier_cv"),
        barrier_network_latency=cat("barrier_network_latency"),
    )


def split_broadcast_results(
    results: Sequence[Dict[str, Any]],
    cuts: Sequence[int],
    offset: int = 0,
) -> List[BroadcastPartial]:
    """Cut per-source results at ``cuts`` (relative indices) into
    partials that tile the cell and merge back to
    ``BroadcastPartial.from_results(results)`` — the broadcast twin of
    :func:`split_observations`, for tests and shard planning."""
    bounds = [0, *sorted(cuts), len(results)]
    out = []
    for lo, hi in zip(bounds, bounds[1:]):
        if not 0 <= lo <= hi <= len(results):
            raise ValueError(f"cut out of range: {lo}..{hi}")
        out.append(
            BroadcastPartial.from_results(results[lo:hi], offset=offset + lo)
        )
    return out


def split_observations(
    values: Sequence[float],
    batch_size: int,
    cuts: Sequence[int],
    offset: int = 0,
) -> List[PartialStat]:
    """Cut a stream at ``cuts`` (relative indices) into partials.

    Convenience for tests and shard planning: the returned chunks
    tile ``values`` and merge back to ``from_observations(values)``.
    """
    bounds = [0, *sorted(cuts), len(values)]
    out = []
    for lo, hi in zip(bounds, bounds[1:]):
        if not 0 <= lo <= hi <= len(values):
            raise ValueError(f"cut out of range: {lo}..{hi}")
        out.append(
            PartialStat.from_observations(
                values[lo:hi], batch_size, offset=offset + lo
            )
        )
    return out
