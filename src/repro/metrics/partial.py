"""Mergeable partial statistics — the algebra behind sharded units.

A :class:`PartialStat` summarises one *contiguous chunk* of an
observation stream in a form that can be serialised, shipped between
processes, and merged back together **exactly**: for any way of
cutting a stream into chunks,

    ``merge_partials(split(stream)) == partial(stream)``

bit for bit, because every batch mean is computed from the same floats
in the same order whether the batch was closed inside one chunk or
stitched across a chunk boundary.  That identity is what lets a heavy
batch-means simulation point fan out into shards whose merged result
is byte-identical to running the shards serially in one process (see
:mod:`repro.campaigns.shards`).

The representation keeps raw observations only where batching needs
them — the ``head`` before the chunk's first global batch boundary and
the ``tail`` after its last complete batch — and compresses everything
between into ``batch_means``.  Merging is *order-independent*: chunks
may arrive in any order (e.g. from a worker pool) and are re-ordered
by their stream ``offset`` before stitching.

Usage::

    a = PartialStat.from_observations(xs[:7],  batch_size=5, offset=0)
    b = PartialStat.from_observations(xs[7:], batch_size=5, offset=7)
    merged = merge_partials([b, a])            # any order
    merged == PartialStat.from_observations(xs, batch_size=5)  # True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PartialStat", "merge_partials", "split_observations"]


def _batch_mean(values: Sequence[float]) -> float:
    # The one batch-mean kernel shared by streaming collection
    # (BatchMeans.add) and merge stitching: identical floats in
    # identical order produce the identical mean.
    return float(np.mean(values))


@dataclass(frozen=True)
class PartialStat:
    """Order-independent summary of one contiguous observation chunk.

    Parameters
    ----------
    batch_size:
        Width of the global batching grid (observations per batch).
    offset:
        Global index of the chunk's first observation.  Batch
        boundaries are the multiples of ``batch_size`` on this global
        axis, so alignment survives splitting.
    count / total:
        Observation count and sum — the mergeable sums used for
        pooled means.  ``total`` is a *deterministic* reduction (the
        same chunks always merge to the same value) but, unlike
        ``batch_means``/``head``/``tail``, it is not bit-identical
        across different chunkings: a sum of correctly-rounded chunk
        sums may differ in the last ulps from the unsplit stream's
        sum.  The exactness contract covers the batching fields;
        consumers needing exact pooled sums track them per chunk
        (as the traffic shards do for their latency buckets).
    head:
        Raw observations before the chunk's first global batch
        boundary (they complete a batch begun in the preceding chunk).
    batch_means:
        Means of the complete, boundary-aligned batches inside the
        chunk.
    tail:
        Raw observations after the last complete batch.
    """

    batch_size: int
    offset: int = 0
    count: int = 0
    total: float = 0.0
    head: Tuple[float, ...] = ()
    batch_means: Tuple[float, ...] = ()
    tail: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        recon = (
            len(self.head)
            + self.batch_size * len(self.batch_means)
            + len(self.tail)
        )
        if recon != self.count:
            raise ValueError(
                f"inconsistent partial: head/batches/tail describe {recon}"
                f" observations, count says {self.count}"
            )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_observations(
        cls,
        values: Iterable[float],
        batch_size: int,
        offset: int = 0,
    ) -> "PartialStat":
        """Summarise one contiguous chunk starting at ``offset``."""
        xs = [float(v) for v in values]
        boundary = (-offset) % batch_size
        head = tuple(xs[:boundary])
        rest = xs[boundary:]
        n_full = len(rest) // batch_size
        means = tuple(
            _batch_mean(rest[i * batch_size : (i + 1) * batch_size])
            for i in range(n_full)
        )
        return cls(
            batch_size=batch_size,
            offset=offset,
            count=len(xs),
            total=math.fsum(xs),
            head=head,
            batch_means=means,
            tail=tuple(rest[n_full * batch_size :]),
        )

    @classmethod
    def from_batch_means(
        cls,
        means: Sequence[float],
        batch_size: int,
        offset: int = 0,
        total: Optional[float] = None,
    ) -> "PartialStat":
        """Wrap already-closed batches (``offset`` must be aligned).

        When the raw observation sum is no longer available, ``total``
        is reconstructed from the means (``batch_size × Σmeans``) —
        the best derivation the compressed form admits.
        """
        if offset % batch_size:
            raise ValueError(
                f"offset {offset} is not aligned to batch_size {batch_size}"
            )
        means = tuple(float(m) for m in means)
        if total is None:
            total = batch_size * math.fsum(means)
        return cls(
            batch_size=batch_size,
            offset=offset,
            count=batch_size * len(means),
            total=float(total),
            batch_means=means,
        )

    # -- views -------------------------------------------------------------
    @property
    def end(self) -> int:
        """Global index one past the chunk's last observation."""
        return self.offset + self.count

    @property
    def mean(self) -> float:
        """Pooled mean of every observation in the chunk."""
        if not self.count:
            raise ValueError("empty partial has no mean")
        return self.total / self.count

    @property
    def mean_of_batches(self) -> float:
        """Mean of the closed batch means (the batch-means estimate).

        Computed exactly as :attr:`BatchMeansResult.mean` computes it,
        so a merged partial reports the same point estimate as the
        serial estimator it reassembles.
        """
        if not self.batch_means:
            raise ValueError("no closed batches")
        return float(np.mean(self.batch_means))

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable form (inverse: :meth:`from_dict`)."""
        return {
            "batch_size": self.batch_size,
            "offset": self.offset,
            "count": self.count,
            "total": self.total,
            "head": list(self.head),
            "batch_means": list(self.batch_means),
            "tail": list(self.tail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PartialStat":
        return cls(
            batch_size=int(data["batch_size"]),
            offset=int(data["offset"]),
            count=int(data["count"]),
            total=float(data["total"]),
            head=tuple(float(v) for v in data.get("head", ())),
            batch_means=tuple(float(v) for v in data.get("batch_means", ())),
            tail=tuple(float(v) for v in data.get("tail", ())),
        )


def merge_partials(partials: Iterable[PartialStat]) -> PartialStat:
    """Stitch contiguous chunks back into one exact summary.

    Chunks may be given in any order; they are sorted by ``offset``
    and must tile the stream without gaps or overlaps.  Batch means
    that straddle a chunk boundary are recomputed from the stored raw
    ``tail``/``head`` observations — the same floats in the same order
    the unsplit stream would have batched — so the merge reproduces
    the serial :class:`PartialStat` exactly.
    """
    parts = sorted(partials, key=lambda p: p.offset)
    if not parts:
        raise ValueError("nothing to merge")
    batch_size = parts[0].batch_size
    if any(p.batch_size != batch_size for p in parts):
        raise ValueError("cannot merge partials with differing batch_size")
    start = parts[0].offset
    # Empty chunks (a split may cut twice at the same index) carry no
    # observations and would only confuse the contiguity check.
    parts = [p for p in parts if p.count] or parts[:1]
    head_limit = start + ((-start) % batch_size)

    merged_head: List[float] = []
    means: List[float] = []
    pending: List[float] = []
    pos = start

    def feed(value: float) -> None:
        nonlocal pos
        if pos < head_limit:
            merged_head.append(value)
        else:
            pending.append(value)
            if len(pending) == batch_size:
                means.append(_batch_mean(pending))
                pending.clear()
        pos += 1

    for part in parts:
        if part.offset != pos:
            kind = "overlapping" if part.offset < pos else "gapped"
            raise ValueError(
                f"{kind} partials: expected offset {pos}, got {part.offset}"
            )
        for value in part.head:
            feed(value)
        if part.batch_means:
            if pos % batch_size or pending:
                # from_observations can never produce this; it means a
                # hand-built partial mislabelled its alignment.
                raise ValueError(
                    f"partial at offset {part.offset} has batch means that"
                    f" do not start on a batch boundary"
                )
            means.extend(part.batch_means)
            pos += batch_size * len(part.batch_means)
        for value in part.tail:
            feed(value)

    return PartialStat(
        batch_size=batch_size,
        offset=start,
        count=pos - start,
        total=math.fsum(p.total for p in parts),
        head=tuple(merged_head),
        batch_means=tuple(means),
        tail=tuple(pending),
    )


def split_observations(
    values: Sequence[float],
    batch_size: int,
    cuts: Sequence[int],
    offset: int = 0,
) -> List[PartialStat]:
    """Cut a stream at ``cuts`` (relative indices) into partials.

    Convenience for tests and shard planning: the returned chunks
    tile ``values`` and merge back to ``from_observations(values)``.
    """
    bounds = [0, *sorted(cuts), len(values)]
    out = []
    for lo, hi in zip(bounds, bounds[1:]):
        if not 0 <= lo <= hi <= len(values):
            raise ValueError(f"cut out of range: {lo}..{hi}")
        out.append(
            PartialStat.from_observations(
                values[lo:hi], batch_size, offset=offset + lo
            )
        )
    return out
