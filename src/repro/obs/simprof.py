"""Always-on kernel profiling counters.

A :class:`SimProfile` is a bag of plain integer/float counters the
simulation kernel increments on its hot paths — cheap enough to stay
enabled unconditionally (an attribute add per event; the bench suite
gates the cost) and structured enough to answer the questions the
fast-path work keeps raising: how many events were dispatched and of
what category, how deep did the heap get, how often did the timeout
pool and the hop-batched wormhole walk actually hit?

The counters are *observers only*: nothing in the kernel reads them
back, so they can never perturb event order.  Every
:class:`~repro.sim.engine.Environment` owns one and exposes a snapshot
through ``Environment.profile()``::

    env = Environment()
    env.process(model(env))
    env.run()
    prof = env.profile()
    prof["holds"], prof["heap_peak"], prof["timeout_pool_hit_rate"]

See ``docs/observability.md`` for what each counter means.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["SimProfile"]


class SimProfile:
    """Kernel counters for one :class:`~repro.sim.engine.Environment`.

    Attributes (all cumulative since construction or :meth:`reset`):

    ``holds``
        Hold markers dispatched (the zero-allocation ``env.hold`` /
        ``env.hold_until`` resumptions).
    ``timeouts``
        :class:`~repro.sim.event.Timeout` events dispatched.
    ``events``
        Every other event dispatched (requests, processes, conditions).
    ``heap_peak``
        High-water mark of the event heap.  ``step()`` samples it at
        every dispatch; the inlined ``run()`` loop samples every 64th
        event id to stay off the hot path, so the recorded peak is a
        lower bound on the true maximum that still tracks sustained
        growth (transient spikes shorter than the sampling window can
        be missed).
    ``timeout_pool_hits`` / ``timeout_pool_misses``
        ``env.timeout()`` calls served from the recycling pool vs
        freshly allocated.
    ``channel_waits`` / ``channel_wait_s``
        Requests that had to queue on a contended resource, and the
        total simulated time they spent waiting (grant − enqueue).
    ``worm_hops_batched`` / ``worm_hops_slow``
        Wormhole header hops claimed eventlessly inside a batched
        window vs walked through the per-hop request/hold path.
    ``batch_sources_batched`` / ``batch_sources_fallback``
        Broadcast sources served by the structure-of-arrays batch
        engine (:mod:`repro.core.batch_broadcast`) vs handed back to
        the per-source event-driven fallback (adaptive schedules,
        faulty channels, failed eligibility checks).
    """

    __slots__ = (
        "holds",
        "timeouts",
        "events",
        "heap_peak",
        "timeout_pool_hits",
        "timeout_pool_misses",
        "channel_waits",
        "channel_wait_s",
        "worm_hops_batched",
        "worm_hops_slow",
        "batch_sources_batched",
        "batch_sources_fallback",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.holds = 0
        self.timeouts = 0
        self.events = 0
        self.heap_peak = 0
        self.timeout_pool_hits = 0
        self.timeout_pool_misses = 0
        self.channel_waits = 0
        self.channel_wait_s = 0.0
        self.worm_hops_batched = 0
        self.worm_hops_slow = 0
        self.batch_sources_batched = 0
        self.batch_sources_fallback = 0

    # ------------------------------------------------------------- views
    @property
    def dispatched(self) -> int:
        """Total events dispatched, all categories."""
        return self.holds + self.timeouts + self.events

    @property
    def timeout_pool_hit_rate(self) -> float:
        """Fraction of ``env.timeout()`` calls served from the pool."""
        total = self.timeout_pool_hits + self.timeout_pool_misses
        return self.timeout_pool_hits / total if total else 0.0

    @property
    def worm_batched_ratio(self) -> float:
        """Fraction of wormhole header hops taken on the batched path."""
        total = self.worm_hops_batched + self.worm_hops_slow
        return self.worm_hops_batched / total if total else 0.0

    @property
    def batch_batched_ratio(self) -> float:
        """Fraction of broadcast sources served by the batch engine."""
        total = self.batch_sources_batched + self.batch_sources_fallback
        return self.batch_sources_batched / total if total else 0.0

    @property
    def mean_channel_wait_s(self) -> float:
        """Mean simulated wait of the requests that had to queue."""
        return (
            self.channel_wait_s / self.channel_waits
            if self.channel_waits
            else 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot (counters plus derived rates)."""
        return {
            "holds": self.holds,
            "timeouts": self.timeouts,
            "events": self.events,
            "dispatched": self.dispatched,
            "heap_peak": self.heap_peak,
            "timeout_pool_hits": self.timeout_pool_hits,
            "timeout_pool_misses": self.timeout_pool_misses,
            "timeout_pool_hit_rate": self.timeout_pool_hit_rate,
            "channel_waits": self.channel_waits,
            "channel_wait_s": self.channel_wait_s,
            "mean_channel_wait_s": self.mean_channel_wait_s,
            "worm_hops_batched": self.worm_hops_batched,
            "worm_hops_slow": self.worm_hops_slow,
            "worm_batched_ratio": self.worm_batched_ratio,
            "batch_sources_batched": self.batch_sources_batched,
            "batch_sources_fallback": self.batch_sources_fallback,
            "batch_batched_ratio": self.batch_batched_ratio,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimProfile dispatched={self.dispatched}"
            f" heap_peak={self.heap_peak}>"
        )
