"""Observability: span tracing, mergeable meters, kernel profiling.

Three small, dependency-free layers that let every other subsystem
*see* what a running campaign is doing without changing a byte of its
results:

:mod:`repro.obs.trace`
    A span-based tracer (campaign → unit → shard → merge spans plus
    claim/heartbeat/steal/cache-hit events) with a zero-overhead no-op
    default, injected clocks, per-worker JSONL sinks and a
    Chrome-trace-event/Perfetto exporter.
:mod:`repro.obs.meters`
    Counters, gauges and histograms whose state is the mergeable
    :class:`~repro.metrics.partial.PartialStat` algebra, so per-shard
    and per-worker metrics merge exactly like sharded results do.
:mod:`repro.obs.simprof`
    Cheap always-on kernel counters (events dispatched by category,
    heap high-water mark, pool hit rates, channel wait time, wormhole
    batching ratio) surfaced through ``Environment.profile()``.

See ``docs/observability.md`` for the span model, the meter algebra
and the Perfetto how-to.
"""

from repro.obs.simprof import SimProfile
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Span,
    Tracer,
    export_chrome_trace,
    read_trace_dir,
    read_trace_file,
    summarize_trace,
    trace_dir_for,
    worker_trace_path,
)

# The meters ride on repro.metrics.partial, whose package pulls in the
# core/network stack — but the kernel itself imports repro.obs (for
# SimProfile) from inside that very stack.  Loading meters lazily (PEP
# 562) keeps the kernel's import dependency-free and breaks the cycle.
_METER_NAMES = (
    "Counter",
    "Gauge",
    "Histogram",
    "MeterRegistry",
    "merge_counters",
    "merge_gauges",
    "merge_histograms",
    "merge_registries",
)


def __getattr__(name):
    if name in _METER_NAMES:
        from repro.obs import meters

        return getattr(meters, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MeterRegistry",
    "merge_counters",
    "merge_gauges",
    "merge_histograms",
    "merge_registries",
    "SimProfile",
    "NULL_TRACER",
    "JsonlSink",
    "ListSink",
    "NullTracer",
    "Span",
    "Tracer",
    "export_chrome_trace",
    "read_trace_dir",
    "read_trace_file",
    "summarize_trace",
    "trace_dir_for",
    "worker_trace_path",
]
