"""Span-based tracing for campaigns, units, shards and merges.

A :class:`Tracer` records *spans* (named intervals with arguments) and
*instant events* into a sink, one JSON object per line.  The campaign
pool opens one tracer per process — the coordinating pool and every
worker write their own file into a shared spool directory next to the
campaign store — and :func:`export_chrome_trace` stitches the files
into a single Chrome-trace-event JSON that Perfetto and
``chrome://tracing`` load directly.

Design rules:

* **Zero overhead when disabled.**  :data:`NULL_TRACER` is the default
  everywhere; its ``span()`` returns a shared no-op context manager
  and its ``event()`` does nothing, so untraced runs allocate no span
  objects and write no bytes.
* **Injected clocks.**  Wall time comes from the ``clock`` callable
  given at construction (default :func:`time.monotonic`, which on
  Linux is system-wide — every worker shares the same origin, so
  cross-process spans line up).  Simulation time is never read here:
  callers that want it pass ``env.now`` as an ordinary span argument.
  ``time.time()`` is deliberately never used in span logic — a
  stepped wall clock would shear spans apart.
* **Crash-tolerant files.**  Sinks append one line per record under a
  lock (the lease heartbeat thread traces concurrently with the pool
  loop); readers skip torn trailing lines, so a killed worker's spool
  is still loadable.

Record schema (one JSON object per line)::

    {"type": "meta",  "role": ..., "pid": ..., "schema": 1, "ts_s": ...}
    {"type": "span",  "name": ..., "cat": ..., "id": ..., "parent": ...,
     "pid": ..., "tid": ..., "start_s": ..., "end_s": ..., "args": {...}}
    {"type": "event", "name": ..., "cat": ..., "parent": ...,
     "pid": ..., "tid": ..., "ts_s": ..., "args": {...}}

See ``docs/observability.md`` for the span model and a Perfetto
walk-through.
"""

from __future__ import annotations

import json
import os
import threading
import time
from itertools import count
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

__all__ = [
    "TRACE_SCHEMA",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "Sink",
    "JsonlSink",
    "ListSink",
    "trace_dir_for",
    "read_trace_file",
    "read_trace_dir",
    "export_chrome_trace",
    "summarize_trace",
]

#: Version stamp written into every file's ``meta`` record.
TRACE_SCHEMA = 1


# --------------------------------------------------------------------------
# The disabled tracer: shared singletons, no allocation, no bytes.
# --------------------------------------------------------------------------
class _NullSpan:
    """The reusable no-op span handle (always the same object)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer every producer uses by default.

    ``span()`` hands back one shared context manager and ``event()``
    returns immediately, so tracing call sites cost a method call and
    nothing else when tracing is off (``tests/test_obs_trace.py``
    holds that to *zero retained allocations*).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "span", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "event", **args: Any) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------
class Sink:
    """Interface: something that accepts record dicts."""

    def write(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        return None


class JsonlSink(Sink):
    """Append records to a JSONL file, one compact object per line.

    The file is opened lazily on the first record and every write is
    serialised under a lock — the lease heartbeat thread emits events
    concurrently with the pool loop, and interleaved *lines* (rather
    than interleaved bytes) are what keeps the file loadable.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            # One flush per record: spans are per-unit (not per-event),
            # so this is cheap, and a worker torn down by pool shutdown
            # never loses buffered lines.
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class ListSink(Sink):
    """Collect records in memory (tests and the overhead probe)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


# --------------------------------------------------------------------------
# The live tracer
# --------------------------------------------------------------------------
class Span:
    """An open span; close it by exiting the ``with`` block.

    Extra arguments attached with :meth:`set` land in the record's
    ``args``; an exception escaping the block stamps ``error`` before
    propagating.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "id", "parent", "start_s")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        args: Dict[str, Any],
        span_id: int,
        parent: Optional[int],
    ):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.id = span_id
        self.parent = parent
        self.start_s = 0.0

    def set(self, **args: Any) -> "Span":
        """Attach (or overwrite) span arguments; chainable."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack_for_thread().append(self)
        self.start_s = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end_s = tracer.clock()
        stack = tracer._stack_for_thread()
        if stack and stack[-1] is self:
            stack.pop()
        if exc is not None:
            self.args["error"] = repr(exc)
        tracer._write_span(self, end_s)
        return False


class Tracer:
    """Records spans and events into a sink.

    Parameters
    ----------
    sink:
        Where records go (usually a :class:`JsonlSink`).
    role:
        Human label for this process's track (``pool``, ``worker``,
        ``main`` ...) — becomes the Perfetto process name.
    clock:
        Wall-clock callable; defaults to :func:`time.monotonic`.
        Injected so tests can drive deterministic timestamps.
    pid:
        Process id override (defaults to :func:`os.getpid`).
    """

    __slots__ = ("sink", "role", "clock", "pid", "_ids", "_local")

    enabled = True

    def __init__(
        self,
        sink: Sink,
        *,
        role: str = "main",
        clock: Callable[[], float] = time.monotonic,
        pid: Optional[int] = None,
    ):
        self.sink = sink
        self.role = role
        self.clock = clock
        self.pid = os.getpid() if pid is None else pid
        self._ids = count(1)
        self._local = threading.local()
        sink.write(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "role": role,
                "pid": self.pid,
                "ts_s": self.clock(),
            }
        )

    # -- internals ----------------------------------------------------------
    def _stack_for_thread(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> Optional[int]:
        stack = self._stack_for_thread()
        return stack[-1].id if stack else None

    def _write_span(self, span: Span, end_s: float) -> None:
        self.sink.write(
            {
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "id": span.id,
                "parent": span.parent,
                "pid": self.pid,
                "tid": threading.get_ident(),
                "start_s": span.start_s,
                "end_s": end_s,
                "args": span.args,
            }
        )

    # -- API ----------------------------------------------------------------
    def span(self, name: str, cat: str = "span", **args: Any) -> Span:
        """Open a span (enter the returned context manager to start it)."""
        return Span(self, name, cat, args, next(self._ids), self._current_id())

    def event(self, name: str, cat: str = "event", **args: Any) -> None:
        """Record an instant event under the current span (if any)."""
        self.sink.write(
            {
                "type": "event",
                "name": name,
                "cat": cat,
                "parent": self._current_id(),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "ts_s": self.clock(),
                "args": args,
            }
        )

    def close(self) -> None:
        self.sink.close()


# --------------------------------------------------------------------------
# Spool-directory layout
# --------------------------------------------------------------------------
def trace_dir_for(store_or_path: Any) -> Path:
    """The trace spool directory belonging to a campaign store.

    Directory-backed stores keep traces inside (``<store>/traces``);
    file-backed stores get a sibling directory (``<store>.traces``) so
    the spool always travels with the campaign it describes.  Remote
    stores (an ``http://host:port`` coordinator URL) have no local
    footprint, so their spool lands in the conventional campaigns/
    layout under a name derived from the coordinator address —
    deterministic, so ``campaign status`` finds what ``campaign run``
    spooled on the same machine.
    """
    raw = getattr(store_or_path, "path", store_or_path)
    text = str(raw)
    if text.startswith(("http://", "https://")):
        from urllib.parse import urlsplit

        address = urlsplit(text).netloc.replace(":", "-").replace("@", "-")
        return Path("campaigns") / f"remote-{address}.traces"
    path = Path(raw)
    if path.is_dir() or not path.suffix:
        return path / "traces"
    return path.with_name(path.name + ".traces")


def worker_trace_path(trace_dir: Union[str, Path], role: str, pid: int) -> Path:
    """Canonical spool file for one process (``<role>-<pid>.jsonl``)."""
    return Path(trace_dir) / f"{role}-{pid}.jsonl"


def read_trace_file(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load one spool file, skipping blank and torn trailing lines."""
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a killed process
            if isinstance(record, dict):
                records.append(record)
    return records


def read_trace_dir(trace_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every ``*.jsonl`` spool file in a trace directory."""
    trace_dir = Path(trace_dir)
    records: List[Dict[str, Any]] = []
    for path in sorted(trace_dir.glob("*.jsonl")):
        records.extend(read_trace_file(path))
    return records


# --------------------------------------------------------------------------
# Export and summaries
# --------------------------------------------------------------------------
def export_chrome_trace(
    records: Iterable[Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Convert spool records to the Chrome trace event format.

    Returns the document (``{"traceEvents": [...]}``) and writes it as
    JSON when ``path`` is given.  Spans become complete (``ph: "X"``)
    events, instants become ``ph: "i"``, and each process's ``meta``
    record becomes a ``process_name`` metadata event, so Perfetto
    shows one named track per pool/worker process.  Timestamps are
    re-based to the earliest record (µs since trace start).
    """
    records = list(records)
    stamps = [r["ts_s"] for r in records if "ts_s" in r]
    stamps += [r["start_s"] for r in records if "start_s" in r]
    origin = min(stamps) if stamps else 0.0

    events: List[Dict[str, Any]] = []
    named_pids = set()
    for record in records:
        kind = record.get("type")
        pid = record.get("pid", 0)
        if kind == "meta":
            if pid not in named_pids:
                named_pids.add(pid)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"{record.get('role', 'proc')}/{pid}"},
                    }
                )
        elif kind == "span":
            events.append(
                {
                    "name": record["name"],
                    "cat": record.get("cat", "span"),
                    "ph": "X",
                    "pid": pid,
                    "tid": record.get("tid", 0),
                    "ts": (record["start_s"] - origin) * 1e6,
                    "dur": max(0.0, (record["end_s"] - record["start_s"]) * 1e6),
                    "args": record.get("args", {}),
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": record["name"],
                    "cat": record.get("cat", "event"),
                    "ph": "i",
                    "s": "p",
                    "pid": pid,
                    "tid": record.get("tid", 0),
                    "ts": (record["ts_s"] - origin) * 1e6,
                    "args": record.get("args", {}),
                }
            )
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document), encoding="utf-8")
    return document


def summarize_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a record stream for human display.

    Returns overall counts plus a per-unit timing table: for every
    ``unit`` argument seen on a span, the summed span duration by span
    name (``unit.execute``, ``unit.merge`` ...) and the claim-to-start
    queueing delay when both sides are present.  Failure-domain events
    (``unit.error`` / ``unit.retry`` / ``unit.quarantine`` /
    ``pool.respawn`` / ``campaign.interrupt``) are tallied under
    ``failures`` so a traced run's fault history is one glance away.
    """
    spans = events = 0
    pids = set()
    roles: Dict[int, str] = {}
    t_lo = float("inf")
    t_hi = float("-inf")
    units: Dict[str, Dict[str, Any]] = {}
    claims: Dict[str, float] = {}
    rpc: Dict[str, int] = {}
    failures: Dict[str, int] = {}
    _FAILURE_EVENTS = (
        "unit.error",
        "unit.retry",
        "unit.quarantine",
        "pool.respawn",
        "campaign.interrupt",
    )

    for record in records:
        kind = record.get("type")
        if "pid" in record:
            pids.add(record["pid"])
        if kind == "meta":
            roles[record["pid"]] = record.get("role", "proc")
        elif kind == "span":
            spans += 1
            t_lo = min(t_lo, record["start_s"])
            t_hi = max(t_hi, record["end_s"])
            unit = record.get("args", {}).get("unit")
            if unit is not None:
                entry = units.setdefault(unit, {"spans": {}})
                name = record["name"]
                entry["spans"][name] = (
                    entry["spans"].get(name, 0.0)
                    + record["end_s"]
                    - record["start_s"]
                )
                if name == "unit.execute":
                    entry.setdefault("started_s", record["start_s"])
        elif kind == "event":
            events += 1
            t_lo = min(t_lo, record["ts_s"])
            t_hi = max(t_hi, record["ts_s"])
            args = record.get("args", {})
            if record.get("cat") == "rpc":
                name = record["name"]
                rpc[name] = rpc.get(name, 0) + 1
            if record["name"] in _FAILURE_EVENTS:
                name = record["name"]
                failures[name] = failures.get(name, 0) + 1
            unit = args.get("unit")
            if unit is not None and record["name"] == "lease.claim":
                claims.setdefault(unit, record["ts_s"])

    for unit, claimed_s in claims.items():
        entry = units.get(unit)
        if entry and "started_s" in entry:
            entry["queued_s"] = max(0.0, entry["started_s"] - claimed_s)
        elif entry is None:
            units[unit] = {"spans": {}}

    for entry in units.values():
        entry.pop("started_s", None)

    return {
        "spans": spans,
        "events": events,
        "processes": {pid: roles.get(pid, "proc") for pid in sorted(pids)},
        "wall_s": (t_hi - t_lo) if spans + events else 0.0,
        "units": units,
        #: per-name counts of rpc.* events; empty for local-only runs.
        "rpc": rpc,
        #: per-name counts of failure-domain events (unit.error,
        #: unit.retry, unit.quarantine, pool.respawn,
        #: campaign.interrupt); empty for fault-free runs.
        "failures": failures,
    }
