"""Mergeable run metrics built on the ``PartialStat`` algebra.

Campaign metrics have the same shape as campaign results: every worker
and shard accumulates its own piece, and a reducer must stitch the
pieces into exactly the metrics a single serial run would have
produced.  The meters here reuse the machinery that already guarantees
that for results (:mod:`repro.metrics.partial`):

:class:`Counter`
    An integer count.  Merging sums — exact.
:class:`Gauge`
    A last/min/max tracker over a slice of an update stream.  Updates
    carry a global ``offset`` like observation chunks do, so merging
    re-orders slices and reproduces ``last`` deterministically.
:class:`Histogram`
    Bucketed counts (exact integers) **plus** the observation stream
    as :class:`~repro.metrics.partial.PartialStat` chunks.  Merging
    sums buckets element-wise and coalesces contiguous chunk runs with
    :func:`~repro.metrics.partial.merge_partials`, so a histogram
    split across shards merges back bit-for-bit on the batching fields
    (``head``/``batch_means``/``tail``/``count``/``offset``) — the
    identity ``tests/test_obs_meters.py`` holds under hypothesis.

A :class:`MeterRegistry` is a named bag of meters with dict round-trip
and a :func:`merge_registries` reducer, mirroring how unit records
travel through the campaign store.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.partial import PartialStat, _batch_mean, merge_partials

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MeterRegistry",
    "merge_counters",
    "merge_gauges",
    "merge_histograms",
    "merge_registries",
    "coalesce_partials",
]


class Counter:
    """A monotonically growing integer count; merge = sum (exact)."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += int(n)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Counter":
        return cls(data["name"], int(data["value"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


def merge_counters(counters: Iterable[Counter]) -> Counter:
    counters = list(counters)
    if not counters:
        raise ValueError("nothing to merge")
    name = counters[0].name
    if any(c.name != name for c in counters):
        raise ValueError("cannot merge counters with different names")
    return Counter(name, sum(c.value for c in counters))


class Gauge:
    """Last/min/max over one contiguous slice of an update stream.

    ``offset`` is the global index of the slice's first update, exactly
    like a :class:`~repro.metrics.partial.PartialStat` chunk: merging
    sorts slices by offset and requires them to tile without gaps or
    overlaps, which is what makes the merged ``last`` the true final
    update rather than whichever worker reported most recently.
    """

    kind = "gauge"

    __slots__ = ("name", "offset", "updates", "last", "low", "high")

    def __init__(
        self,
        name: str,
        offset: int = 0,
        updates: int = 0,
        last: Optional[float] = None,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if (updates == 0) != (last is None):
            raise ValueError("empty gauges carry no last value")
        self.name = name
        self.offset = int(offset)
        self.updates = int(updates)
        self.last = last
        self.low = low
        self.high = high

    @property
    def end(self) -> int:
        """Global index one past the slice's final update."""
        return self.offset + self.updates

    def set(self, value: float) -> None:
        value = float(value)
        self.updates += 1
        self.last = value
        self.low = value if self.low is None else min(self.low, value)
        self.high = value if self.high is None else max(self.high, value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "offset": self.offset,
            "updates": self.updates,
            "last": self.last,
            "low": self.low,
            "high": self.high,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Gauge":
        return cls(
            data["name"],
            offset=int(data.get("offset", 0)),
            updates=int(data.get("updates", 0)),
            last=data.get("last"),
            low=data.get("low"),
            high=data.get("high"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.last} [{self.low}, {self.high}]>"


def merge_gauges(gauges: Iterable[Gauge]) -> Gauge:
    """Stitch tiling gauge slices back into one (exact)."""
    parts = sorted(gauges, key=lambda g: g.offset)
    if not parts:
        raise ValueError("nothing to merge")
    name = parts[0].name
    if any(g.name != name for g in parts):
        raise ValueError("cannot merge gauges with different names")
    filled = [g for g in parts if g.updates]
    if not filled:
        return Gauge(name, offset=parts[0].offset)
    pos = filled[0].offset
    low = high = None
    for part in filled:
        if part.offset != pos:
            kind = "overlapping" if part.offset < pos else "gapped"
            raise ValueError(
                f"{kind} gauges: expected offset {pos}, got {part.offset}"
            )
        low = part.low if low is None else min(low, part.low)
        high = part.high if high is None else max(high, part.high)
        pos = part.end
    return Gauge(
        name,
        offset=filled[0].offset,
        updates=pos - filled[0].offset,
        last=filled[-1].last,
        low=low,
        high=high,
    )


def coalesce_partials(partials: Iterable[PartialStat]) -> Tuple[PartialStat, ...]:
    """Merge every contiguous run of chunks; keep gaps as separate chunks.

    Sorting and stitching mirrors :func:`merge_partials`, but a gap
    between runs is not an error here — per-worker meter slices may
    legitimately leave holes (a crashed worker's lost chunk) and the
    histogram stays lossless by carrying the runs separately.
    """
    parts = sorted((p for p in partials if p.count), key=lambda p: p.offset)
    if not parts:
        return ()
    runs: List[List[PartialStat]] = [[parts[0]]]
    for part in parts[1:]:
        if part.offset == runs[-1][-1].end:
            runs[-1].append(part)
        else:
            runs.append([part])
    return tuple(
        run[0] if len(run) == 1 else merge_partials(run) for run in runs
    )


class Histogram:
    """Bucketed counts plus the exact mergeable observation stream.

    Parameters
    ----------
    name:
        Metric name.
    bounds:
        Ascending finite bucket upper edges; a value ``v`` lands in
        the first bucket with ``v <= bound``, values above the last
        bound land in the overflow bucket (so there are
        ``len(bounds) + 1`` buckets).
    batch_size:
        Batching grid of the underlying ``PartialStat`` chunks.
    offset:
        Global index of this instance's first observation — shards
        recording disjoint slices of one logical stream set it just
        like they do for result partials.

    Bucket counts are integers (merge = element-wise sum, exact); the
    full-precision stream state rides along as ``PartialStat`` chunks,
    which is what quantile-grade consumers merge instead of the lossy
    buckets — :meth:`percentile` extracts exact nearest-rank
    percentiles from the chunk stream (the live service's p50/p95/p99
    come from a ``batch_size=1`` histogram this way).
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "bounds",
        "batch_size",
        "bucket_counts",
        "_chunks",
        "_offset",
        "_count",
        "_total",
        "_head",
        "_means",
        "_tail",
    )

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        batch_size: int = 32,
        offset: int = 0,
    ):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bounds must be strictly ascending")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if offset < 0:
            raise ValueError("offset must be >= 0")
        self.name = name
        self.bounds = bounds
        self.batch_size = batch_size
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._chunks: List[PartialStat] = []
        self._offset = int(offset)
        self._count = 0
        self._total = 0.0
        self._head: List[float] = []
        self._means: List[float] = []
        self._tail: List[float] = []

    # -- streaming ----------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self._total += value
        # Mirror merge_partials' feed(): raw values before the first
        # global batch boundary go to head, then batches close on the
        # global grid — identical floats in identical order to the
        # unsplit stream, which is what keeps merges bit-exact.
        pos = self._offset + self._count
        if pos < self._offset + ((-self._offset) % self.batch_size):
            self._head.append(value)
        else:
            self._tail.append(value)
            if len(self._tail) == self.batch_size:
                self._means.append(_batch_mean(self._tail))
                self._tail.clear()
        self._count += 1

    # -- views --------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations recorded (all chunks)."""
        return sum(p.count for p in self._chunks) + self._count

    @property
    def total(self) -> float:
        """Sum of every observation (deterministic running sums)."""
        return sum(p.total for p in self._chunks) + self._total

    @property
    def mean(self) -> float:
        count = self.count
        if not count:
            raise ValueError("empty histogram has no mean")
        return self.total / count

    def partials(self) -> Tuple[PartialStat, ...]:
        """The stream state as ``PartialStat`` chunks (offset order)."""
        live = self._live_partial()
        chunks = list(self._chunks) + ([live] if live is not None else [])
        return tuple(sorted(chunks, key=lambda p: p.offset))

    def _live_partial(self) -> Optional[PartialStat]:
        if not self._count:
            return None
        return PartialStat(
            batch_size=self.batch_size,
            offset=self._offset,
            count=self._count,
            total=self._total,
            head=tuple(self._head),
            batch_means=tuple(self._means),
            tail=tuple(self._tail),
        )

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the edge covering rank ``q``.

        Exact to bucket granularity (the classic histogram-quantile
        trade-off); returns ``inf`` when the rank falls in the
        overflow bucket.  Full-precision consumers merge
        :meth:`partials` instead.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        count = self.count
        if not count:
            raise ValueError("empty histogram has no quantiles")
        rank = q * count
        seen = 0
        for i, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank and bucket:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def stream_values(self) -> List[float]:
        """The observation multiset carried by the chunk stream.

        Head and tail values are raw observations; each closed batch
        contributes its mean ``batch_size`` times.  With
        ``batch_size=1`` every batch mean *is* its single raw
        observation, so the returned multiset equals the recorded
        stream exactly.
        """
        values: List[float] = []
        for part in self.partials():
            values.extend(part.head)
            for mean in part.batch_means:
                values.extend([mean] * part.batch_size)
            values.extend(part.tail)
        return values

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile from the ``PartialStat`` stream.

        Unlike :meth:`quantile` (bucket-edge resolution), this
        reconstructs the value multiset from the chunk stream
        (:meth:`stream_values`) and returns the nearest-rank order
        statistic — the smallest value whose cumulative share of the
        stream reaches ``q``.  With ``batch_size=1`` (the live
        service's configuration) the result is the exact empirical
        percentile; with larger batches the batched region is
        represented at batch-mean resolution.  Either way the value is
        invariant under any merge(split(stream)) regrouping, because
        the chunk algebra reproduces the unsplit stream bit for bit.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        values = self.stream_values()
        if not values:
            raise ValueError("empty histogram has no percentiles")
        values.sort()
        rank = max(1, math.ceil(q * len(values)))
        return values[min(rank, len(values)) - 1]

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "bounds": list(self.bounds),
            "batch_size": self.batch_size,
            "bucket_counts": list(self.bucket_counts),
            "chunks": [p.to_dict() for p in self.partials()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(
            data["name"],
            data["bounds"],
            batch_size=int(data["batch_size"]),
        )
        counts = [int(c) for c in data["bucket_counts"]]
        if len(counts) != len(hist.bucket_counts):
            raise ValueError("bucket_counts does not match bounds")
        hist.bucket_counts = counts
        hist._chunks = [PartialStat.from_dict(c) for c in data.get("chunks", [])]
        if hist._chunks:
            hist._offset = max(p.end for p in hist._chunks)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


def merge_histograms(histograms: Iterable[Histogram]) -> Histogram:
    """Merge shard/worker histograms: exact buckets, coalesced chunks."""
    parts = list(histograms)
    if not parts:
        raise ValueError("nothing to merge")
    first = parts[0]
    for other in parts[1:]:
        if other.name != first.name:
            raise ValueError("cannot merge histograms with different names")
        if other.bounds != first.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        if other.batch_size != first.batch_size:
            raise ValueError(
                "cannot merge histograms with different batch_size"
            )
    merged = Histogram(first.name, first.bounds, batch_size=first.batch_size)
    merged.bucket_counts = [
        sum(counts) for counts in zip(*(h.bucket_counts for h in parts))
    ]
    chunks = coalesce_partials(
        p for hist in parts for p in hist.partials()
    )
    merged._chunks = list(chunks)
    if merged._chunks:
        merged._offset = max(p.end for p in merged._chunks)
    return merged


_KINDS = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Histogram.kind: Histogram,
}

_MERGERS = {
    Counter.kind: merge_counters,
    Gauge.kind: merge_gauges,
    Histogram.kind: merge_histograms,
}


class MeterRegistry:
    """A named bag of meters with dict round-trip and exact merging."""

    __slots__ = ("meters",)

    def __init__(self) -> None:
        self.meters: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory) -> Any:
        meter = self.meters.get(name)
        if meter is None:
            meter = self.meters[name] = factory()
        return meter

    def counter(self, name: str) -> Counter:
        meter = self._get_or_create(name, lambda: Counter(name))
        if meter.kind != Counter.kind:
            raise TypeError(f"{name!r} is a {meter.kind}, not a counter")
        return meter

    def gauge(self, name: str, offset: int = 0) -> Gauge:
        meter = self._get_or_create(name, lambda: Gauge(name, offset=offset))
        if meter.kind != Gauge.kind:
            raise TypeError(f"{name!r} is a {meter.kind}, not a gauge")
        return meter

    def histogram(
        self,
        name: str,
        bounds: Sequence[float],
        batch_size: int = 32,
        offset: int = 0,
    ) -> Histogram:
        meter = self._get_or_create(
            name,
            lambda: Histogram(name, bounds, batch_size=batch_size, offset=offset),
        )
        if meter.kind != Histogram.kind:
            raise TypeError(f"{name!r} is a {meter.kind}, not a histogram")
        return meter

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: meter.to_dict() for name, meter in sorted(self.meters.items())
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MeterRegistry":
        registry = cls()
        for name, payload in data.items():
            kind = payload.get("kind")
            if kind not in _KINDS:
                raise ValueError(f"unknown meter kind {kind!r} for {name!r}")
            registry.meters[name] = _KINDS[kind].from_dict(payload)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MeterRegistry {sorted(self.meters)}>"


def merge_registries(registries: Iterable[MeterRegistry]) -> MeterRegistry:
    """Merge registries name-by-name with each kind's exact reducer."""
    registries = list(registries)
    merged = MeterRegistry()
    by_name: Dict[str, List[Any]] = {}
    for registry in registries:
        for name, meter in registry.meters.items():
            by_name.setdefault(name, []).append(meter)
    for name, meters in sorted(by_name.items()):
        kinds = {m.kind for m in meters}
        if len(kinds) > 1:
            raise ValueError(f"meter {name!r} has conflicting kinds {kinds}")
        merged.meters[name] = _MERGERS[kinds.pop()](meters)
    return merged
