"""Timing analysis.

Closed-form models of the four algorithms' step counts and
contention-free broadcast latencies — the "timing analysis" the paper
says its simulator verifies.  The experiments use these as sanity
oracles next to the simulated results.
"""

from repro.analysis.step_counts import (
    ab_steps,
    db_steps,
    edn_steps,
    rd_steps,
    step_count,
)
from repro.analysis.latency_model import (
    LatencyModel,
    broadcast_latency_lower_bound,
    distance_lower_bound,
    message_latency,
)
from repro.analysis.comparison import ComparisonRow, compare_algorithms

__all__ = [
    "ComparisonRow",
    "LatencyModel",
    "ab_steps",
    "broadcast_latency_lower_bound",
    "compare_algorithms",
    "db_steps",
    "distance_lower_bound",
    "edn_steps",
    "message_latency",
    "rd_steps",
    "step_count",
]
