"""Side-by-side analytic comparison of the four algorithms.

Generates the kind of summary table the paper's §2 discussion implies:
step counts, total worms launched, longest path, and the analytic
latency floor — for any mesh size.  Used by the quickstart example and
as a cross-check in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.latency_model import distance_lower_bound
from repro.core.executors import UnitStepExecutor
from repro.core.registry import ALGORITHMS
from repro.network.network import NetworkConfig
from repro.network.topology import Mesh

__all__ = ["ComparisonRow", "compare_algorithms"]


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm's analytic profile on one mesh."""

    algorithm: str
    steps: int
    total_sends: int
    longest_path_hops: int
    ports_required: int
    analytic_latency: float
    latency_floor: float
    coefficient_of_variation: float

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "steps": self.steps,
            "total_sends": self.total_sends,
            "longest_path_hops": self.longest_path_hops,
            "ports": self.ports_required,
            "analytic_latency_us": self.analytic_latency,
            "latency_floor_us": self.latency_floor,
            "cv": self.coefficient_of_variation,
        }


def compare_algorithms(
    dims: Sequence[int],
    length_flits: int = 100,
    config: Optional[NetworkConfig] = None,
    source: Optional[Sequence[int]] = None,
) -> List[ComparisonRow]:
    """Profile all four algorithms analytically on one mesh.

    Parameters
    ----------
    dims:
        Mesh shape.
    length_flits:
        Worm length for the latency model.
    config:
        Timing constants; port budget is overridden per algorithm.
    source:
        Broadcast source (defaults to the mesh centre).
    """
    mesh = Mesh(dims)
    base = config or NetworkConfig()
    src = tuple(source) if source is not None else tuple(d // 2 for d in dims)
    rows: List[ComparisonRow] = []
    for name, cls in ALGORITHMS.items():
        algorithm = cls(mesh)
        cfg = NetworkConfig(
            startup_latency=base.startup_latency,
            flit_time=base.flit_time,
            router_delay=base.router_delay,
            ports_per_node=algorithm.ports_required,
        )
        schedule = algorithm.schedule(src)
        outcome = UnitStepExecutor(mesh, cfg).execute(schedule, length_flits)
        longest = max(
            send.min_hops(mesh) for _, send in schedule.all_sends()
        )
        rows.append(
            ComparisonRow(
                algorithm=name,
                steps=schedule.num_steps,
                total_sends=schedule.total_sends(),
                longest_path_hops=longest,
                ports_required=algorithm.ports_required,
                analytic_latency=outcome.network_latency,
                latency_floor=distance_lower_bound(
                    mesh, src, cfg, length_flits
                ),
                coefficient_of_variation=outcome.coefficient_of_variation,
            )
        )
    return rows
