"""Closed-form latency models.

The standard wormhole timing the paper's analysis rests on: a worm of
``L`` flits over ``h`` hops, uncontended, costs

    ``Ts + h·(β + tr) + (L − 1)·β``

— start-up, header propagation, body pipelining.  A broadcast of ``s``
causally chained steps therefore costs at least ``s`` such terms, which
is why reducing the step count (DB: 4, AB: 3) beats reducing path
lengths for any realistic ``Ts/β`` ratio — the paper's central
argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.step_counts import step_count
from repro.network.network import NetworkConfig

__all__ = ["LatencyModel", "message_latency", "broadcast_latency_lower_bound"]


def message_latency(
    config: NetworkConfig, hops: int, length_flits: int
) -> float:
    """Uncontended single-worm latency ``Ts + h·hop + (L−1)·β``."""
    if hops < 1:
        raise ValueError("a message needs at least one hop")
    if length_flits < 1:
        raise ValueError("a message needs at least one flit")
    timing = config.timing
    return (
        config.startup_latency
        + hops * timing.header_hop_time
        + timing.body_time(length_flits)
    )


def broadcast_latency_lower_bound(
    algorithm: str,
    dims: Sequence[int],
    config: NetworkConfig,
    length_flits: int,
) -> float:
    """Steps × cheapest per-step cost: the *step-synchronised* floor.

    Under barrier execution every step waits for its slowest worm, so
    the broadcast pays at least ``steps · (Ts + β + (L−1)β)``.  Note
    this does **not** bound locally-causal execution: a node whose
    causal chain is shorter than the step count (e.g. a corner source
    skipping DB's first step) can finish earlier — use
    :func:`distance_lower_bound` for a semantics-independent floor.
    """
    steps = step_count(algorithm, dims)
    return steps * message_latency(config, hops=1, length_flits=length_flits)


def distance_lower_bound(
    topology,
    source,
    config: NetworkConfig,
    length_flits: int,
) -> float:
    """A floor valid under *any* execution semantics.

    The farthest destination needs at least one start-up, a header walk
    of its topological distance, and one body pipeline; chained relays
    only add to each of those terms (triangle inequality on hop counts).
    """
    source = tuple(source)
    worst = max(
        topology.distance(source, node)
        for node in topology.nodes()
        if node != source
    )
    return message_latency(config, hops=worst, length_flits=length_flits)


@dataclass(frozen=True)
class LatencyModel:
    """Convenience wrapper binding a configuration and message length."""

    config: NetworkConfig
    length_flits: int

    def message(self, hops: int) -> float:
        return message_latency(self.config, hops, self.length_flits)

    def broadcast_floor(self, algorithm: str, dims: Sequence[int]) -> float:
        return broadcast_latency_lower_bound(
            algorithm, dims, self.config, self.length_flits
        )

    def startup_share(self, hops: int) -> float:
        """Fraction of a message's latency spent in start-up.

        The paper's motivation in one number: with ``Ts = 1.5 µs``,
        ``β = 0.003 µs`` and L = 100 flits, >80 % of a worm's latency
        is start-up — so step count dominates everything else.
        """
        return self.config.startup_latency / self.message(hops)
