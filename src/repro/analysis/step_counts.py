"""Closed-form message-passing step counts.

The quantities the paper argues from in §2:

* RD: ``log2 N`` (sum of per-dimension ``⌈log2 k⌉``);
* EDN: ``k + m + 4`` on ``(4·2^k)×(4·2^k)×(4·2^m)`` networks
  (generalised here as in :mod:`repro.core.edn`);
* DB: 4 steps on non-degenerate 3-D meshes;
* AB: 3 steps on non-degenerate 3-D meshes.

These functions are intentionally *independent re-derivations* — the
test suite checks the schedule builders against them, so a bug would
have to appear identically in two places to slip through.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["rd_steps", "edn_steps", "db_steps", "ab_steps", "step_count"]


def _clog2(n: int) -> int:
    return math.ceil(math.log2(n)) if n > 1 else 0


def rd_steps(dims: Sequence[int]) -> int:
    """Recursive doubling: ``Σ ⌈log2 k_d⌉`` (= ``log2 N`` for powers of 2)."""
    return sum(_clog2(d) for d in dims)


def edn_steps(dims: Sequence[int], block: int = 4) -> int:
    """EDN: plane quadrant depth + z doubling depth + block coverage."""
    if len(dims) not in (2, 3):
        raise ValueError("EDN step model covers 2-D/3-D meshes")
    kx, ky = dims[0], dims[1]
    kz = dims[2] if len(dims) == 3 else 1
    bx = math.ceil(kx / block)
    by = math.ceil(ky / block)
    plane = _clog2(max(bx, by))
    spread = _clog2(kz)
    tile = _clog2(max(min(block, kx), min(block, ky)))
    return plane + spread + tile


def db_steps(dims: Sequence[int]) -> int:
    """DB: corners + pillars + boundary rows + interior columns."""
    if len(dims) not in (2, 3):
        raise ValueError("DB step model covers 2-D/3-D meshes")
    ky = dims[1]
    kz = dims[2] if len(dims) == 3 else 1
    return 2 + (1 if kz > 1 else 0) + (1 if ky > 2 else 0)


def ab_steps(dims: Sequence[int]) -> int:
    """AB: corners + pillars + half-plane coverage."""
    if len(dims) not in (2, 3):
        raise ValueError("AB step model covers 2-D/3-D meshes")
    kz = dims[2] if len(dims) == 3 else 1
    return 2 + (1 if kz > 1 else 0)


_MODELS = {"RD": rd_steps, "EDN": edn_steps, "DB": db_steps, "AB": ab_steps}


def step_count(algorithm: str, dims: Sequence[int]) -> int:
    """Dispatch on the paper's algorithm name."""
    try:
        model = _MODELS[algorithm.upper()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_MODELS)}"
        ) from None
    return model(dims)
