"""ASCII visualisation of broadcast behaviour.

Terminal-friendly renderings used by the examples and handy when
debugging a new schedule: which step each node receives in, and how
arrival times distribute across the mesh.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.executors import BroadcastOutcome
from repro.core.schedule import BroadcastSchedule
from repro.network.coordinates import Coordinate
from repro.network.topology import Mesh

__all__ = ["receive_step_map", "arrival_heatmap"]

#: Glyphs for steps 1..35 (source is ``S``, uncovered is ``.``).
_STEP_GLYPHS = "123456789abcdefghijklmnopqrstuvwxyz"


def _plane_lines(
    values: Dict[Coordinate, str],
    mesh: Mesh,
    z: Optional[int],
) -> list:
    kx, ky = mesh.dims[0], mesh.dims[1]
    lines = []
    for y in range(ky - 1, -1, -1):  # north at the top
        row = []
        for x in range(kx):
            coord = (x, y) if z is None else (x, y, z)
            row.append(values.get(coord, "."))
        lines.append(" ".join(row))
    return lines


def receive_step_map(
    schedule: BroadcastSchedule,
    mesh: Mesh,
    plane: Optional[int] = None,
) -> str:
    """Render which step each node first receives in.

    Parameters
    ----------
    schedule:
        The broadcast plan to render.
    mesh:
        Its topology (2-D or 3-D).
    plane:
        For 3-D meshes, the z-plane to show (defaults to the source's).

    Examples
    --------
    >>> from repro.network import Mesh
    >>> from repro.core import DeterministicBroadcast
    >>> print(receive_step_map(
    ...     DeterministicBroadcast(Mesh((4, 4))).schedule((0, 0)), Mesh((4, 4))))
    step map (S=source, digits=receive step)
    2 2 2 1
    3 3 3 3
    3 3 3 3
    S 2 2 2
    """
    if mesh.ndim not in (2, 3):
        raise ValueError("can only render 2-D/3-D meshes")
    z: Optional[int]
    if mesh.ndim == 3:
        z = plane if plane is not None else schedule.source[2]
        if not 0 <= z < mesh.dims[2]:
            raise ValueError(f"plane {z} outside the mesh")
    else:
        z = None
    glyphs: Dict[Coordinate, str] = {schedule.source: "S"}
    for node, step in schedule.receive_step().items():
        if node == schedule.source:
            continue
        glyphs[node] = (
            _STEP_GLYPHS[step - 1] if step - 1 < len(_STEP_GLYPHS) else "+"
        )
    header = "step map (S=source, digits=receive step)"
    if z is not None:
        header += f" — plane z={z}"
    return "\n".join([header] + _plane_lines(glyphs, mesh, z))


def arrival_heatmap(
    outcome: BroadcastOutcome,
    mesh: Mesh,
    plane: Optional[int] = None,
) -> str:
    """Render normalised arrival times (0 = first arrival, 9 = last)."""
    if mesh.ndim not in (2, 3):
        raise ValueError("can only render 2-D/3-D meshes")
    if not outcome.arrivals:
        raise ValueError("outcome has no arrivals to render")
    z: Optional[int]
    if mesh.ndim == 3:
        z = plane if plane is not None else outcome.source[2]
    else:
        z = None
    lo = min(outcome.arrivals.values())
    hi = max(outcome.arrivals.values())
    span = hi - lo
    glyphs: Dict[Coordinate, str] = {outcome.source: "S"}
    for node, t in outcome.arrivals.items():
        level = 0 if span == 0 else int(round(9 * (t - lo) / span))
        glyphs[node] = str(level)
    header = (
        f"arrival heatmap (S=source, 0=first {lo:.3f}, 9=last {hi:.3f})"
    )
    if z is not None:
        header += f" — plane z={z}"
    return "\n".join([header] + _plane_lines(glyphs, mesh, z))
