"""Live estimator service: the simulator as a store-backed oracle.

``repro serve`` keeps a long-running process answering latency queries
from any campaign store backend; misses simulate on demand through the
ordinary campaign machinery, turning the store into a demand-driven
cache.  See ``docs/service.md``.
"""

from repro.service.estimator import (
    ANSWER_LATENCY_BOUNDS_S,
    DEFAULT_SERVICE_PORT,
    QUERY_FIELDS,
    EstimatorService,
    ServiceError,
    spec_for_query,
)
from repro.service.http import API_PREFIX, EstimatorServer

__all__ = [
    "ANSWER_LATENCY_BOUNDS_S",
    "API_PREFIX",
    "DEFAULT_SERVICE_PORT",
    "QUERY_FIELDS",
    "EstimatorService",
    "EstimatorServer",
    "ServiceError",
    "spec_for_query",
]
