"""The live estimator: a store-backed latency oracle.

:class:`EstimatorService` answers "what latency would this (dims,
algorithm, load, L) broadcast see?" for an open-loop stream of JSON
queries.  Each query maps — through :func:`spec_for_query` — to the
same content-hashed :class:`~repro.campaigns.spec.UnitSpec` a campaign
would declare, so the campaign store doubles as the service's answer
cache:

* **hit** — the store already holds an ok record for the unit's hash
  (a prior query, or any campaign that ever computed the point): the
  stored result is returned immediately, nothing simulates.
* **pending** — a miss: the unit is enqueued for the background
  simulator (one thread draining misses through the ordinary
  :func:`~repro.campaigns.pool.run_campaign` machinery — engine
  selection, retry budget, failure records and lease protocol all
  included), and the reply carries a *ticket* (the unit hash) that a
  later query or :meth:`result` call redeems once the record lands.
* **failed** — the unit exhausted its retry budget and the store holds
  its failure record: the reply reports the reason and attempt count
  instead of re-simulating a known-poisonous point (clear it with
  ``repro campaign retry-failed`` semantics: append a fresh record).

Because the answer is whatever lands in the store, a fresh query's
result is byte-identical to running the same unit via ``repro campaign
run`` — the service adds no computation path of its own.

Determinism: all service time comes from the ``clock`` callable
injected at construction (default :func:`time.monotonic`; never
``time.time()``), so tests drive the whole request loop — including
the SLO histogram — with a scripted clock and replay it exactly.
Answer latencies accumulate in a ``batch_size=1``
:class:`~repro.obs.meters.Histogram`, whose ``PartialStat`` chunk
stream yields *exact* p50/p95/p99 via
:meth:`~repro.obs.meters.Histogram.percentile`.

See ``docs/service.md`` for the query schema and the failure matrix.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional, Set

from repro.campaigns.pool import run_campaign
from repro.campaigns.spec import CampaignSpec, UnitSpec, freeze_params
from repro.campaigns.store import CampaignStore
from repro.obs.meters import MeterRegistry
from repro.obs.trace import NULL_TRACER

__all__ = [
    "ANSWER_LATENCY_BOUNDS_S",
    "DEFAULT_SERVICE_PORT",
    "QUERY_FIELDS",
    "ServiceError",
    "EstimatorService",
    "spec_for_query",
]

#: Conventional estimator port (``repro serve`` default) — one above
#: the campaign coordinator's 8931 so both run side by side.
DEFAULT_SERVICE_PORT = 8932

#: Bucket edges (seconds) of the lossy answer-latency histogram view.
#: SLO percentiles never read these — they come exactly from the
#: histogram's chunk stream — the buckets only serve cheap dashboards.
ANSWER_LATENCY_BOUNDS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Accepted query-document fields (anything else is rejected loudly —
#: a typo like ``"lenght_flits"`` must not silently hash to a
#: different unit).
QUERY_FIELDS = frozenset(
    {
        "algorithm",
        "dims",
        "length_flits",
        "load",
        "seed",
        "replication",
        "experiment",
        "params",
    }
)


class ServiceError(ValueError):
    """A malformed query document (the HTTP layer's 400)."""


def spec_for_query(doc: Dict[str, Any]) -> UnitSpec:
    """Map one JSON query document to its content-hashed unit.

    Required: ``algorithm`` (a registered algorithm name) and ``dims``
    (a list of positive mesh dimensions).  Optional: ``length_flits``
    (default 100), ``load`` (messages/ms; present → a ``"traffic"``
    unit, absent → a single-source ``"broadcast"`` unit), ``seed``
    (default 0), ``replication`` (default 0), ``experiment`` (default
    ``"service"`` — pass a paper experiment id to share units with its
    campaigns), and ``params`` (extra runner parameters, canonicalised
    exactly like a campaign grid's).

    The construction is deliberately identical to what experiment
    grids do — :func:`freeze_params` and all — so a query for a point
    some campaign already computed hashes to the *same* unit and hits
    its stored record.
    """
    from repro.core.registry import algorithm_names

    if not isinstance(doc, dict):
        raise ServiceError("query must be a JSON object")
    unknown = set(doc) - QUERY_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown query field(s) {sorted(unknown)};"
            f" accepted: {sorted(QUERY_FIELDS)}"
        )
    try:
        algorithm = str(doc["algorithm"])
        dims = tuple(int(d) for d in doc["dims"])
    except KeyError as exc:
        raise ServiceError(f"query is missing required field {exc}") from None
    except (TypeError, ValueError):
        raise ServiceError("'dims' must be a list of integers") from None
    if algorithm not in algorithm_names():
        raise ServiceError(
            f"unknown algorithm {algorithm!r};"
            f" choose from {sorted(algorithm_names())}"
        )
    if not dims or any(d < 1 for d in dims):
        raise ServiceError(f"'dims' must be positive, got {list(dims)}")
    try:
        length_flits = int(doc.get("length_flits", 100))
        seed = int(doc.get("seed", 0))
        replication = int(doc.get("replication", 0))
    except (TypeError, ValueError):
        raise ServiceError(
            "'length_flits', 'seed' and 'replication' must be integers"
        ) from None
    if length_flits < 1:
        raise ServiceError(f"'length_flits' must be >= 1, got {length_flits}")
    if replication < 0:
        raise ServiceError(f"'replication' must be >= 0, got {replication}")
    load: Optional[float] = None
    if doc.get("load") is not None:
        try:
            load = float(doc["load"])
        except (TypeError, ValueError):
            raise ServiceError("'load' must be a number") from None
        if load <= 0:
            raise ServiceError(f"'load' must be > 0, got {load}")
    params = doc.get("params") or {}
    if not isinstance(params, dict):
        raise ServiceError("'params' must be a JSON object")
    return UnitSpec(
        experiment=str(doc.get("experiment", "service")),
        kind="traffic" if load is not None else "broadcast",
        algorithm=algorithm,
        dims=dims,
        length_flits=length_flits,
        seed=seed,
        replication=replication,
        load=load,
        params=freeze_params(**params),
    )


class EstimatorService:
    """Answer latency queries from a campaign store, simulating misses.

    Parameters
    ----------
    store:
        Any :class:`CampaignStore` backend (jsonl / sqlite / shared /
        http) — the demand-driven answer cache.
    clock:
        Time source for every service measurement (answer latencies,
        uptime).  Injected so tests replay the request loop
        deterministically; defaults to :func:`time.monotonic` and is
        never ``time.time()``.
    tracer:
        ``svc.*`` spans/events land here (default: the no-op tracer).
    engine / retries:
        Forwarded to :func:`run_campaign` for every miss — the batched
        broadcast engine and the failure-domain retry budget apply to
        service-triggered simulations exactly as to campaign runs.
    queue_size:
        Bound on queued-but-unstarted misses; excess misses stay
        pending (their tickets redeem once re-queried) instead of
        growing memory.

    Example::

        service = EstimatorService(open_store("campaigns/oracle.sqlite"))
        service.query({"algorithm": "DB", "dims": [8, 8, 8]})
        # -> {"status": "pending", "ticket": "9f3b...", ...}
        service.wait_idle()
        service.query({"algorithm": "DB", "dims": [8, 8, 8]})
        # -> {"status": "hit", "result": {"mean_latency": ...}, ...}
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        clock: Callable[[], float] = time.monotonic,
        tracer: Any = NULL_TRACER,
        engine: Optional[str] = "auto",
        retries: int = 2,
        queue_size: int = 1024,
    ):
        self.store = store
        self.clock = clock
        self.tracer = tracer
        self.engine = engine
        self.retries = int(retries)
        self.meters = MeterRegistry()
        self._hist = self.meters.histogram(
            "svc.answer_latency_s", ANSWER_LATENCY_BOUNDS_S, batch_size=1
        )
        self._lock = threading.Lock()
        self._inflight: Set[str] = set()
        self._closed = False
        self._started_s = self.clock()
        self._queue: "queue.Queue[Optional[UnitSpec]]" = queue.Queue(
            maxsize=max(1, int(queue_size))
        )
        self._worker = threading.Thread(
            target=self._drain, name="svc-simulator", daemon=True
        )
        self._worker.start()

    # -- the request loop -----------------------------------------------------
    def query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one query document (hit / pending / failed).

        Raises :class:`ServiceError` for malformed documents; only
        well-formed queries count toward the SLO histogram.
        """
        started_s = self.clock()
        with self.tracer.span("svc.query", cat="svc") as span:
            spec = spec_for_query(doc)
            answer = self._answer(spec)
            span.set(unit=spec.unit_hash, status=answer["status"])
        return self._observed(answer, started_s)

    def result(self, ticket: str) -> Dict[str, Any]:
        """Redeem a pending ticket (the unit hash a miss returned)."""
        started_s = self.clock()
        with self.tracer.span("svc.result", cat="svc", unit=ticket) as span:
            answer = self._lookup(str(ticket))
            span.set(status=answer["status"])
        return self._observed(answer, started_s, counter="svc.redeems")

    def _observed(
        self,
        answer: Dict[str, Any],
        started_s: float,
        counter: str = "svc.queries",
    ) -> Dict[str, Any]:
        """Stamp one answer into the SLO meters (under the lock —
        queries arrive from concurrent HTTP handler threads)."""
        elapsed_s = self.clock() - started_s
        with self._lock:
            self._hist.observe(elapsed_s)
            self.meters.counter(counter).inc()
            self.meters.counter(f"svc.answer.{answer['status']}").inc()
        answer["answer_latency_s"] = elapsed_s
        return answer

    def _answer(self, spec: UnitSpec) -> Dict[str, Any]:
        """Resolve one unit against the store; enqueue on a miss."""
        answer = self._lookup(spec.unit_hash, spec)
        if answer["status"] == "pending" and not answer["queued"]:
            answer["queued"] = self._enqueue(spec)
        return answer

    def _lookup(
        self, unit_hash: str, spec: Optional[UnitSpec] = None
    ) -> Dict[str, Any]:
        record = self.store.get(unit_hash)
        base: Dict[str, Any] = {"unit": unit_hash, "ticket": unit_hash}
        if spec is not None:
            base["spec"] = spec.as_dict()
        if record is not None and record.ok:
            self.tracer.event("svc.hit", cat="svc", unit=unit_hash)
            return {"status": "hit", **base, "result": dict(record.result)}
        if record is not None:
            # A persisted failure: report it instead of re-simulating a
            # known-poisonous unit (its retry budget is already spent).
            return {
                "status": "failed",
                **base,
                "error": record.failure_reason,
                "attempts": record.attempts,
            }
        with self._lock:
            queued = unit_hash in self._inflight
        return {"status": "pending", **base, "queued": queued}

    # -- the background simulator ---------------------------------------------
    def _enqueue(self, spec: UnitSpec) -> bool:
        """Hand a missed unit to the simulator (dedup against in-flight)."""
        with self._lock:
            if self._closed or spec.unit_hash in self._inflight:
                return spec.unit_hash in self._inflight
            self._inflight.add(spec.unit_hash)
        try:
            self._queue.put_nowait(spec)
        except queue.Full:
            with self._lock:
                self._inflight.discard(spec.unit_hash)
                self.meters.counter("svc.queue_full").inc()
            return False
        self.tracer.event("svc.enqueue", cat="svc", unit=spec.unit_hash)
        return True

    def _drain(self) -> None:
        """Worker loop: simulate misses through ``run_campaign``.

        One unit per campaign, so the whole failure-domain machinery —
        retry budget, failure records, quarantine — applies unchanged;
        the store's lease protocol keeps racing services (or a
        concurrent ``campaign run``) from executing a unit twice.
        """
        while True:
            spec = self._queue.get()
            if spec is None:
                self._queue.task_done()
                return
            try:
                with self.tracer.span(
                    "svc.simulate", cat="svc", unit=spec.unit_hash
                ):
                    run_campaign(
                        CampaignSpec(
                            name=f"svc-{spec.unit_hash}",
                            seed=spec.seed,
                            units=(spec,),
                        ),
                        store=self.store,
                        retries=self.retries,
                        engine=self.engine,
                    )
            except Exception as exc:  # the service must outlive any unit
                self.tracer.event(
                    "svc.error", cat="svc", unit=spec.unit_hash,
                    error=repr(exc),
                )
                with self._lock:
                    self.meters.counter("svc.simulate_errors").inc()
            finally:
                with self._lock:
                    self._inflight.discard(spec.unit_hash)
                self._queue.task_done()

    def wait_idle(self, timeout_s: float = 60.0) -> bool:
        """Block until every enqueued miss has been simulated.

        Test/CI plumbing only — it polls real thread progress (this is
        about scheduler state, not service time, so the injected clock
        deliberately plays no part).  Returns ``False`` on timeout.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                busy = bool(self._inflight)
            if not busy and self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.01)
        return False

    # -- introspection ----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The SLO document: answer counts plus exact p50/p95/p99.

        Percentiles come from the histogram's ``PartialStat`` chunk
        stream (``batch_size=1`` — every observation survives
        verbatim), so they are exact empirical order statistics, not
        bucket edges.
        """
        with self._lock:
            counters = {
                name: meter.value
                for name, meter in sorted(self.meters.meters.items())
                if meter.kind == "counter"
            }
            count = self._hist.count
            doc: Dict[str, Any] = {
                "answers": count,
                "counters": counters,
                "inflight": len(self._inflight),
            }
            if count:
                doc["answer_latency_s"] = {
                    "count": count,
                    "mean": self._hist.mean,
                    "p50": self._hist.percentile(0.50),
                    "p95": self._hist.percentile(0.95),
                    "p99": self._hist.percentile(0.99),
                }
        return doc

    def status(self) -> Dict[str, Any]:
        """Liveness/identity document (also the health check)."""
        with self._lock:
            inflight = len(self._inflight)
            closed = self._closed
        return {
            "ok": True,
            "service": "estimator",
            "backend": self.store.backend,
            "store": str(self.store.path),
            "engine": self.engine,
            "retries": self.retries,
            "inflight": inflight,
            "draining": closed,
            "uptime_s": self.clock() - self._started_s,
        }

    # -- lifecycle ----------------------------------------------------------------
    def close(self, timeout_s: float = 60.0) -> None:
        """Graceful drain: finish the in-flight unit, drop the queue.

        Queued-but-unstarted misses hold no leases (claims happen
        inside ``run_campaign``), so dropping them loses nothing — the
        tickets stay redeemable and a re-query re-enqueues.  The unit
        actually simulating finishes and releases its lease through
        the ordinary campaign path, so after ``close`` the store holds
        no lease of ours.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        dropped = 0
        while True:
            try:
                spec = self._queue.get_nowait()
            except queue.Empty:
                break
            if spec is not None:
                with self._lock:
                    self._inflight.discard(spec.unit_hash)
                dropped += 1
            self._queue.task_done()
        self._queue.put(None)
        self._worker.join(timeout=timeout_s)
        self.tracer.event("svc.drain", cat="svc", dropped=dropped)

    def __enter__(self) -> "EstimatorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EstimatorService {self.store.describe()}>"
