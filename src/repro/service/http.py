"""HTTP front for the live estimator (``repro serve``).

A deliberately thin adapter: every endpoint maps 1:1 to an
:class:`~repro.service.estimator.EstimatorService` method, mirroring
the campaign coordinator's handler idiom (JSON in, JSON out, typed
errors → status codes).

========================  ======  =======================================
endpoint                  method  service call
========================  ======  =======================================
``/v1/query``             POST    :meth:`EstimatorService.query`
``/v1/result?ticket=<h>`` GET     :meth:`EstimatorService.result`
``/v1/stats``             GET     :meth:`EstimatorService.stats`
``/v1/status``            GET     :meth:`EstimatorService.status`
``/v1/health``            GET     alias of ``/v1/status``
========================  ======  =======================================

Malformed queries (:class:`ServiceError`) reply 400; anything the
store throws replies 500 so open-loop clients retry.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.service.estimator import (
    DEFAULT_SERVICE_PORT,
    EstimatorService,
    ServiceError,
)

__all__ = ["API_PREFIX", "EstimatorServer"]

API_PREFIX = "/v1"


class _EstimatorHandler(BaseHTTPRequestHandler):
    """Request handler: routes ``/v1/<op>`` to the estimator service."""

    server_version = "repro-estimator/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        pass  # svc events go to the service's tracer, not stderr

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, payload: Optional[Dict[str, Any]]) -> None:
        service: EstimatorService = self.server.service  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        if not split.path.startswith(API_PREFIX + "/"):
            self._reply(404, {"error": f"unknown path {split.path!r}"})
            return
        op = split.path[len(API_PREFIX) + 1 :]
        query = {
            key: values[0] for key, values in parse_qs(split.query).items()
        }
        try:
            if op == "query":
                if payload is None:
                    self._reply(400, {"error": "POST a JSON query document"})
                    return
                self._reply(200, service.query(payload))
            elif op == "result":
                if "ticket" not in query:
                    self._reply(400, {"error": "missing 'ticket' parameter"})
                    return
                self._reply(200, service.result(query["ticket"]))
            elif op == "stats":
                self._reply(200, service.stats())
            elif op in ("status", "health"):
                self._reply(200, service.status())
            else:
                self._reply(404, {"error": f"unknown operation {op!r}"})
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # store hiccup: open-loop client retries
            self._reply(500, {"error": repr(exc)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            self._reply(400, {"error": "request body is not valid JSON"})
            return
        if not isinstance(payload, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        self._dispatch(payload)


class EstimatorServer:
    """Serve one :class:`EstimatorService` over HTTP.

    Example::

        service = EstimatorService(open_store("campaigns/oracle.sqlite"))
        with EstimatorServer(service, port=0) as server:
            urlopen(f"{server.url}/v1/status")
        # __exit__ stops the listener and drains the service.
    """

    def __init__(
        self,
        service: EstimatorService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_SERVICE_PORT,
    ):
        self.service = service
        self._server = ThreadingHTTPServer((host, port), _EstimatorHandler)
        self._server.daemon_threads = True
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "EstimatorServer":
        """Serve from a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="estimator-server",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` path)."""
        self._server.serve_forever(poll_interval=0.2)

    def close(self) -> None:
        """Stop the listener, then drain the service (in that order:
        no new queries can arrive while the in-flight unit finishes)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "EstimatorServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
