"""Ablation — AB's per-path destination limit.

AB "uses the strategy of limiting the number of destination nodes for
each message path".  Small limits replace one long third-step worm with
several short worms that queue on the corner's two ports: path length
shrinks but serialisation grows.  This ablation exposes the trade-off
the paper alludes to in §3.2–3.3.
"""

import math

from repro.experiments.ablations import run_max_destinations_ablation
from repro.experiments.reporting import format_table


def test_ablation_max_destinations(once):
    rows = once(run_max_destinations_ablation, scale="smoke", seed=0)
    print()
    print(format_table(rows))

    by_limit = {row.value: row for row in rows}
    unlimited = by_limit[math.inf]
    tightest = by_limit[min(by_limit)]
    # Serialising many short worms on two ports costs latency.
    assert tightest.mean_latency_us > unlimited.mean_latency_us
    # Every variant still delivers with a sane CV.
    for row in rows:
        assert 0 < row.mean_cv < 0.6
