"""Table 2 — AB's coefficient-of-variation improvement over RD and EDN.

The paper's strongest table reproduces well: AB improves on both
baselines at every size, by tens of percent growing with network size —
our AB-vs-EDN improvements land within ~30 % of the paper's own
percentages.
"""

from repro.experiments.tables_cv import format_cv_table, run_cv_table


def test_table2_ab_improvement(once):
    rows = once(run_cv_table, "AB", scale="smoke", seed=0)
    print()
    print(format_cv_table(rows))

    for row in rows:
        # AB improves over both baselines at every size.
        assert row.improvement_percent > 0, (row.baseline, row.num_nodes)

    edn_rows = sorted(
        (r for r in rows if r.baseline == "EDN"), key=lambda r: r.num_nodes
    )
    improvements = [r.improvement_percent for r in edn_rows]
    # Improvement grows with network size, as in the paper (41% -> 100%).
    assert improvements == sorted(improvements)
    assert improvements[0] > 20.0
    # Within shouting distance of the paper's percentages.  The bound
    # is loose: at smoke scale the estimate averages only two random
    # sources, so the ratio swings hard with the seed's source draw.
    for row in edn_rows:
        if row.paper_improvement_percent:
            ratio = row.improvement_percent / row.paper_improvement_percent
            assert 0.4 < ratio < 2.5, (row.num_nodes, ratio)
