"""Ablation — message length 32 … 2048 flits (the paper's stated range).

Longer worms amortise the start-up latency, shrinking the relative gap
between the algorithms while preserving their order: the body pipeline
``(L−1)·β`` is paid once per step regardless of algorithm.
"""

from repro.experiments.ablations import run_message_length_ablation
from repro.experiments.reporting import format_table


def _latency(rows, algorithm, length):
    for row in rows:
        if row.algorithm == algorithm and row.value == length:
            return row.mean_latency_us
    raise KeyError((algorithm, length))


def test_ablation_message_length(once):
    rows = once(run_message_length_ablation, scale="smoke", seed=0)
    print()
    print(format_table(rows))

    for length in (32, 128, 512, 2048):
        # Ordering is length-invariant.
        assert (
            _latency(rows, "AB", length)
            < _latency(rows, "DB", length)
            < _latency(rows, "RD", length)
        )
    # Latency grows with length for every algorithm.
    for name in ("RD", "EDN", "DB", "AB"):
        assert _latency(rows, name, 2048) > _latency(rows, name, 32)
    # The relative RD/AB gap is essentially length-invariant: both pay
    # (Ts + body) per step, so the ratio tracks the step-count ratio
    # (9/3) at every length.
    gap_short = _latency(rows, "RD", 32) / _latency(rows, "AB", 32)
    gap_long = _latency(rows, "RD", 2048) / _latency(rows, "AB", 2048)
    assert abs(gap_long - gap_short) < 0.5
    assert 2.0 < gap_short < 3.5
