"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at
``smoke`` scale (seconds, not the paper's full sample counts) and
asserts the *shape* properties the paper reports.  Run the full-scale
versions with the CLI instead: ``repro fig1 --scale full``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping `benchmark.pedantic` for one-shot experiments."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
