"""Extension — broadcast on the paper's future-work topologies.

Profiles the coded-path ring broadcast on the 8×8×8 torus and the
dimension-sweep broadcast on the 2^9 hypercube against the mesh
algorithms at equal node count (512).
"""

from repro import Hypercube, Mesh, NetworkConfig, Torus, broadcast
from repro.core import UnitStepExecutor
from repro.core.hypercube_broadcast import HypercubeBroadcast
from repro.core.torus_broadcast import TorusRingBroadcast


def _run_extensions():
    results = {}
    mesh = Mesh((8, 8, 8))
    for name in ("RD", "DB", "AB"):
        results[name] = broadcast(name, mesh, (0, 0, 0), 100).network_latency

    torus = Torus((8, 8, 8))
    ring = TorusRingBroadcast(torus)
    results["TORUS-RING"] = (
        UnitStepExecutor(torus, NetworkConfig(ports_per_node=2))
        .execute(ring.schedule((0, 0, 0)), 100)
        .network_latency
    )

    cube = Hypercube(9)
    sweep = HypercubeBroadcast(cube)
    results["HCUBE"] = (
        UnitStepExecutor(cube, NetworkConfig(ports_per_node=1))
        .execute(sweep.schedule((0,) * 9), 100)
        .network_latency
    )
    return results


def test_extension_topologies(once):
    results = once(_run_extensions)
    print()
    for name, latency in results.items():
        print(f"  {name:<11s} {latency:8.3f} us")

    # The torus ring broadcast (n steps) beats mesh DB (4 steps).
    assert results["TORUS-RING"] < results["DB"]
    # The hypercube sweep pays log2(N) start-ups, like mesh RD.
    assert abs(results["HCUBE"] - results["RD"]) / results["RD"] < 0.2
