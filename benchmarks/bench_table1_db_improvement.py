"""Table 1 — DB's coefficient-of-variation improvement over RD and EDN.

Regenerates the table (measured CV for RD/EDN and DBIMR%) side by side
with the paper's values.  The structurally recoverable property is that
DB's improvement over EDN grows with network size under the
locally-causal semantics; EXPERIMENTS.md discusses where the paper's
absolute numbers cannot be reproduced.
"""

from repro.experiments.tables_cv import format_cv_table, run_cv_table


def test_table1_db_improvement(once):
    rows = once(run_cv_table, "DB", scale="smoke", seed=0)
    print()
    print(format_cv_table(rows))

    edn_rows = sorted(
        (r for r in rows if r.baseline == "EDN"), key=lambda r: r.num_nodes
    )
    # DB's event-driven improvement over EDN grows with network size.
    improvements = [r.improvement_percent for r in edn_rows]
    assert improvements[-1] > improvements[0]
    assert improvements[-1] > 10.0
    # CVs land in the paper's order of magnitude (0.05-0.6).
    for row in rows:
        assert 0.05 < row.baseline_cv < 0.6
        assert 0.05 < row.proposed_cv < 0.6
