"""Fig. 3 — latency vs traffic load on the 8×8×8 mesh.

Mixed 90 % unicast / 10 % broadcast Poisson traffic, L = 32 flits.
Asserts the paper's shape on the robust per-kind metrics: broadcast
latency ordered AB < DB < RD at every load, and latency rising with
load.  (The mixed mean at smoke-scale sample counts suffers
completion-order bias, so the per-kind series carry the assertions;
the printed table shows all three.)
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.traffic_sweep import format_traffic_sweep, run_traffic_sweep

LOADS = [1.0, 4.0, 16.0]  # light / medium / near-saturation

SCALE = ExperimentScale(
    name="bench",
    sources_per_point=2,
    batch_size=30,
    num_batches=5,
    discard=1,
    max_sim_time_us=60_000.0,
)


def _bcast(rows, algorithm):
    return {
        r.load_messages_per_ms: r.broadcast_mean_latency_us
        for r in rows
        if r.algorithm == algorithm
    }


def _unicast(rows, algorithm):
    return {
        r.load_messages_per_ms: r.unicast_mean_latency_us
        for r in rows
        if r.algorithm == algorithm
    }


def test_fig3_traffic_8x8x8(once):
    rows = once(run_traffic_sweep, "fig3", scale=SCALE, seed=0, loads=LOADS)
    print()
    print(format_traffic_sweep(rows))

    rd_b, db_b, ab_b = _bcast(rows, "RD"), _bcast(rows, "DB"), _bcast(rows, "AB")
    for load in LOADS:
        if rd_b[load] is None or ab_b[load] is None or db_b[load] is None:
            continue
        assert ab_b[load] < rd_b[load], load
        assert db_b[load] < rd_b[load], load
    # Unicast latency rises with load for the worm-heavy RD.
    rd_u = _unicast(rows, "RD")
    assert rd_u[LOADS[-1]] > rd_u[LOADS[0]]
