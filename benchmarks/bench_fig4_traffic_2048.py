"""Fig. 4 — latency vs traffic load on the 16×16×8 mesh (2048 nodes).

The larger-network counterpart of Fig. 3.  The paper's observation:
AB still performs best under light traffic, but its advantage over DB
diminishes on the larger mesh because its long third-step paths load
the network.  Asserted on the robust broadcast-latency series.
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.traffic_sweep import format_traffic_sweep, run_traffic_sweep

LOADS = [0.5, 4.0]

SCALE = ExperimentScale(
    name="bench",
    sources_per_point=2,
    batch_size=25,
    num_batches=4,
    discard=1,
    max_sim_time_us=60_000.0,
)


def _bcast(rows, algorithm):
    return {
        r.load_messages_per_ms: r.broadcast_mean_latency_us
        for r in rows
        if r.algorithm == algorithm
    }


def test_fig4_traffic_16x16x8(once):
    def both():
        fig4 = run_traffic_sweep("fig4", scale=SCALE, seed=0, loads=LOADS)
        fig3 = run_traffic_sweep(
            "fig3", scale=SCALE, seed=0, loads=LOADS, algorithms=["DB", "AB"]
        )
        return fig3, fig4

    fig3, fig4 = once(both)
    print()
    print(format_traffic_sweep(fig4))

    rd, db, ab = _bcast(fig4, "RD"), _bcast(fig4, "DB"), _bcast(fig4, "AB")
    for load in LOADS:
        if None in (rd.get(load), db.get(load), ab.get(load)):
            continue
        assert ab[load] < rd[load], load
        assert db[load] < rd[load], load

    # AB's lead over DB diminishes on the larger network (paper §3.3):
    # compare the DB/AB broadcast-latency ratio at light load.
    db3, ab3 = _bcast(fig3, "DB"), _bcast(fig3, "AB")
    light = LOADS[0]
    if None not in (db3.get(light), ab3.get(light), db.get(light), ab.get(light)):
        margin_small = db3[light] / ab3[light]
        margin_large = db[light] / ab[light]
        assert margin_large < margin_small * 1.25
