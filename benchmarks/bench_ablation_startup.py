"""Ablation — start-up latency Ts ∈ {0.15, 1.5} µs (paper §3).

The step-count argument rests on Ts dominating per-worm cost.  With
Ts = 0.15 µs the gap between RD (log2 N steps) and AB (3 steps)
narrows; this ablation quantifies the sensitivity.
"""

from repro.experiments.ablations import run_startup_latency_ablation
from repro.experiments.reporting import format_table


def _latency(rows, algorithm, ts):
    for row in rows:
        if row.algorithm == algorithm and row.value == ts:
            return row.mean_latency_us
    raise KeyError((algorithm, ts))


def test_ablation_startup_latency(once):
    rows = once(run_startup_latency_ablation, scale="smoke", seed=0)
    print()
    print(format_table(rows))

    # The RD/AB gap shrinks when start-ups get cheap.
    gap_high = _latency(rows, "RD", 1.5) / _latency(rows, "AB", 1.5)
    gap_low = _latency(rows, "RD", 0.15) / _latency(rows, "AB", 0.15)
    assert gap_low < gap_high
    # But the ordering survives at both settings.
    for ts in (0.15, 1.5):
        assert _latency(rows, "AB", ts) < _latency(rows, "DB", ts)
        assert _latency(rows, "DB", ts) < _latency(rows, "RD", ts)
