"""Throughput under heavy mixed traffic (paper §3.3's second metric).

"The proposed DB and AB algorithms offer a much better performance for
both network throughput and communication latency over EDN and RD."
Accepted throughput is operations completed per unit time at a fixed
offered load past RD/EDN's saturation point.
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.traffic_sweep import run_traffic_sweep

LOAD = 16.0  # msgs/ms/node — past RD/EDN saturation on 8x8x8

SCALE = ExperimentScale(
    name="bench",
    sources_per_point=2,
    batch_size=30,
    num_batches=5,
    discard=1,
    max_sim_time_us=60_000.0,
)


def test_throughput_at_heavy_load(once):
    rows = once(run_traffic_sweep, "fig3", scale=SCALE, seed=0, loads=[LOAD])
    by_algo = {r.algorithm: r for r in rows}
    print()
    for name, row in by_algo.items():
        print(
            f"  {name:<4s} throughput={row.throughput_msgs_per_us:8.4f} ops/us"
            f"  ops={row.operations}  saturated={row.saturated}"
        )

    # The coded-path algorithms complete the same operation count in
    # less simulated time → higher accepted throughput.
    assert (
        by_algo["AB"].throughput_msgs_per_us
        >= by_algo["RD"].throughput_msgs_per_us * 0.95
    )
    assert (
        by_algo["DB"].throughput_msgs_per_us
        >= by_algo["RD"].throughput_msgs_per_us * 0.95
    )
    # Nobody drops operations: completed == generated unless capped.
    for row in rows:
        if not row.saturated:
            assert row.operations == SCALE.batch_size * SCALE.num_batches
