"""Campaign engine — wall-clock speedup at 1/2/4 workers.

Runs a fixed broadcast campaign (the Fig. 2 grid at smoke scale, whose
barrier twins make units meaty enough to amortise process start-up)
through the worker pool at increasing worker counts, printing the
measured speedups and asserting the determinism contract: every worker
count produces byte-identical records.

Speedup itself is hardware-dependent and is printed, not asserted —
except that the parallel runs must not collapse (finish at all).
"""

import time

from repro.campaigns.pool import run_campaign
from repro.experiments.fig2 import fig2_campaign

WORKER_COUNTS = (1, 2, 4)


def _timed_run(spec, workers):
    started = time.perf_counter()
    records = run_campaign(spec, workers=workers)
    return records, time.perf_counter() - started


def test_campaign_scaling(once):
    spec = fig2_campaign(scale="smoke", seed=0)

    def sweep():
        return {w: _timed_run(spec, w) for w in WORKER_COUNTS}

    results = once(sweep)

    baseline_records, baseline_s = results[1]
    print()
    print(f"campaign {spec.name}: {len(spec)} units")
    for workers in WORKER_COUNTS:
        records, elapsed = results[workers]
        speedup = baseline_s / elapsed if elapsed else float("inf")
        print(
            f"  workers={workers}: {elapsed:6.2f}s"
            f"  speedup x{speedup:4.2f}"
        )
        # Determinism: sharding may only change wall-clock time.
        assert records == baseline_records
