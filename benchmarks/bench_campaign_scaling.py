"""Campaign engine — worker-pool speedup and fifo vs adaptive makespan.

Runs a fixed broadcast campaign (the Fig. 2 grid at smoke scale, whose
barrier twins make units meaty enough to amortise process start-up)
through the worker pool at increasing worker counts, printing the
measured speedups and asserting the determinism contract: every worker
count produces byte-identical records.

A second benchmark compares the scheduling policies: using each unit's
*measured* serial duration, it simulates greedy list scheduling of the
fifo (declaration) order against the adaptive (largest-estimated-cost
first) order and prints both makespans per worker count.  The Fig. 2
grid declares its largest meshes last, so fifo strands the slowest
cells at the end of the run while adaptive front-loads them — the
makespan gap is the scheduler's win.

Speedup itself is hardware-dependent and is printed, not asserted —
except that the parallel runs must not collapse (finish at all).
"""

import time

from repro.campaigns.pool import estimate_unit_cost, order_units, run_campaign
from repro.experiments.config import ExperimentScale
from repro.experiments.fig2 import fig2_campaign
from repro.experiments.traffic_sweep import traffic_campaign

WORKER_COUNTS = (1, 2, 4)


def _timed_run(spec, workers):
    started = time.perf_counter()
    records = run_campaign(spec, workers=workers)
    return records, time.perf_counter() - started


def test_campaign_scaling(once):
    spec = fig2_campaign(scale="smoke", seed=0)

    def sweep():
        return {w: _timed_run(spec, w) for w in WORKER_COUNTS}

    results = once(sweep)

    baseline_records, baseline_s = results[1]
    print()
    print(f"campaign {spec.name}: {len(spec)} units")
    for workers in WORKER_COUNTS:
        records, elapsed = results[workers]
        speedup = baseline_s / elapsed if elapsed else float("inf")
        print(
            f"  workers={workers}: {elapsed:6.2f}s"
            f"  speedup x{speedup:4.2f}"
        )
        # Determinism: sharding may only change wall-clock time.
        assert records == baseline_records


def test_single_point_shard_scaling(once):
    """Makespan of ONE heavy traffic point vs its shard count.

    The intra-unit parallelism win: an unsharded point is a single
    unit, so extra workers cannot help it; `--shards K` fans the same
    point out into K sub-units that a K-worker pool drains together.
    Wall-clock speedup is hardware-dependent and printed, not asserted
    (single-vCPU CI can't show it); the asserted invariants are that
    the sharded spec's records are byte-identical at every worker
    count and that the shard fan-out really dispatches K units.
    """

    # One heavy load point on the fig3 mesh: the paper's 21-batch
    # budget (so shards=4 keeps a 5-batch retained slice each) with
    # quick-sized batches, ~4x the quick-scale point.
    heavy = ExperimentScale(
        name="bench-heavy",
        sources_per_point=1,
        batch_size=15,
        num_batches=21,
        discard=1,
        max_sim_time_us=120_000.0,
    )

    def point(shards):
        return traffic_campaign(
            "fig3",
            scale=heavy,
            loads=[4.0],
            algorithms=["DB"],
            shards=shards,
        )

    def sweep():
        results = {}
        serial_unsharded = _timed_run(point(1), 1)
        results["unsharded"] = serial_unsharded
        for shards in (2, 4):
            spec = point(shards)
            serial = _timed_run(spec, 1)
            parallel = _timed_run(spec, shards)
            # Determinism: fan-out may only change wall-clock time.
            assert parallel[0] == serial[0]
            results[shards] = (serial, parallel)
        return results

    results = once(sweep)
    _, unsharded_s = results["unsharded"]
    print()
    print("single fig3 point (load=4, 21 batches of 15 ops):")
    print(f"  shards=1:                 {unsharded_s:6.2f}s (one unit)")
    for shards in (2, 4):
        (records, serial_s), (_, parallel_s) = results[shards]
        speedup = serial_s / parallel_s if parallel_s else float("inf")
        print(
            f"  shards={shards} workers={shards}:       {parallel_s:6.2f}s"
            f"  (serial {serial_s:6.2f}s, speedup x{speedup:4.2f})"
        )
        assert records[0].result["shards"] == shards


def _list_schedule_makespan(durations, workers):
    """Makespan of greedy list scheduling: each unit goes to the
    earliest-free worker, in the given dispatch order."""
    heads = [0.0] * workers
    for duration in durations:
        slot = min(range(workers), key=heads.__getitem__)
        heads[slot] += duration
    return max(heads)


def test_fifo_vs_adaptive_makespan(once):
    spec = fig2_campaign(scale="smoke", seed=0)

    def measure():
        records = run_campaign(spec)
        return {r.unit_hash: r.elapsed_s for r in records}

    elapsed_by_hash = once(measure)

    # The cost estimate must broadly agree with reality for the
    # largest-first heuristic to mean anything: the most expensive
    # *measured* unit should rank in the estimate's top half (a loose
    # bound on purpose — smoke units run for milliseconds, and timing
    # noise must not flake the benchmark).
    by_estimate = order_units(spec.units, "adaptive")
    slowest = max(spec.units, key=lambda u: elapsed_by_hash[u.unit_hash])
    assert by_estimate.index(slowest) < max(len(spec) // 2, 1), (
        f"cost model ranks the slowest unit ({slowest}) at position"
        f" {by_estimate.index(slowest)}/{len(spec)}"
    )

    print()
    print(f"campaign {spec.name}: simulated list-schedule makespan")
    serial_total = sum(elapsed_by_hash.values())
    estimates = {u.unit_hash: estimate_unit_cost(u) for u in spec.units}
    for workers in WORKER_COUNTS[1:]:
        measured, estimated = {}, {}
        for schedule in ("fifo", "adaptive"):
            order = order_units(spec.units, schedule)
            measured[schedule] = _list_schedule_makespan(
                [elapsed_by_hash[u.unit_hash] for u in order], workers
            )
            estimated[schedule] = _list_schedule_makespan(
                [estimates[u.unit_hash] for u in order], workers
            )
        gain = measured["fifo"] / measured["adaptive"]
        print(
            f"  workers={workers}: fifo {measured['fifo']:6.2f}s"
            f"  adaptive {measured['adaptive']:6.2f}s"
            f"  (x{gain:4.2f}, serial {serial_total:6.2f}s)"
        )
        # Deterministic invariant (no wall-clock in it): under the
        # cost model itself, largest-first never loses to declaration
        # order on this grid (the big meshes are declared last) and
        # cannot beat the perfect-balance bound.  The measured gain
        # above is hardware-dependent and printed, not asserted.
        assert estimated["adaptive"] <= estimated["fifo"] * 1.0001
        total_estimate = sum(estimates.values())
        assert estimated["adaptive"] >= total_estimate / workers * 0.9999

    # The dispatch order changes makespan only: records are identical.
    assert run_campaign(spec, schedule="adaptive") == run_campaign(spec)
