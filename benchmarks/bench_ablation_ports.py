"""Ablation — injection-port budget.

EDN is built for multiport routers (the paper gives it 3 ports); RD
"is often unable to take advantage of this architecture".  Running all
four algorithms at 1/2/3 ports isolates how much of each algorithm's
performance is port budget rather than schedule structure.
"""

from repro.experiments.ablations import run_port_count_ablation
from repro.experiments.reporting import format_table


def _latency(rows, algorithm, ports):
    for row in rows:
        if row.algorithm == algorithm and row.value == ports:
            return row.mean_latency_us
    raise KeyError((algorithm, ports))


def test_ablation_port_count(once):
    rows = once(run_port_count_ablation, scale="smoke", seed=0)
    print()
    print(format_table(rows))

    # EDN gains from every extra port (3-port sends per step).
    assert _latency(rows, "EDN", 3) < _latency(rows, "EDN", 1)
    # RD sends once per node per step: ports beyond 1 buy nothing.
    rd1, rd3 = _latency(rows, "RD", 1), _latency(rows, "RD", 3)
    assert abs(rd3 - rd1) / rd1 < 0.05
    # DB and AB need their second port (source sends two worms in step 1).
    assert _latency(rows, "DB", 2) < _latency(rows, "DB", 1)
    assert _latency(rows, "AB", 2) < _latency(rows, "AB", 1)
    # With everyone at 3 ports, AB still wins (structure, not ports).
    assert _latency(rows, "AB", 3) < _latency(rows, "RD", 3)
    assert _latency(rows, "AB", 3) < _latency(rows, "EDN", 3)
