"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the cost of the machinery everything
else stands on: event throughput of the DES kernel, wormhole path
transmission, and schedule construction, so performance regressions in
the substrate are visible in CI.
"""

from repro.core import DeterministicBroadcast, RecursiveDoubling
from repro.network import (
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Schedule and drain 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        env.process(ticker(env, 10_000))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


def test_kernel_resource_contention(benchmark):
    """1000 processes contending for a single-slot resource."""

    def run():
        from repro.sim import Resource

        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(0.001)

        for _ in range(1000):
            env.process(user(env, res))
        env.run()
        return res.grants

    assert benchmark(run) == 1000


def test_wormhole_transmission_rate(benchmark):
    """200 sequential unicasts across an 8x8 mesh."""
    mesh = Mesh((8, 8))
    dor = DimensionOrdered(mesh)

    def run():
        net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
        for i in range(200):
            src = (i % 8, (i // 8) % 8)
            dst = ((i + 3) % 8, (i + 5) % 8)
            if src == dst:
                continue
            msg = Message(source=src, destinations={dst}, length_flits=32)
            PathTransmission(
                net, msg, path=Path(dor.path(src, dst), deliveries=[dst])
            ).start()
        net.run()
        return net.now

    assert benchmark(run) > 0


def test_schedule_construction_rate(benchmark):
    """Build RD + DB schedules for a 4096-node mesh."""
    mesh = Mesh((16, 16, 16))

    def run():
        rd = RecursiveDoubling(mesh).schedule((3, 4, 5))
        db = DeterministicBroadcast(mesh).schedule((3, 4, 5))
        return rd.total_sends() + db.total_sends()

    # RD sends one unicast per non-source node; DB's worm count is
    # construction-dependent but far smaller.
    total = benchmark(run)
    assert 4095 < total < 4095 + 600
