"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the cost of the machinery everything
else stands on: event throughput of the DES kernel, wormhole path
transmission, and schedule construction, so performance regressions in
the substrate are visible in CI.

Each workload is a plain module-level function so
``tools/bench_report.py`` can time them outside pytest and emit
``BENCH_kernel.json``; the pytest wrappers below keep them runnable
under pytest-benchmark as well.
"""

from repro.core import DeterministicBroadcast, RecursiveDoubling
from repro.network import (
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path
from repro.sim import Environment


# ------------------------------------------------------------- workloads
def run_event_throughput(n: int = 10_000) -> float:
    """Schedule and drain ``n`` timeout events through one process."""
    env = Environment()

    def ticker(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(ticker(env, n))
    env.run()
    return env.now


def run_hold_throughput(n: int = 10_000) -> float:
    """Schedule and drain ``n`` zero-allocation holds through one process."""
    env = Environment()

    def ticker(env, n):
        hold = getattr(env, "hold", env.timeout)  # seed kernels lack hold()
        for _ in range(n):
            yield hold(1.0)

    env.process(ticker(env, n))
    env.run()
    return env.now


def run_resource_contention(n: int = 1000) -> int:
    """``n`` processes contending for a single-slot resource."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(0.001)

    for _ in range(n):
        env.process(user(env, res))
    env.run()
    return res.grants


def run_uncontended_requests(n: int = 5000) -> int:
    """One process acquiring and releasing an always-free resource."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res, n):
        for _ in range(n):
            with res.request() as req:
                yield req
                yield env.timeout(0.001)

    env.process(user(env, res, n))
    env.run()
    return res.grants


def run_wormhole_rate(n: int = 200) -> float:
    """``n`` sequential unicasts across an 8x8 mesh."""
    mesh = Mesh((8, 8))
    dor = DimensionOrdered(mesh)
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    for i in range(n):
        src = (i % 8, (i // 8) % 8)
        dst = ((i + 3) % 8, (i + 5) % 8)
        if src == dst:
            continue
        msg = Message(source=src, destinations={dst}, length_flits=32)
        PathTransmission(
            net, msg, path=Path(dor.path(src, dst), deliveries=[dst])
        ).start()
    net.run()
    return net.now


def run_schedule_construction() -> int:
    """Build RD + DB schedules for a 4096-node mesh."""
    mesh = Mesh((16, 16, 16))
    rd = RecursiveDoubling(mesh).schedule((3, 4, 5))
    db = DeterministicBroadcast(mesh).schedule((3, 4, 5))
    return rd.total_sends() + db.total_sends()


#: Workloads timed by ``tools/bench_report.py``.  ``events`` is the
#: kernel-event count of one round, used to derive events/second.
WORKLOADS = {
    "event_throughput": {"fn": run_event_throughput, "rounds": 5, "events": 10_000},
    "hold_throughput": {"fn": run_hold_throughput, "rounds": 5, "events": 10_000},
    "resource_contention": {"fn": run_resource_contention, "rounds": 5, "events": 3000},
    "uncontended_requests": {"fn": run_uncontended_requests, "rounds": 5, "events": 10_000},
    "wormhole_8x8": {"fn": run_wormhole_rate, "rounds": 5},
    "schedule_construction": {"fn": run_schedule_construction, "rounds": 3},
}


# ---------------------------------------------------------- pytest wrappers
def test_kernel_event_throughput(benchmark):
    """Schedule and drain 10k timeout events."""
    assert benchmark(run_event_throughput) == 10_000.0


def test_kernel_hold_throughput(benchmark):
    """Schedule and drain 10k holds (the zero-allocation fast path)."""
    assert benchmark(run_hold_throughput) == 10_000.0


def test_kernel_resource_contention(benchmark):
    """1000 processes contending for a single-slot resource."""
    assert benchmark(run_resource_contention) == 1000


def test_kernel_uncontended_requests(benchmark):
    """5000 immediate grants on an always-free resource."""
    assert benchmark(run_uncontended_requests) == 5000


def test_wormhole_transmission_rate(benchmark):
    """200 sequential unicasts across an 8x8 mesh."""
    assert benchmark(run_wormhole_rate) > 0


def test_schedule_construction_rate(benchmark):
    """Build RD + DB schedules for a 4096-node mesh."""
    # RD sends one unicast per non-source node; DB's worm count is
    # construction-dependent but far smaller.
    total = benchmark(run_schedule_construction)
    assert 4095 < total < 4095 + 600
