"""Extension — path-based multicast vs unicast-based multicast.

The paper's future-work operation.  Asserts the multidestination
advantage: dual-path latency is flat in the destination-set size while
unicast-based multicast grows linearly.
"""

import numpy as np

from repro.core import EventDrivenExecutor
from repro.core.multicast import DualPathMulticast, UnicastMulticast
from repro.network import Mesh, NetworkConfig, NetworkSimulator

DIMS = (8, 8)
SOURCE = (3, 3)


def _latency(scheme_cls, destinations):
    mesh = Mesh(DIMS)
    scheme = scheme_cls(mesh)
    network = NetworkSimulator(
        mesh, NetworkConfig(ports_per_node=scheme.ports_required)
    )
    outcome = EventDrivenExecutor(network).execute(
        scheme.schedule(SOURCE, destinations), 64
    )
    return outcome.network_latency


def _sweep():
    rng = np.random.default_rng(0)
    nodes = [n for n in Mesh(DIMS).nodes() if n != SOURCE]
    results = {}
    for count in (4, 16, 63):
        picks = rng.choice(len(nodes), size=count, replace=False)
        destinations = [nodes[i] for i in picks]
        results[count] = (
            _latency(DualPathMulticast, destinations),
            _latency(UnicastMulticast, destinations),
        )
    return results


def test_multicast_dual_path_vs_unicast(once):
    results = once(_sweep)
    print()
    for count, (dual, uni) in results.items():
        print(f"  |D|={count:>3d}: dual={dual:7.3f} us  unicast={uni:7.3f} us")

    for count, (dual, uni) in results.items():
        assert dual < uni, count
    # Dual-path is ~flat in |D|; unicast grows ~linearly.
    dual_growth = results[63][0] / results[4][0]
    uni_growth = results[63][1] / results[4][1]
    assert dual_growth < 1.5
    assert uni_growth > 8.0
