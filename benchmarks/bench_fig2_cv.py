"""Fig. 2 — coefficient of variation of arrival times vs network size.

Regenerates the four CV-vs-size series and asserts the structural
orderings: AB has the tightest arrival times everywhere, and the
coded-path algorithms beat EDN under step-synchronised semantics.
"""

from repro.experiments.fig2 import format_fig2, run_fig2


def _series(rows, algorithm, barrier=False):
    return {
        r.num_nodes: (r.mean_cv_barrier if barrier else r.mean_cv)
        for r in rows
        if r.algorithm == algorithm
    }


def test_fig2_coefficient_of_variation(once):
    rows = once(run_fig2, scale="smoke", seed=0)
    print()
    print(format_fig2(rows))

    ab = _series(rows, "AB")
    for name in ("RD", "EDN", "DB"):
        other = _series(rows, name)
        for nodes, cv in ab.items():
            assert cv < other[nodes], (name, nodes)

    # Under step-barrier semantics EDN beats RD (the paper's ordering)
    # and AB remains the best.
    rd_b = _series(rows, "RD", barrier=True)
    edn_b = _series(rows, "EDN", barrier=True)
    ab_b = _series(rows, "AB", barrier=True)
    for nodes in rd_b:
        assert edn_b[nodes] < rd_b[nodes]
        assert ab_b[nodes] < edn_b[nodes]
