"""Benchmarks of the batched broadcast engine vs the event-driven path.

The batched engine (:mod:`repro.core.batch_broadcast`) advances every
eligible source of a (dims, algorithm, fan-out) cell together through
one structure-of-arrays numpy sweep instead of paying a fresh network
and a private event heap per source.  These workloads price both sides
of that trade on the same cells:

* ``batch_event_*`` / ``batch_batched_*`` — identical source lists run
  through :func:`repro.experiments.common.run_single_broadcasts` and
  :func:`repro.core.batch_broadcast.run_batch_broadcasts`; the ratio of
  their per-source rates is the engine's speedup (the PR target is
  >= 5x, and results are bit-identical so this is pure win).
* ``batch_fallback_*`` — a short-message cell whose worms outrun their
  first delivery, so every source fails the sweep's wave-eligibility
  check *after* planning: the workload prices the wasted plan + sweep
  on top of the per-source event fallback (the overhead ``--engine
  auto`` risks on ineligible cells).

Each workload is a plain module-level function so
``tools/bench_report.py --suite batch`` can time them outside pytest
and gate them in CI; the pytest wrappers keep them runnable under
pytest-benchmark as well.
"""

from repro.core.batch_broadcast import run_batch_broadcasts
from repro.experiments.common import random_sources, run_single_broadcasts

LENGTH = 512  # the paper's long-message operating point (flits)


def _sources(dims, count, seed=0):
    return random_sources(dims, count, seed)


def run_event_cell(
    dims=(16, 16), count=250, length=LENGTH, algorithm="DB"
) -> int:
    """Event-driven reference: one fresh network + heap per source."""
    outcomes = run_single_broadcasts(
        algorithm, dims, _sources(dims, count), length
    )
    return len(outcomes)


def run_batched_cell(
    dims=(16, 16), count=250, length=LENGTH, algorithm="DB"
) -> int:
    """The same cell through the structure-of-arrays sweep."""
    outcomes = run_batch_broadcasts(
        algorithm, dims, _sources(dims, count), length
    )
    return len(outcomes)


def run_batched_cell_32(count=1000) -> int:
    """A thousand-source 32x32 cell — the scale the engine exists for."""
    return run_batched_cell(dims=(32, 32), count=count)


def run_fallback_cell(dims=(16, 16), count=250, length=4) -> int:
    """Worst-case ineligibility: plan + sweep wasted, then event re-run.

    With L=4 flits almost every worm's walk outruns its first delivery
    (remaining hops >= L-1), so the sweep proves nothing and every
    source falls back — this workload minus ``run_event_cell`` at the
    same count is the price of *trying* to batch.
    """
    outcomes = run_batch_broadcasts("DB", dims, _sources(dims, count), length)
    return len(outcomes)


WORKLOADS = {
    "batch_event_16x16_db512": {
        "fn": run_event_cell,
        "rounds": 3,
        "warmup": 0,
        "events": 250,
    },
    "batch_batched_16x16_db512": {
        "fn": run_batched_cell,
        "rounds": 5,
        "warmup": 1,
        "events": 250,
    },
    "batch_batched_32x32_db512": {
        "fn": run_batched_cell_32,
        "rounds": 1,
        "warmup": 0,
        "events": 1000,
    },
    "batch_fallback_16x16_db4": {
        "fn": run_fallback_cell,
        "rounds": 1,
        "warmup": 0,
        "events": 250,
    },
}


# ---------------------------------------------------------- pytest wrappers
def test_batch_event_cell(benchmark):
    """Event-driven 250-source 16x16 DB cell (the reference)."""
    assert benchmark(run_event_cell) == 250


def test_batch_batched_cell(benchmark):
    """Batched 250-source 16x16 DB cell (bit-identical, vector speed)."""
    assert benchmark(run_batched_cell) == 250


def test_batch_fallback_cell(benchmark):
    """Short-message cell where every source fails eligibility."""
    assert benchmark(run_fallback_cell) == 250
