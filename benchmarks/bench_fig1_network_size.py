"""Fig. 1 — broadcast latency vs network size (64 … 4096 nodes).

Regenerates the figure's four series at smoke scale and asserts the
paper's shape: RD and EDN latency grows with network size while DB and
AB stay nearly flat, with DB ≈ EDN at 4×4×4.
"""

from repro.experiments.fig1 import format_fig1, run_fig1


def _series(rows, algorithm):
    return {
        r.num_nodes: r.mean_latency_us for r in rows if r.algorithm == algorithm
    }


def test_fig1_network_size(once):
    rows = once(run_fig1, scale="smoke", seed=0)
    print()
    print(format_fig1(rows))

    rd, edn = _series(rows, "RD"), _series(rows, "EDN")
    db, ab = _series(rows, "DB"), _series(rows, "AB")
    small, large = 64, 4096

    # Growth: the step-bound algorithms degrade with size.
    assert rd[large] > 1.5 * rd[small]
    assert edn[large] > 1.5 * edn[small]
    # Scalability: DB/AB latency is nearly size-independent.
    assert db[large] < 1.15 * db[small]
    assert ab[large] < 1.15 * ab[small]
    # Ranking at every size: AB < DB and DB/AB below RD.
    for nodes in rd:
        assert ab[nodes] < db[nodes] < rd[nodes]
        assert edn[nodes] < rd[nodes]
    # DB and EDN are comparable on the smallest mesh (same step count).
    assert abs(db[small] - edn[small]) / edn[small] < 0.25
