#!/usr/bin/env python3
"""Benchmark runner emitting machine-readable ``BENCH_*.json`` reports.

Times the substrate workloads declared in ``benchmarks/bench_kernel.py``
(and smoke-scale experiment sweeps) with ``time.perf_counter`` — no
pytest needed — so the numbers can be tracked as a committed trajectory
and gated in CI.

Usage::

    # measure and write a report
    python tools/bench_report.py --suite kernel --suite fig1 --out BENCH_kernel.json

    # gate CI: fail when any shared benchmark is >30% slower than the
    # committed baseline's "results" section
    python tools/bench_report.py --suite kernel --suite fig1 \
        --baseline BENCH_kernel.json --max-regression 0.30

    # embed a previously captured report as the "before" numbers
    python tools/bench_report.py --suite kernel --merge-before seed.json \
        --out BENCH_kernel.json

See ``docs/performance.md`` for how to read the report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
for entry in (REPO / "src", REPO / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

SUITES = ("kernel", "batch", "fig1", "fig3", "obs")


def _kernel_workloads():
    import bench_kernel

    return dict(bench_kernel.WORKLOADS)


def _obs_workloads():
    # The tracing-overhead probe.  Producers default to NULL_TRACER,
    # so the kernel suite above *is* the tracing-disabled measurement
    # gated against BENCH_kernel.json; these workloads additionally
    # price the disabled and enabled call sites themselves:
    #
    #     python tools/bench_report.py --suite kernel --suite obs \
    #         --baseline BENCH_kernel.json
    from repro.obs.trace import ListSink, NULL_TRACER, Tracer

    def run_null_tracer(n: int = 200_000) -> int:
        tracer = NULL_TRACER
        for i in range(n):
            with tracer.span("unit.execute", cat="unit", unit="h"):
                tracer.event("lease.claim", unit="h")
        return n

    def run_live_tracer(n: int = 20_000) -> int:
        clock_value = 0.0

        def clock() -> float:
            nonlocal clock_value
            clock_value += 1e-6
            return clock_value

        tracer = Tracer(ListSink(), clock=clock, pid=1)
        for i in range(n):
            with tracer.span("unit.execute", cat="unit", unit="h"):
                tracer.event("lease.claim", unit="h")
        return n

    return {
        "null_tracer_span_event": {
            "fn": run_null_tracer,
            "rounds": 5,
            "events": 200_000,
        },
        "list_tracer_span_event": {
            "fn": run_live_tracer,
            "rounds": 5,
            "events": 20_000,
        },
    }


def _batch_workloads():
    import bench_batch_broadcast

    return dict(bench_batch_broadcast.WORKLOADS)


def _fig1_workloads():
    # fig1_smoke/fig2_smoke run the shipped default (--engine auto, so
    # eligible cells take the batched sweep); the *_event twins force
    # the per-source event engine on the same grids, so one report
    # records the end-to-end engine win alongside the kernel ratios.
    from repro.experiments.fig1 import run_fig1
    from repro.experiments.fig2 import run_fig2

    return {
        "fig1_smoke": {
            "fn": lambda: len(run_fig1(scale="smoke", seed=0)),
            "rounds": 1,
            "warmup": 0,
        },
        "fig1_smoke_event": {
            "fn": lambda: len(run_fig1(scale="smoke", seed=0, engine="event")),
            "rounds": 1,
            "warmup": 0,
        },
        "fig2_smoke": {
            "fn": lambda: len(run_fig2(scale="smoke", seed=0)),
            "rounds": 1,
            "warmup": 0,
        },
        "fig2_smoke_event": {
            "fn": lambda: len(run_fig2(scale="smoke", seed=0, engine="event")),
            "rounds": 1,
            "warmup": 0,
        },
    }


def _fig3_workloads():
    # The bench-scale fig3 sweep (8x8x8, three loads) — heavier; not
    # part of the CI smoke job but the reference point for traffic
    # throughput claims.
    from bench_fig3_traffic_512 import LOADS, SCALE

    from repro.experiments.traffic_sweep import run_traffic_sweep

    return {
        "fig3_traffic_512": {
            "fn": lambda: len(
                run_traffic_sweep("fig3", scale=SCALE, seed=0, loads=LOADS)
            ),
            "rounds": 3,
            "warmup": 0,
        }
    }


WORKLOAD_SOURCES = {
    "kernel": _kernel_workloads,
    "batch": _batch_workloads,
    "fig1": _fig1_workloads,
    "fig3": _fig3_workloads,
    "obs": _obs_workloads,
}


def calibrate(rounds: int = 3) -> float:
    """Machine-speed probe: best wall seconds of a fixed pure-Python loop.

    Recorded in every report and used to *normalize* baseline
    comparisons, so the regression gate measures code, not which
    machine class (developer VM vs CI runner) happens to be faster.
    The probe never changes with repository code.
    """
    def probe():
        acc = 0
        for i in range(500_000):
            acc = (acc + i * i) % 1000003
        return acc

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        probe()
        best = min(best, time.perf_counter() - start)
    return best


def time_workload(fn, rounds: int = 5, warmup: int = 1) -> dict:
    """Best/mean wall seconds of ``fn`` over ``rounds`` rounds."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "rounds": rounds,
    }


def run_suites(suites, progress=print) -> dict:
    results = {}
    for suite in suites:
        for name, spec in WORKLOAD_SOURCES[suite]().items():
            key = f"{suite}.{name}"
            entry = time_workload(
                spec["fn"],
                rounds=spec.get("rounds", 5),
                warmup=spec.get("warmup", 1),
            )
            events = spec.get("events")
            if events:
                entry["events"] = events
                entry["events_per_s"] = round(events / entry["best_s"])
            results[key] = entry
            if progress:
                rate = (
                    f", {entry['events_per_s']:,} events/s"
                    if events
                    else ""
                )
                progress(f"  {key}: best {entry['best_s']:.4f}s{rate}")
    return results


def compare(
    results: dict,
    baseline: dict,
    max_regression: float,
    progress=print,
    scale: float = 1.0,
):
    """Regressions of ``results`` vs ``baseline`` beyond the threshold.

    ``scale`` rescales baseline times to the current machine (current
    calibration / baseline calibration), so a slower CI runner does
    not read as a code regression — see :func:`calibrate`.
    """
    failures = []
    for key, base in sorted(baseline.items()):
        current = results.get(key)
        if current is None or "best_s" not in base:
            continue
        expected = base["best_s"] * scale
        ratio = current["best_s"] / expected - 1.0
        marker = "FAIL" if ratio > max_regression else "ok"
        if progress:
            progress(
                f"  {key}: {expected:.4f}s (norm.) -> {current['best_s']:.4f}s"
                f" ({ratio:+.1%}) {marker}"
            )
        if ratio > max_regression:
            failures.append((key, ratio))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        action="append",
        choices=SUITES,
        help="suite(s) to run (default: kernel)",
    )
    parser.add_argument("--out", default=None, metavar="FILE")
    parser.add_argument(
        "--label", default="", help="free-form label recorded in the report"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare against FILE's results section",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="fail when a benchmark is this much slower than baseline",
    )
    parser.add_argument(
        "--merge-before",
        default=None,
        metavar="FILE",
        help="embed FILE's results as the report's before numbers",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "re-measure benchmarks that exceed the regression threshold"
            " up to N times before failing (absorbs scheduler-phase"
            " noise on shared machines; a genuine regression fails"
            " every retry)"
        ),
    )
    args = parser.parse_args(argv)
    suites = args.suite or ["kernel"]

    print(f"benchmarking suites: {', '.join(suites)}")
    calibration_s = calibrate()
    print(f"  calibration: {calibration_s:.4f}s (machine-speed probe)")
    results = run_suites(suites)
    report = {
        "schema": 1,
        "label": args.label,
        "python": sys.version.split()[0],
        "calibration_s": calibration_s,
        "suites": suites,
        "results": results,
    }

    if args.merge_before:
        before_report = json.loads(Path(args.merge_before).read_text())
        before = before_report["results"]
        # Rescale the before times to this machine phase exactly as the
        # regression gate does (current calibration / before
        # calibration), so the recorded trajectory measures code, not
        # which phase of a shared machine each report happened to hit.
        before_cal = before_report.get("calibration_s")
        before_scale = calibration_s / before_cal if before_cal else 1.0
        report["before"] = before
        report["before_calibration_s"] = before_cal
        report["speedup"] = {
            key: round(
                before[key]["best_s"] * before_scale / entry["best_s"], 2
            )
            for key, entry in results.items()
            if key in before
        }
        print(f"speedup vs before (machine-speed x{before_scale:.2f}):")
        for key, ratio in sorted(report["speedup"].items()):
            print(f"  {key}: {ratio:.2f}x")

    exit_code = 0
    if args.baseline:
        baseline_report = json.loads(Path(args.baseline).read_text())
        baseline = baseline_report["results"]
        base_cal = baseline_report.get("calibration_s")
        scale = calibration_s / base_cal if base_cal else 1.0
        print(
            f"comparing against {args.baseline}"
            f" (max +{args.max_regression:.0%},"
            f" machine-speed normalisation x{scale:.2f}):"
        )
        failures = compare(results, baseline, args.max_regression, scale=scale)
        for attempt in range(args.retries):
            if not failures:
                break
            # Best-of-5 on a shared machine still lands in a slow
            # scheduler phase now and then; give only the flagged
            # benchmarks another chance and keep their best time.
            keys = [key for key, _ in failures]
            print(
                f"re-measuring {len(keys)} regressed benchmark(s)"
                f" (retry {attempt + 1}/{args.retries}): {', '.join(keys)}"
            )
            for key in keys:
                suite, name = key.split(".", 1)
                spec = WORKLOAD_SOURCES[suite]()[name]
                entry = time_workload(
                    spec["fn"],
                    rounds=spec.get("rounds", 5),
                    warmup=spec.get("warmup", 1),
                )
                if entry["best_s"] < results[key]["best_s"]:
                    results[key]["best_s"] = entry["best_s"]
                    events = results[key].get("events")
                    if events:
                        results[key]["events_per_s"] = round(
                            events / entry["best_s"]
                        )
            failures = compare(
                results, baseline, args.max_regression, scale=scale
            )
        if failures:
            worst = max(failures, key=lambda kv: kv[1])
            print(
                f"REGRESSION: {len(failures)} benchmark(s) slower than"
                f" baseline; worst {worst[0]} at {worst[1]:+.1%}"
            )
            exit_code = 1

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
