#!/usr/bin/env python
"""Check that relative links in the repo's markdown docs resolve.

Scans ``README.md`` and ``docs/*.md`` for ``[text](target)`` links
(``SNIPPETS.md`` etc. are excluded — they quote third-party material
whose links point outside this repo), skips external targets
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``), and
verifies every remaining target exists relative to the file that links
it. Exits non-zero listing each broken link.

Run from the repo root (CI's docs job does)::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.glob("*.md"))
    return [f for f in files if f.exists()]


def broken_links(files: Iterable[Path]) -> List[Tuple[Path, str]]:
    broken: List[Tuple[Path, str]] = []
    for source in files:
        text = source.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if not (source.parent / path_part).exists():
                broken.append((source, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    broken = broken_links(files)
    for source, target in broken:
        print(f"{source.relative_to(root)}: broken link -> {target}")
    if broken:
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
