#!/usr/bin/env python3
"""Validate a campaign trace spool (and its Perfetto export).

Checks the invariants the tracing subsystem promises, so CI can run a
traced campaign and fail loudly when a producer drifts from the record
schema of :mod:`repro.obs.trace`:

* every ``*.jsonl`` spool file opens with a ``meta`` record carrying
  the current ``TRACE_SCHEMA`` and a consistent pid;
* every span is well-formed (required fields, ``end_s >= start_s``)
  and every event carries a timestamp;
* there is at least one ``campaign`` span, and every ``unit.execute``
  span falls inside a campaign span's wall-clock window (the
  cross-process monotonic-clock alignment the exporter relies on);
* on lease-capable stores (any ``lease.*`` event present), every
  executed unit was claimed or stolen first, and the claim precedes
  the execute span's start;
* every ``unit.merge`` span names its unit and a shard count;
* every ``rpc.*`` event (a distributed run through the HTTP
  coordinator) names the operation it carries;
* every failure-domain event is well-formed: ``unit.error`` names its
  unit, error and attempt number, ``unit.retry`` its unit, attempt and
  backoff, ``unit.quarantine`` its unit and final attempt count, and
  ``pool.respawn`` how many in-flight units the crashed executor lost;
* an exported Chrome trace (``--chrome``) parses and contains only
  well-formed ``X``/``i``/``M`` events with non-negative durations.

Usage::

    python tools/check_trace.py campaigns/fig3-quick-s0.sqlite.traces
    python tools/check_trace.py <spool-dir> --chrome <spool-dir>/trace.json

Exit status 0 when every check passes, 1 otherwise (with one line per
violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.obs.trace import TRACE_SCHEMA, read_trace_file  # noqa: E402

SPAN_FIELDS = ("name", "cat", "id", "pid", "tid", "start_s", "end_s", "args")
EVENT_FIELDS = ("name", "cat", "pid", "tid", "ts_s", "args")

#: Slack (seconds) allowed when comparing timestamps across processes.
#: The clocks share one monotonic origin; this only absorbs float
#: rounding, not genuine skew.
EPS = 1e-6


def check_spool(trace_dir: Path):
    """Validate every spool file; returns (records, problems)."""
    problems = []
    records = []
    files = sorted(trace_dir.glob("*.jsonl"))
    if not files:
        return records, [f"{trace_dir}: no *.jsonl spool files"]
    for path in files:
        file_records = read_trace_file(path)
        if not file_records:
            problems.append(f"{path.name}: no loadable records")
            continue
        metas = [r for r in file_records if r.get("type") == "meta"]
        if not metas:
            problems.append(f"{path.name}: missing meta record")
        for meta in metas:
            if meta.get("schema") != TRACE_SCHEMA:
                problems.append(
                    f"{path.name}: schema {meta.get('schema')!r}"
                    f" != {TRACE_SCHEMA}"
                )
        pids = {r.get("pid") for r in file_records if "pid" in r}
        if len(pids) > 1:
            problems.append(f"{path.name}: mixed pids {sorted(pids)}")
        for record in file_records:
            kind = record.get("type")
            if kind == "span":
                missing = [f for f in SPAN_FIELDS if f not in record]
                if missing:
                    problems.append(
                        f"{path.name}: span missing {missing}: {record}"
                    )
                    continue
                if record["end_s"] < record["start_s"]:
                    problems.append(
                        f"{path.name}: span {record['name']!r} ends"
                        f" before it starts"
                    )
            elif kind == "event":
                missing = [f for f in EVENT_FIELDS if f not in record]
                if missing:
                    problems.append(
                        f"{path.name}: event missing {missing}: {record}"
                    )
            elif kind != "meta":
                problems.append(f"{path.name}: unknown record type {kind!r}")
        records.extend(file_records)
    return records, problems


def check_structure(records):
    """Cross-file invariants: campaign window, claims, merges."""
    problems = []
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]

    campaigns = [s for s in spans if s.get("name") == "campaign"]
    if not campaigns:
        problems.append("no campaign span recorded")

    executes = [s for s in spans if s.get("name") == "unit.execute"]
    for span in executes:
        inside = any(
            c["start_s"] - EPS <= span["start_s"]
            and span["end_s"] <= c["end_s"] + EPS
            for c in campaigns
        )
        if campaigns and not inside:
            unit = span.get("args", {}).get("unit", "?")
            problems.append(
                f"unit.execute {unit[:12]} outside every campaign span"
                " (clock misalignment?)"
            )
        if "unit" not in span.get("args", {}):
            problems.append("unit.execute span without a unit argument")

    lease_events = [e for e in events if e.get("cat") == "lease"]
    claims = {}
    for event in lease_events:
        if event["name"] in ("lease.claim", "lease.steal"):
            unit = event.get("args", {}).get("unit")
            if unit is not None and unit not in claims:
                claims[unit] = event["ts_s"]
    if lease_events:
        for span in executes:
            unit = span.get("args", {}).get("unit")
            if unit is None:
                continue
            if unit not in claims:
                problems.append(
                    f"unit {unit[:12]} executed without a lease.claim/steal"
                )
            elif claims[unit] > span["start_s"] + EPS:
                problems.append(
                    f"unit {unit[:12]} claimed after its execute span began"
                )

    for span in spans:
        if span.get("name") == "unit.merge":
            args = span.get("args", {})
            if "unit" not in args:
                problems.append("unit.merge span without a unit argument")
            if not args.get("shards"):
                problems.append("unit.merge span without a shard count")

    rpc_events = [e for e in events if e.get("cat") == "rpc"]
    for event in rpc_events:
        if not event.get("args", {}).get("op"):
            problems.append(
                f"rpc event {event.get('name')!r} without an op argument"
            )

    #: failure-domain event name → args every producer must attach.
    failure_schema = {
        "unit.error": ("unit", "error", "attempt"),
        "unit.retry": ("unit", "attempt", "backoff_s"),
        "unit.quarantine": ("unit", "attempts"),
        "pool.respawn": ("lost",),
    }
    failure_counts = {name: 0 for name in failure_schema}
    for event in events:
        required = failure_schema.get(event.get("name"))
        if required is None:
            continue
        failure_counts[event["name"]] += 1
        missing = [f for f in required if f not in event.get("args", {})]
        if missing:
            problems.append(
                f"{event['name']} event missing args {missing}: {event}"
            )

    return problems, {
        "spans": len(spans),
        "events": len(events),
        "executed": len(executes),
        "claimed": len(claims),
        "merged": sum(1 for s in spans if s.get("name") == "unit.merge"),
        "rpc": len(rpc_events),
        "rpc_retries": sum(
            1 for e in rpc_events if e.get("name") == "rpc.retry"
        ),
        "errors": failure_counts["unit.error"],
        "retries": failure_counts["unit.retry"],
        "quarantined": failure_counts["unit.quarantine"],
        "respawns": failure_counts["pool.respawn"],
    }


def check_chrome(path: Path):
    """Validate an exported Chrome trace document."""
    problems = []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        return [f"{path}: missing or empty traceEvents"]
    for event in trace_events:
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{path.name}: unknown phase {ph!r}")
        elif ph == "X" and (
            "ts" not in event or event.get("dur", -1.0) < 0.0
        ):
            problems.append(
                f"{path.name}: X event {event.get('name')!r}"
                " without ts/non-negative dur"
            )
        elif ph == "i" and "ts" not in event:
            problems.append(
                f"{path.name}: instant {event.get('name')!r} without ts"
            )
        if "name" not in event:
            problems.append(f"{path.name}: event without a name")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace_dir", help="campaign trace spool directory")
    parser.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="also validate an exported Chrome trace JSON",
    )
    parser.add_argument(
        "--expect-units",
        type=int,
        default=None,
        metavar="N",
        help="require exactly N executed units in the spool",
    )
    args = parser.parse_args(argv)

    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"FAIL: {trace_dir} is not a directory")
        return 1

    records, problems = check_spool(trace_dir)
    structure_problems, counts = check_structure(records)
    problems.extend(structure_problems)
    if args.expect_units is not None and counts["executed"] != args.expect_units:
        problems.append(
            f"expected {args.expect_units} executed unit(s),"
            f" found {counts['executed']}"
        )
    if args.chrome:
        problems.extend(check_chrome(Path(args.chrome)))

    for problem in problems:
        print(f"FAIL: {problem}")
    verdict = "FAIL" if problems else "ok"
    rpc_note = ""
    if counts["rpc"]:
        rpc_note = (
            f", {counts['rpc']} rpc ({counts['rpc_retries']} retried)"
        )
    failure_note = ""
    if counts["errors"] or counts["respawns"]:
        failure_note = (
            f", {counts['errors']} error(s) ({counts['retries']} retried,"
            f" {counts['quarantined']} quarantined,"
            f" {counts['respawns']} respawn(s))"
        )
    print(
        f"{verdict}: {trace_dir} — {counts['spans']} span(s),"
        f" {counts['events']} event(s), {counts['executed']} executed,"
        f" {counts['claimed']} claimed, {counts['merged']} merged"
        + rpc_note
        + failure_note
        + (f"; {len(problems)} problem(s)" if problems else "")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
