#!/usr/bin/env python
"""Mixed unicast/broadcast traffic under rising load (Figs. 3-4 scenario).

Every node generates Poisson traffic — 90% unicasts to uniform random
destinations, 10% broadcasts of the chosen algorithm — and the mean
communication latency is measured with the paper's batch-means protocol
as the load rises toward saturation.

Run:  python examples/mixed_traffic.py [--algos DB,AB] [--dims 8x8x8]
"""

import argparse

from repro.network import Mesh
from repro.traffic import MixedTrafficConfig, MixedTrafficSimulation


def parse_dims(text):
    return tuple(int(p) for p in text.lower().split("x"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algos", default="RD,EDN,DB,AB")
    parser.add_argument("--dims", type=parse_dims, default=(8, 8, 8))
    parser.add_argument(
        "--loads", default="1,2,4,8,16",
        help="comma-separated per-node loads in messages/ms",
    )
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    mesh = Mesh(args.dims)
    loads = [float(x) for x in args.loads.split(",")]
    algos = [a.strip().upper() for a in args.algos.split(",")]

    print(
        f"Mixed traffic on {'x'.join(map(str, args.dims))}"
        f" ({mesh.num_nodes} nodes), 10% broadcast, L=32 flits"
    )
    print(f"{'algo':<6s}{'load':>8s}{'all_us':>10s}{'uni_us':>10s}"
          f"{'bcast_us':>10s}{'ops':>7s}")
    for name in algos:
        for load in loads:
            config = MixedTrafficConfig(
                load_messages_per_ms=load,
                batch_size=args.batch_size,
                num_batches=args.batches,
                discard=1,
                seed=args.seed,
                max_sim_time_us=200_000.0,
            )
            stats = MixedTrafficSimulation(mesh, name, config).run()
            bcast = stats.broadcast_mean_latency_us
            print(
                f"{name:<6s}{load:>8.2f}{stats.mean_latency_us:>10.2f}"
                f"{stats.unicast_mean_latency_us or float('nan'):>10.2f}"
                f"{bcast if bcast is not None else float('nan'):>10.2f}"
                f"{stats.operations_completed:>7d}"
                + ("  (hit time cap)" if stats.saturated else "")
            )

    print(
        "\nLatency climbs with load; the step-heavy algorithms (RD, EDN)"
        " feed the network more worms per broadcast and saturate first."
    )


if __name__ == "__main__":
    main()
