#!/usr/bin/env python
"""Future-work topologies: broadcast on the k-ary n-cube and hypercube.

The paper closes: "A number of interconnection networks have been
proposed ... such as the k-ary n-cube and generalised hypercube.  An
interesting line of research would be to propose multicast and
broadcast algorithms for these common topologies."  This example runs
that line: a coded-path ring broadcast on the torus (one step per
dimension, two half-ring worms per holder) and the classic
dimension-sweep broadcast on the hypercube, compared against the
paper's mesh algorithms at equal node counts.

Run:  python examples/torus_extension.py
"""

from repro import Hypercube, Mesh, NetworkConfig, Torus, broadcast
from repro.core import BarrierStepExecutor, UnitStepExecutor
from repro.core.hypercube_broadcast import HypercubeBroadcast
from repro.core.torus_broadcast import TorusRingBroadcast

LENGTH_FLITS = 100
NODES = 512


def profile(label, algo, topology, source):
    config = NetworkConfig(ports_per_node=algo.ports_required)
    schedule = algo.schedule(source)
    outcome = UnitStepExecutor(topology, config).execute(schedule, LENGTH_FLITS)
    print(
        f"  {label:<22s} steps={schedule.num_steps:>2d}"
        f" worms={schedule.total_sends():>4d}"
        f" latency={outcome.network_latency:>7.3f} us"
        f" CV={outcome.coefficient_of_variation:.4f}"
    )
    return outcome


def main() -> None:
    print(f"Broadcast on {NODES}-node networks, L={LENGTH_FLITS} flits\n")

    print("Mesh 8x8x8 (the paper's algorithms):")
    mesh = Mesh((8, 8, 8))
    for name in ("RD", "DB", "AB"):
        outcome = broadcast(name, mesh, (0, 0, 0), LENGTH_FLITS)
        print(
            f"  {name:<22s} latency={outcome.network_latency:>7.3f} us"
            f" CV={outcome.coefficient_of_variation:.4f}"
        )

    print("\nTorus 8x8x8 (k-ary n-cube, wraparound links):")
    torus = Torus((8, 8, 8))
    profile("TORUS-RING (ours)", TorusRingBroadcast(torus), torus, (0, 0, 0))

    print("\nHypercube 2^9 (generalised hypercube):")
    cube = Hypercube(9)
    profile("HCUBE sweep", HypercubeBroadcast(cube), cube, (0,) * 9)

    print(
        "\nThe torus ring broadcast needs only n steps (3 here) because a"
        " wraparound ring is covered by two half-ring coded-path worms in"
        " one step; the hypercube sweep pays log2(N) = 9 start-ups, like"
        " RD on the mesh."
    )


if __name__ == "__main__":
    main()
