#!/usr/bin/env python
"""Scalability study (the paper's Fig. 1 scenario).

Sweeps 3-D mesh sizes from 64 to 4096 nodes and reports each
algorithm's mean single-source broadcast latency over randomly chosen
sources — showing why the coded-path algorithms scale: their step
count does not grow with the network.

Run:  python examples/scalability_study.py [--sources N]
"""

import argparse

import numpy as np

from repro import Mesh, algorithm_names, broadcast
from repro.analysis import step_count

SIZES = [(4, 4, 4), (8, 8, 8), (10, 10, 10), (16, 16, 16)]
LENGTH_FLITS = 100


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sources", type=int, default=3,
                        help="random sources per point (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rng = np.random.default_rng(args.seed)

    print(f"{'nodes':>7s}", end="")
    for name in algorithm_names():
        print(f"{name + ' us':>12s}{'steps':>6s}", end="")
    print()

    for dims in SIZES:
        mesh = Mesh(dims)
        sources = [
            tuple(int(rng.integers(0, d)) for d in dims)
            for _ in range(args.sources)
        ]
        print(f"{mesh.num_nodes:>7d}", end="")
        for name in algorithm_names():
            latencies = [
                broadcast(name, mesh, s, LENGTH_FLITS).network_latency
                for s in sources
            ]
            print(
                f"{np.mean(latencies):>12.3f}{step_count(name, dims):>6d}",
                end="",
            )
        print()

    print(
        "\nRD/EDN latency grows with network size (step counts grow);"
        " DB (4 steps) and AB (3 steps) stay nearly flat — Fig. 1's story."
    )


if __name__ == "__main__":
    main()
