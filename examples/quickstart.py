#!/usr/bin/env python
"""Quickstart: broadcast on a wormhole mesh with all four algorithms.

Builds the paper's 8x8x8 mesh, runs one broadcast per algorithm from
the same source, and prints the numbers the paper's comparison turns
on: message-passing steps, worms launched, network latency, and the
coefficient of variation of arrival times.

Run:  python examples/quickstart.py
"""

from repro import Mesh, NetworkConfig, algorithm_names, broadcast, get_algorithm
from repro.analysis import compare_algorithms

DIMS = (8, 8, 8)
SOURCE = (3, 4, 5)
LENGTH_FLITS = 100


def main() -> None:
    mesh = Mesh(DIMS)
    print(f"Mesh {'x'.join(map(str, DIMS))} = {mesh.num_nodes} nodes,"
          f" broadcast from {SOURCE}, L={LENGTH_FLITS} flits\n")

    header = (f"{'algo':<6s}{'steps':>6s}{'worms':>7s}{'latency_us':>12s}"
              f"{'mean_us':>9s}{'CV':>8s}")
    print(header)
    print("-" * len(header))
    for name in algorithm_names():
        algo = get_algorithm(name)(mesh)
        outcome = broadcast(name, mesh, SOURCE, LENGTH_FLITS)
        schedule = algo.schedule(SOURCE)
        print(
            f"{name:<6s}{schedule.num_steps:>6d}{schedule.total_sends():>7d}"
            f"{outcome.network_latency:>12.3f}{outcome.mean_latency:>9.3f}"
            f"{outcome.coefficient_of_variation:>8.4f}"
        )

    print("\nAnalytic profile (contention-free closed form):")
    for row in compare_algorithms(DIMS, LENGTH_FLITS, source=SOURCE):
        print(
            f"  {row.algorithm:<4s} steps={row.steps} "
            f"longest_path={row.longest_path_hops:>3d} hops "
            f"floor={row.latency_floor:6.2f} us "
            f"analytic={row.analytic_latency:6.2f} us"
        )

    print(
        "\nReading: RD needs log2(N) steps, EDN k+m+4, DB 4, AB 3 —"
        " and with Ts = 1.5 us per send, steps dominate latency."
    )


if __name__ == "__main__":
    main()
