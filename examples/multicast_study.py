#!/usr/bin/env python
"""Multicast: one coded-path worm vs a pile of unicasts.

The paper's conclusion proposes extending coded-path broadcast to
*multicast* — delivery to an arbitrary destination subset.  This example
compares the classic dual-path multicast (two multidestination worms
over a Hamiltonian ranking of the mesh) against unicast-based multicast
(one worm per destination) as the destination-set size grows.

Run:  python examples/multicast_study.py
"""

import numpy as np

from repro.core import EventDrivenExecutor
from repro.core.multicast import DualPathMulticast, UnicastMulticast, validate_multicast
from repro.network import Mesh, NetworkConfig, NetworkSimulator

DIMS = (8, 8)
SOURCE = (3, 3)
LENGTH_FLITS = 64


def run(scheme, destinations):
    schedule = scheme.schedule(SOURCE, destinations)
    validate_multicast(schedule, scheme.topology, destinations)
    network = NetworkSimulator(
        scheme.topology, NetworkConfig(ports_per_node=scheme.ports_required)
    )
    outcome = EventDrivenExecutor(network).execute(schedule, LENGTH_FLITS)
    return schedule, outcome


def main() -> None:
    mesh = Mesh(DIMS)
    rng = np.random.default_rng(0)
    nodes = [n for n in mesh.nodes() if n != SOURCE]

    print(f"Multicast from {SOURCE} on {'x'.join(map(str, DIMS))},"
          f" L={LENGTH_FLITS} flits\n")
    print(f"{'|D|':>5s}{'dual worms':>12s}{'dual us':>10s}"
          f"{'unicast worms':>15s}{'unicast us':>12s}{'speedup':>9s}")

    for count in (2, 4, 8, 16, 32, 63):
        picks = rng.choice(len(nodes), size=count, replace=False)
        destinations = [nodes[i] for i in picks]
        dual_sched, dual = run(DualPathMulticast(mesh), destinations)
        uni_sched, uni = run(UnicastMulticast(mesh), destinations)
        print(
            f"{count:>5d}{dual_sched.total_sends():>12d}"
            f"{dual.network_latency:>10.3f}{uni_sched.total_sends():>15d}"
            f"{uni.network_latency:>12.3f}"
            f"{uni.network_latency / dual.network_latency:>9.2f}x"
        )

    print(
        "\nThe dual-path scheme pays at most two start-up latencies no"
        " matter how many destinations; unicast-based multicast pays one"
        " per destination, serialised on the source's injection port."
    )


if __name__ == "__main__":
    main()
