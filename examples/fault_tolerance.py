#!/usr/bin/env python
"""Adaptive routing around channel faults.

The paper credits AB's turn-model adaptivity with "providing messages
with alternative paths inside the network".  This example makes that
concrete: random link faults are injected, and a west-first adaptive
worm routes around them while the dimension-ordered worm aborts.

Run:  python examples/fault_tolerance.py
"""

from repro.network import (
    FaultModel,
    FaultyChannelError,
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path, WestFirst

DIMS = (8, 8)
SOURCE = (0, 0)
DEST = (7, 7)


def try_deterministic(network):
    dor = DimensionOrdered(network.topology)
    message = Message(source=SOURCE, destinations={DEST}, length_flits=32)
    nodes = dor.path(SOURCE, DEST)
    process = PathTransmission(
        network, message, path=Path(nodes, deliveries=[DEST])
    ).start()
    try:
        network.run()
        return process.value
    except FaultyChannelError as exc:
        return exc


def try_adaptive(network):
    wf = WestFirst(network.topology)
    message = Message(source=SOURCE, destinations={DEST}, length_flits=32)
    process = PathTransmission(
        network, message, waypoints=[SOURCE, DEST], routing=wf, adaptive=True
    ).start()
    try:
        network.run()
        return process.value
    except FaultyChannelError as exc:
        return exc


def main() -> None:
    mesh = Mesh(DIMS)
    print(f"Unicast {SOURCE} -> {DEST} on {'x'.join(map(str, DIMS))} mesh")

    # Break one channel on the dimension-ordered route.
    network = NetworkSimulator(mesh, NetworkConfig(ports_per_node=1))
    FaultModel(network).fail_channel((3, 0), (4, 0))
    print("\nfaulted link: (3,0) <-> (4,0) — on the XY route")

    result = try_deterministic(network)
    if isinstance(result, FaultyChannelError):
        print(f"  dimension-ordered: ABORTED ({result})")
    else:  # pragma: no cover - depends on injected fault
        print(f"  dimension-ordered: delivered in {result.network_latency:.3f} us")

    network = NetworkSimulator(mesh, NetworkConfig(ports_per_node=1))
    FaultModel(network).fail_channel((3, 0), (4, 0))
    result = try_adaptive(network)
    if isinstance(result, FaultyChannelError):
        print(f"  west-first:        ABORTED ({result})")
    else:
        hops = len(result.visited) - 1
        print(
            f"  west-first:        delivered in {result.network_latency:.3f} us"
            f" over {hops} hops via {result.visited[1]}…"
        )

    print(
        "\nThe adaptive worm detours because west-first still has a legal"
        " minimal alternative at the faulted column; deterministic routing"
        " has exactly one path and fails with it."
    )


if __name__ == "__main__":
    main()
