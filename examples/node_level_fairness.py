#!/usr/bin/env python
"""Node-level arrival fairness (the paper's Fig. 2 / Tables 1-2 scenario).

The paper's second contribution is *measuring broadcast quality at the
node level*: two algorithms with the same completion latency can differ
wildly in how evenly destinations receive the message.  This example
computes the coefficient of variation of arrival times under both
execution semantics (locally-causal and step-barrier) and prints an
arrival-time histogram so the difference is visible.

Run:  python examples/node_level_fairness.py
"""

import numpy as np

from repro import Mesh, NetworkConfig, algorithm_names, get_algorithm
from repro.core import BarrierStepExecutor, EventDrivenExecutor
from repro.core.adaptive_broadcast import AdaptiveBroadcast
from repro.network import NetworkSimulator

DIMS = (8, 8, 8)
SOURCE = (2, 5, 3)
LENGTH_FLITS = 64
BINS = 8


def histogram(latencies, bins=BINS, width=40):
    counts, edges = np.histogram(latencies, bins=bins)
    peak = counts.max() or 1
    lines = []
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {lo:7.2f}-{hi:7.2f} us |{bar:<{width}s}| {count}")
    return "\n".join(lines)


def main() -> None:
    mesh = Mesh(DIMS)
    print(f"Arrival-time spread, {'x'.join(map(str, DIMS))} mesh,"
          f" source {SOURCE}, L={LENGTH_FLITS} flits\n")
    for name in algorithm_names():
        algo = get_algorithm(name)(mesh)
        config = NetworkConfig(ports_per_node=algo.ports_required)
        schedule = algo.schedule(SOURCE)

        network = NetworkSimulator(mesh, config)
        routing = AdaptiveBroadcast.make_routing(mesh) if algo.adaptive else None
        event = EventDrivenExecutor(network, adaptive_routing=routing).execute(
            schedule, LENGTH_FLITS
        )
        barrier = BarrierStepExecutor(mesh, config).execute(
            schedule, LENGTH_FLITS
        )

        print(
            f"{name}: steps={schedule.num_steps}"
            f"  CV(event)={event.coefficient_of_variation:.4f}"
            f"  CV(barrier)={barrier.coefficient_of_variation:.4f}"
        )
        print(histogram(event.latencies()))
        print()

    print(
        "The coded-path algorithms deliver most nodes in their final one"
        " or two steps over multidestination worms, so arrivals cluster;"
        " RD and EDN spread arrivals across their longer step sequences."
    )


if __name__ == "__main__":
    main()
