#!/usr/bin/env python
"""Visualise how each algorithm floods the mesh.

Prints, for each of the paper's four algorithms, the step at which
every node of an 8×8 mesh receives the broadcast, and the arrival-time
heatmap of the simulated run — the coded-path algorithms' coverage
pattern (corners first, then whole boundary worms, then parallel fill)
is immediately visible next to RD's recursive halving.

Run:  python examples/visualize_schedules.py [--dims 8x8] [--source 0,0]
"""

import argparse

from repro import Mesh, algorithm_names, broadcast, get_algorithm
from repro.analysis.visualize import arrival_heatmap, receive_step_map


def parse_dims(text):
    return tuple(int(p) for p in text.lower().split("x"))


def parse_coord(text):
    return tuple(int(p) for p in text.split(","))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dims", type=parse_dims, default=(8, 8))
    parser.add_argument("--source", type=parse_coord, default=None)
    args = parser.parse_args()

    mesh = Mesh(args.dims)
    source = args.source or tuple(d // 2 for d in args.dims)

    for name in algorithm_names():
        algo = get_algorithm(name)(mesh)
        schedule = algo.schedule(source)
        outcome = broadcast(name, mesh, source, length_flits=64)
        print(f"== {name}: {schedule.num_steps} steps,"
              f" {schedule.total_sends()} worms,"
              f" CV={outcome.coefficient_of_variation:.3f}")
        print(receive_step_map(schedule, mesh))
        print(arrival_heatmap(outcome, mesh))
        print()


if __name__ == "__main__":
    main()
