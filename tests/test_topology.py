"""Unit + property tests for mesh/torus/hypercube topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import Hypercube, Mesh, Torus

mesh_dims = st.lists(st.integers(2, 5), min_size=1, max_size=3).map(tuple)


# ---------------------------------------------------------------- Mesh
def test_mesh_num_nodes():
    assert Mesh((4, 4, 4)).num_nodes == 64
    assert Mesh((16, 16, 8)).num_nodes == 2048


def test_mesh_neighbors_interior_and_corner():
    m = Mesh((4, 4))
    assert sorted(m.neighbors((1, 1))) == [(0, 1), (1, 0), (1, 2), (2, 1)]
    assert sorted(m.neighbors((0, 0))) == [(0, 1), (1, 0)]


def test_mesh_channel_count():
    # A k1 x k2 mesh has 2*(k1-1)*k2 + 2*k1*(k2-1) directed channels.
    m = Mesh((4, 5))
    assert len(list(m.channels())) == 2 * 3 * 5 + 2 * 4 * 4


def test_mesh_degree_histogram_3d():
    hist = Mesh((4, 4, 4)).degree_histogram()
    assert hist[3] == 8          # corners
    assert hist[6] == 2 * 2 * 2  # interior
    assert sum(hist.values()) == 64


def test_mesh_distance_and_diameter():
    m = Mesh((4, 4, 4))
    assert m.distance((0, 0, 0), (3, 3, 3)) == 9
    assert m.diameter() == 9


def test_mesh_contains():
    m = Mesh((4, 4))
    assert m.contains((3, 3))
    assert not m.contains((4, 0))
    assert not m.contains((0, 0, 0))


def test_mesh_corners():
    assert len(Mesh((4, 4, 4)).corners()) == 8
    assert len(Mesh((4, 4)).corners()) == 4
    assert (0, 0, 0) in Mesh((4, 4, 4)).corners()


def test_mesh_nearest_and_opposite_corner():
    m = Mesh((8, 8))
    assert m.nearest_corner((1, 6)) == (0, 7)
    assert m.opposite_corner((0, 7)) == (7, 0)
    assert m.nearest_corner((3, 3)) == (0, 0)


def test_mesh_plane_and_line():
    m = Mesh((4, 4, 4))
    plane = m.plane(axis=2, value=1)
    assert len(plane) == 16
    assert all(c[2] == 1 for c in plane)
    line = m.line((1, 2, 3), axis=0)
    assert line == [(x, 2, 3) for x in range(4)]
    with pytest.raises(ValueError):
        m.plane(axis=3, value=0)
    with pytest.raises(ValueError):
        m.plane(axis=0, value=9)


@given(mesh_dims)
@settings(max_examples=25, deadline=None)
def test_mesh_channel_symmetry(dims):
    m = Mesh(dims)
    for u in m.nodes():
        for v in m.neighbors(u):
            assert u in m.neighbors(v)


@given(mesh_dims)
@settings(max_examples=25, deadline=None)
def test_mesh_neighbors_are_distance_one(dims):
    m = Mesh(dims)
    for u in m.nodes():
        for v in m.neighbors(u):
            assert m.distance(u, v) == 1


# ---------------------------------------------------------------- Torus
def test_torus_wraparound_neighbors():
    t = Torus((4, 4))
    assert (3, 0) in t.neighbors((0, 0))
    assert (0, 3) in t.neighbors((0, 0))


def test_torus_distance_uses_wraparound():
    t = Torus((8, 8))
    assert t.distance((0, 0), (7, 0)) == 1
    assert t.distance((0, 0), (4, 4)) == 8


def test_torus_degree_is_uniform():
    hist = Torus((4, 4, 4)).degree_histogram()
    assert hist == {6: 64}


def test_torus_radix2_no_duplicate_channels():
    t = Torus((2, 4))
    for u in t.nodes():
        nbrs = t.neighbors(u)
        assert len(nbrs) == len(set(nbrs))


def test_torus_ring():
    t = Torus((4, 4))
    assert t.ring((1, 2), axis=1) == [(1, y) for y in range(4)]


def test_torus_distance_never_exceeds_mesh_distance():
    t, m = Torus((5, 5)), Mesh((5, 5))
    for u in t.nodes():
        for v in t.nodes():
            assert t.distance(u, v) <= m.distance(u, v)


# ---------------------------------------------------------------- Hypercube
def test_hypercube_shape():
    h = Hypercube(4)
    assert h.num_nodes == 16
    assert h.dims == (2, 2, 2, 2)


def test_hypercube_invalid_order():
    with pytest.raises(ValueError):
        Hypercube(0)


def test_hypercube_neighbors_are_bit_flips():
    h = Hypercube(3)
    assert sorted(h.neighbors((0, 0, 0))) == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]


def test_hypercube_distance_is_hamming():
    h = Hypercube(4)
    assert h.distance((0, 0, 0, 0), (1, 1, 1, 1)) == 4
    assert h.distance((1, 0, 1, 0), (1, 1, 1, 0)) == 1


def test_hypercube_flip():
    h = Hypercube(3)
    assert h.flip((0, 1, 0), 1) == (0, 0, 0)
    with pytest.raises(ValueError):
        h.flip((0, 0, 0), 3)


def test_hypercube_diameter_is_order():
    assert Hypercube(5).diameter() == 5
