"""Run the `CampaignStore` conformance suite against every backend.

One parametrized fixture builds a `store_factory` per backend — the
three local stores plus an `HttpStore` talking to a live in-process
`CampaignCoordinator` over real sockets — and `StoreContract` supplies
the tests.  Adding a backend means adding a fixture param, not a test
copy; a backend that cannot pass this module cannot safely back
`run_campaign`.
"""

import pytest
from store_contract import StoreContract

from repro.campaigns import BACKENDS, HttpStore, open_store
from repro.campaigns.remote import CampaignCoordinator

CONFORMANCE_BACKENDS = sorted(BACKENDS) + ["http"]


@pytest.fixture(params=CONFORMANCE_BACKENDS)
def store_factory(request, tmp_path):
    """Zero-arg callable: a fresh handle onto one shared backing store."""
    backend = request.param
    if backend == "http":
        backing = open_store(tmp_path / "backing.sqlite", "sqlite")
        coordinator = CampaignCoordinator(backing, port=0)
        coordinator.start()
        try:
            yield lambda: HttpStore(
                coordinator.url, retries=2, backoff_s=0.01
            )
        finally:
            coordinator.close()
        return
    paths = {
        "jsonl": tmp_path / "store.jsonl",
        "sqlite": tmp_path / "store.sqlite",
        "shared": tmp_path / "store-dir",
    }
    yield lambda: open_store(paths[backend], backend)


class TestStoreConformance(StoreContract):
    """`StoreContract` × {jsonl, sqlite, shared, http}."""


def test_http_store_reports_backend_and_leases(tmp_path):
    backing = open_store(tmp_path / "b.sqlite", "sqlite")
    with CampaignCoordinator(backing, port=0) as coordinator:
        store = HttpStore(coordinator.url, retries=2, backoff_s=0.01)
        assert store.backend == "http"
        assert store.supports_leases
        assert store.describe() == f"http:{coordinator.url}"
        status = store.status()
        assert status["ok"] and status["backend"] == "sqlite"
