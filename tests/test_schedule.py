"""Unit tests for the schedule data model (`repro.core.schedule`)."""

import pytest

from repro.core import BroadcastSchedule, BroadcastStep, PathSend
from repro.network import ControlField
from repro.routing import Path


def mk_send(src=(0, 0), dst=(1, 0)):
    return PathSend(
        source=src, deliveries=frozenset({dst}), path=Path([src, dst])
    )


# ---------------------------------------------------------------- PathSend
def test_pathsend_requires_exactly_one_route():
    with pytest.raises(ValueError):
        PathSend(source=(0, 0), deliveries=frozenset({(1, 0)}))
    with pytest.raises(ValueError):
        PathSend(
            source=(0, 0),
            deliveries=frozenset({(1, 0)}),
            path=Path([(0, 0), (1, 0)]),
            waypoints=((0, 0), (1, 0)),
        )


def test_pathsend_rejects_empty_deliveries():
    with pytest.raises(ValueError):
        PathSend(source=(0, 0), deliveries=frozenset(), path=Path([(0, 0), (1, 0)]))


def test_pathsend_rejects_self_delivery():
    with pytest.raises(ValueError):
        PathSend(
            source=(0, 0),
            deliveries=frozenset({(0, 0)}),
            path=Path([(0, 0), (1, 0)]),
        )


def test_pathsend_path_source_mismatch():
    with pytest.raises(ValueError):
        PathSend(
            source=(5, 5), deliveries=frozenset({(1, 0)}), path=Path([(0, 0), (1, 0)])
        )


def test_pathsend_deliveries_must_be_on_path():
    with pytest.raises(ValueError):
        PathSend(
            source=(0, 0),
            deliveries=frozenset({(9, 9)}),
            path=Path([(0, 0), (1, 0)]),
        )


def test_pathsend_adaptive_deliveries_must_be_waypoints():
    with pytest.raises(ValueError):
        PathSend(
            source=(0, 0),
            deliveries=frozenset({(2, 2)}),
            waypoints=((0, 0), (1, 1)),
        )
    send = PathSend(
        source=(0, 0), deliveries=frozenset({(1, 1)}), waypoints=((0, 0), (1, 1))
    )
    assert send.is_adaptive
    assert send.fanout == 1


def test_pathsend_waypoints_must_start_at_source():
    with pytest.raises(ValueError):
        PathSend(
            source=(0, 0),
            deliveries=frozenset({(1, 1)}),
            waypoints=((1, 1), (0, 0)),
        )


def test_pathsend_min_hops():
    from repro.network import Mesh

    m = Mesh((4, 4))
    fixed = mk_send()
    assert fixed.min_hops(m) == 1
    adaptive = PathSend(
        source=(0, 0),
        deliveries=frozenset({(3, 3)}),
        waypoints=((0, 0), (3, 0), (3, 3)),
    )
    assert adaptive.min_hops(m) == 6


# ---------------------------------------------------------------- steps
def test_step_index_one_based():
    with pytest.raises(ValueError):
        BroadcastStep(index=0)


def test_step_senders_and_deliveries():
    step = BroadcastStep(index=1, sends=[mk_send(), mk_send((0, 1), (1, 1))])
    assert step.senders() == {(0, 0), (0, 1)}
    assert step.deliveries() == {(1, 0), (1, 1)}
    assert len(step.sends_from((0, 0))) == 1


# ---------------------------------------------------------------- schedules
def test_schedule_requires_sequential_indices():
    with pytest.raises(ValueError):
        BroadcastSchedule(
            algorithm="X",
            source=(0, 0),
            steps=[BroadcastStep(index=2, sends=[mk_send()])],
        )


def test_schedule_receive_step_first_wins():
    s1 = BroadcastStep(index=1, sends=[mk_send((0, 0), (1, 0))])
    s2 = BroadcastStep(index=2, sends=[mk_send((1, 0), (2, 0))])
    sched = BroadcastSchedule(algorithm="X", source=(0, 0), steps=[s1, s2])
    rs = sched.receive_step()
    assert rs[(0, 0)] == 0
    assert rs[(1, 0)] == 1
    assert rs[(2, 0)] == 2


def test_schedule_covered_and_counts():
    s1 = BroadcastStep(index=1, sends=[mk_send((0, 0), (1, 0))])
    s2 = BroadcastStep(index=2, sends=[mk_send((1, 0), (2, 0))])
    sched = BroadcastSchedule(algorithm="X", source=(0, 0), steps=[s1, s2])
    assert sched.covered_nodes() == {(0, 0), (1, 0), (2, 0)}
    assert sched.total_sends() == 2
    assert sched.num_steps == 2
    assert len(sched.all_sends()) == 2


def test_schedule_sends_by_node_preserves_step_order():
    s1 = BroadcastStep(index=1, sends=[mk_send((0, 0), (1, 0))])
    s2 = BroadcastStep(index=2, sends=[mk_send((0, 0), (0, 1))])
    sched = BroadcastSchedule(algorithm="X", source=(0, 0), steps=[s1, s2])
    by_node = sched.sends_by_node()
    steps = [step for step, _ in by_node[(0, 0)]]
    assert steps == [1, 2]


def test_max_concurrent_sends():
    s1 = BroadcastStep(
        index=1, sends=[mk_send((0, 0), (1, 0)), mk_send((0, 0), (0, 1))]
    )
    sched = BroadcastSchedule(algorithm="X", source=(0, 0), steps=[s1])
    assert sched.max_concurrent_sends() == 2


def test_pathsend_control_default():
    assert mk_send().control is ControlField.RECEIVE
