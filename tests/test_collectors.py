"""Unit tests for metric collectors (`repro.metrics.collectors`)."""

import pytest

from repro.core import BroadcastOutcome
from repro.metrics import (
    BroadcastStatsCollector,
    LatencyCollector,
    ThroughputCollector,
)


# ------------------------------------------------------------ latencies
def test_latency_collector_buckets():
    lc = LatencyCollector()
    lc.record(1.0, "unicast")
    lc.record(3.0, "unicast")
    lc.record(10.0, "broadcast")
    assert lc.count("unicast") == 2
    assert lc.count("broadcast") == 1
    assert lc.count("missing") == 0
    assert lc.summary("unicast").mean == pytest.approx(2.0)
    assert lc.buckets() == ["broadcast", "unicast"]


def test_latency_collector_rejects_negative():
    with pytest.raises(ValueError):
        LatencyCollector().record(-1.0)


def test_latency_collector_missing_bucket():
    with pytest.raises(KeyError):
        LatencyCollector().summary("nope")


def test_latency_collector_interval():
    lc = LatencyCollector()
    for v in [10.0, 11.0, 9.0, 10.5]:
        lc.record(v)
    ci = lc.interval()
    assert ci.contains(10.0)
    with pytest.raises(ValueError):
        LatencyCollector().interval()


def test_latency_collector_clear():
    lc = LatencyCollector()
    lc.record(1.0)
    lc.clear()
    assert lc.count() == 0


# ------------------------------------------------------------ throughput
def test_throughput_counts_per_time():
    tc = ThroughputCollector()
    for t in [10.0, 20.0, 30.0]:
        tc.record(t)
    assert tc.count == 3
    assert tc.throughput() == pytest.approx(3 / 20.0)
    assert tc.throughput(horizon=110.0) == pytest.approx(3 / 100.0)


def test_throughput_empty_is_zero():
    assert ThroughputCollector().throughput() == 0.0


def test_throughput_single_observation():
    tc = ThroughputCollector()
    tc.record(5.0)
    assert tc.throughput() == 0.0
    assert tc.throughput(horizon=10.0) == pytest.approx(1 / 5.0)


def test_throughput_clear():
    tc = ThroughputCollector()
    tc.record(1.0)
    tc.clear()
    assert tc.count == 0


# ------------------------------------------------------------ broadcast stats
def _outcome(algorithm, latencies, start=0.0):
    arrivals = {(i, 0): start + lat for i, lat in enumerate(latencies, start=1)}
    return BroadcastOutcome(
        algorithm=algorithm,
        source=(0, 0),
        start_time=start,
        arrivals=arrivals,
        total_sends=len(latencies),
    )


def test_broadcast_stats_means():
    bc = BroadcastStatsCollector()
    bc.record(_outcome("DB", [1.0, 2.0, 3.0]))
    bc.record(_outcome("DB", [2.0, 3.0, 4.0]))
    bc.record(_outcome("RD", [5.0, 6.0, 7.0]))
    assert bc.algorithms() == ["DB", "RD"]
    assert bc.count("DB") == 2
    assert bc.mean_network_latency("DB") == pytest.approx(3.5)  # max of each
    assert bc.mean_node_latency("DB") == pytest.approx(2.5)
    assert bc.mean_network_latency("RD") == pytest.approx(7.0)


def test_broadcast_stats_cv_and_interval():
    bc = BroadcastStatsCollector()
    bc.record(_outcome("AB", [1.0, 1.0, 1.0]))  # cv 0
    bc.record(_outcome("AB", [1.0, 2.0, 3.0]))
    assert 0 < bc.mean_cv("AB") < 1
    ci = bc.latency_interval("AB")
    assert ci.count == 2


def test_broadcast_stats_missing_algorithm():
    with pytest.raises(KeyError):
        BroadcastStatsCollector().mean_cv("XX")


def test_broadcast_stats_clear():
    bc = BroadcastStatsCollector()
    bc.record(_outcome("DB", [1.0]))
    bc.clear()
    assert bc.algorithms() == []
