"""Tests for the live estimator service (``repro serve``).

The contract under test, per layer:

* **query → unit mapping** — :func:`spec_for_query` builds the same
  content-hashed :class:`UnitSpec` a campaign grid would, canonical
  params and all, and rejects malformed documents loudly (a typo must
  not silently hash to a different unit).
* **the cache** — a repeated query answers from the store without
  simulating (proven by arming ``REPRO_FAIL_UNITS`` for the unit: any
  execution would raise), and a miss simulated by the service lands a
  record byte-identical to ``campaign run`` executing the same unit.
* **determinism** — the whole request loop runs off the injected
  clock, so a scripted clock makes ``/v1/stats`` percentiles exactly
  hand-computable (nearest-rank over the scripted answer latencies).
* **lifecycle** — SIGTERM drains gracefully: in-flight work finishes,
  leases are released, exit status 0 (the subprocess test drives the
  real ``repro serve`` CLI).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, open_store, run_campaign
from repro.obs.trace import ListSink, Tracer
from repro.service import (
    EstimatorServer,
    EstimatorService,
    ServiceError,
    spec_for_query,
)

# Small enough to simulate in well under a second.
QUERY = {"algorithm": "DB", "dims": [4, 4, 4], "length_flits": 16}
OTHER_QUERY = {"algorithm": "RD", "dims": [4, 4, 4], "length_flits": 16}


def seed_store(store, doc=QUERY):
    """Pre-compute ``doc``'s unit via the ordinary campaign path."""
    spec = spec_for_query(doc)
    run_campaign(
        CampaignSpec(name="seed", seed=spec.seed, units=(spec,)), store=store
    )
    return spec


def http_get(url):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return json.loads(reply.read())


def http_post(url, doc):
    request = urllib.request.Request(
        url, data=json.dumps(doc).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as reply:
        return json.loads(reply.read())


# ------------------------------------------------------- query → unit
def test_spec_for_query_matches_campaign_grid_construction():
    spec = spec_for_query(QUERY)
    assert spec.kind == "broadcast"
    assert spec.algorithm == "DB"
    assert spec.dims == (4, 4, 4)
    assert spec.length_flits == 16
    assert spec.seed == 0
    assert spec.experiment == "service"
    # params canonicalise exactly like campaign grids: key order in
    # the JSON document must not change the unit hash.
    a = spec_for_query({**QUERY, "params": {"b": 2, "a": 1}})
    b = spec_for_query({**QUERY, "params": {"a": 1, "b": 2}})
    assert a.unit_hash == b.unit_hash
    assert a.unit_hash != spec.unit_hash


def test_spec_for_query_load_selects_traffic():
    spec = spec_for_query({**QUERY, "load": 0.02, "seed": 7})
    assert spec.kind == "traffic"
    assert spec.load == 0.02
    assert spec.seed == 7


@pytest.mark.parametrize(
    "doc",
    [
        "not a dict",
        {},
        {"algorithm": "DB"},
        {"dims": [4, 4]},
        {"algorithm": "nope", "dims": [4, 4]},
        {"algorithm": "DB", "dims": []},
        {"algorithm": "DB", "dims": [4, 0]},
        {"algorithm": "DB", "dims": ["x"]},
        {"algorithm": "DB", "dims": [4, 4], "length_flits": 0},
        {"algorithm": "DB", "dims": [4, 4], "replication": -1},
        {"algorithm": "DB", "dims": [4, 4], "load": 0},
        {"algorithm": "DB", "dims": [4, 4], "load": "heavy"},
        {"algorithm": "DB", "dims": [4, 4], "params": [1, 2]},
        {"algorithm": "DB", "dims": [4, 4], "lenght_flits": 8},  # typo
    ],
)
def test_spec_for_query_rejects_malformed_documents(doc):
    with pytest.raises(ServiceError):
        spec_for_query(doc)


# ------------------------------------------------------------ the cache
def test_cache_hit_answers_without_simulating(tmp_path, monkeypatch):
    store = open_store(tmp_path / "svc.sqlite")
    spec = seed_store(store)
    # Arm fault injection for exactly this unit: had the service tried
    # to simulate, the attempt would raise and persist a failure
    # record — the hit answer proves nothing executed.
    monkeypatch.setenv("REPRO_FAIL_UNITS", spec.unit_hash)
    with EstimatorService(store, retries=0) as service:
        answer = service.query(QUERY)
        assert answer["status"] == "hit"
        assert answer["result"] == store.get(spec.unit_hash).result
        assert answer["unit"] == spec.unit_hash
        assert service.wait_idle(10)
    assert store.get(spec.unit_hash).ok  # no failure record appeared


def test_miss_simulates_byte_identical_to_campaign_run(tmp_path):
    doc = {**QUERY, "seed": 3}
    svc_store = open_store(tmp_path / "svc.sqlite")
    with EstimatorService(svc_store) as service:
        first = service.query(doc)
        assert first["status"] == "pending"
        assert first["queued"]
        assert first["ticket"] == spec_for_query(doc).unit_hash
        assert service.wait_idle(60)
        second = service.query(doc)
        assert second["status"] == "hit"
    # The reference path: the ordinary campaign machinery executing
    # the same unit into a fresh store.
    spec = spec_for_query(doc)
    ref_store = open_store(tmp_path / "ref.sqlite")
    run_campaign(
        CampaignSpec(name="ref", seed=spec.seed, units=(spec,)),
        store=ref_store,
    )
    mine = svc_store.get(spec.unit_hash)
    ref = ref_store.get(spec.unit_hash)
    assert mine == ref  # UnitRecord equality excludes elapsed_s by design

    def canonical(record):
        data = {
            key: value
            for key, value in record.to_dict().items()
            if key != "elapsed_s"
        }
        return json.dumps(data, sort_keys=True)

    assert canonical(mine) == canonical(ref)
    assert second["result"] == ref.result


def test_pending_ticket_redeems_once_simulated(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    with EstimatorService(store) as service:
        ticket = service.query(QUERY)["ticket"]
        early = service.result(ticket)
        assert early["status"] == "pending"
        assert service.wait_idle(60)
        redeemed = service.result(ticket)
        assert redeemed["status"] == "hit"
        assert redeemed["result"]["delivered"] > 0
        # Repeated misses while in flight do not double-enqueue.
        assert service.meters.counter("svc.answer.hit").value == 1


def test_duplicate_misses_enqueue_once(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    sink = ListSink()
    with EstimatorService(store, tracer=Tracer(sink, role="svc")) as service:
        for _ in range(5):
            answer = service.query(QUERY)
            assert answer["status"] == "pending"
            assert answer["queued"]
        assert service.wait_idle(60)
        assert service.query(QUERY)["status"] == "hit"
    enqueues = [r for r in sink.records if r.get("name") == "svc.enqueue"]
    simulates = [r for r in sink.records if r.get("name") == "svc.simulate"]
    assert len(enqueues) == 1
    assert len(simulates) == 1
    names = {r.get("name") for r in sink.records}
    assert {"svc.query", "svc.hit", "svc.drain"} <= names


def test_failed_unit_reports_failure_without_resimulating(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_FAIL_UNITS", "*")
    store = open_store(tmp_path / "svc.sqlite")
    with EstimatorService(store, retries=1) as service:
        assert service.query(QUERY)["status"] == "pending"
        assert service.wait_idle(60)
        answer = service.query(QUERY)
        assert answer["status"] == "failed"
        assert "InjectedFailureError" in answer["error"]
        assert answer["attempts"] == 2  # 1 retry → 2 attempts, then quarantine
        # A known-poisonous unit is not re-enqueued (its budget is spent).
        assert service.wait_idle(10)
        assert service.query(QUERY)["status"] == "failed"
    record = store.get(spec_for_query(QUERY).unit_hash)
    assert record.failed


def test_close_stops_enqueueing_but_hits_still_answer(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    seed_store(store)
    service = EstimatorService(store)
    service.close()
    assert service.query(QUERY)["status"] == "hit"
    miss = service.query(OTHER_QUERY)
    assert miss["status"] == "pending"
    assert not miss["queued"]  # draining: nothing new enters the queue
    service.close()  # idempotent


# --------------------------------------------------- deterministic time
class ScriptedClock:
    """Clock whose readings are fixed in advance (exact binary floats)."""

    def __init__(self, readings):
        self.readings = list(readings)

    def __call__(self):
        return self.readings.pop(0)


def test_stats_percentiles_match_hand_computed_stream(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    seed_store(store)
    # One reading for construction, then a (start, end) pair per query:
    # answer latencies 0.25, 0.5, 1.0, 0.75 — exact in binary, so the
    # stats must match the hand computation to the last bit.
    clock = ScriptedClock(
        [0.0, 1.0, 1.25, 2.0, 2.5, 4.0, 5.0, 6.0, 6.75]
    )
    service = EstimatorService(store, clock=clock)
    try:
        latencies = [service.query(QUERY)["answer_latency_s"] for _ in range(4)]
    finally:
        service.close()
    assert latencies == [0.25, 0.5, 1.0, 0.75]
    stats = service.stats()
    assert stats["answers"] == 4
    assert stats["counters"]["svc.queries"] == 4
    assert stats["counters"]["svc.answer.hit"] == 4
    slo = stats["answer_latency_s"]
    # Nearest-rank over sorted [0.25, 0.5, 0.75, 1.0]: rank(q) =
    # max(1, ceil(4q)) → p50 is the 2nd value, p95/p99 the 4th.
    assert slo == {
        "count": 4,
        "mean": 0.625,
        "p50": 0.5,
        "p95": 1.0,
        "p99": 1.0,
    }


def test_status_uptime_uses_injected_clock(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    clock = ScriptedClock([10.0, 17.5])
    service = EstimatorService(store, clock=clock)
    try:
        status = service.status()
    finally:
        service.close()
    assert status["uptime_s"] == 7.5
    assert status["ok"]
    assert status["backend"] == "sqlite"
    assert status["service"] == "estimator"


# ----------------------------------------------------------- HTTP layer
def test_http_endpoints_round_trip(tmp_path):
    store = open_store(tmp_path / "svc.sqlite")
    service = EstimatorService(store)
    with EstimatorServer(service, port=0) as server:
        status = http_get(f"{server.url}/v1/status")
        assert status["ok"]
        assert status["service"] == "estimator"
        first = http_post(f"{server.url}/v1/query", QUERY)
        assert first["status"] == "pending"
        assert service.wait_idle(60)
        redeemed = http_get(
            f"{server.url}/v1/result?ticket={first['ticket']}"
        )
        assert redeemed["status"] == "hit"
        again = http_post(f"{server.url}/v1/query", QUERY)
        assert again["status"] == "hit"
        assert again["result"] == redeemed["result"]
        stats = http_get(f"{server.url}/v1/stats")
        assert stats["answers"] == 3  # miss, redeem, hit
        assert stats["answer_latency_s"]["p95"] > 0
    # The drain released every lease the miss simulation took.
    assert store.leased_hashes() == set()


@pytest.mark.parametrize(
    "method,path,body,expected",
    [
        ("GET", "/nope", None, 404),
        ("GET", "/v1/nope", None, 404),
        ("GET", "/v1/result", None, 400),  # missing ticket
        ("POST", "/v1/query", b"not json", 400),
        ("POST", "/v1/query", b"[1, 2]", 400),
        ("POST", "/v1/query", b'{"algorithm": "nope", "dims": [4]}', 400),
    ],
)
def test_http_error_codes(tmp_path, method, path, body, expected):
    store = open_store(tmp_path / "svc.sqlite")
    with EstimatorServer(EstimatorService(store), port=0) as server:
        request = urllib.request.Request(
            f"{server.url}{path}", data=body, method=method
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == expected
        assert "error" in json.loads(excinfo.value.read())


# ------------------------------------------------------- graceful drain
def test_repro_serve_sigterm_drains_cleanly(tmp_path):
    """Drive the real CLI: boot, query, SIGTERM, assert a clean exit."""
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [repo_src] + [p for p in [env.get("PYTHONPATH")] if p]
    )
    store_path = tmp_path / "svc.sqlite"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store_path),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        url = None
        for _ in range(50):
            line = proc.stdout.readline()
            if "listening on" in line:
                url = line.rsplit(" ", 1)[-1].strip()
                break
        assert url, "service never reported its URL"
        # Wait past the banner so the listener is accepting.
        ticket = http_post(f"{url}/v1/query", QUERY)["ticket"]
        deadline = time.monotonic() + 60
        answer = {"status": "pending"}
        while answer["status"] == "pending" and time.monotonic() < deadline:
            answer = http_get(f"{url}/v1/result?ticket={ticket}")
            time.sleep(0.05)
        assert answer["status"] == "hit"
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "drained cleanly" in out
    # The drain left no lease behind and the answer is durable.
    store = open_store(store_path)
    assert store.leased_hashes() == set()
    assert store.get(ticket).ok
