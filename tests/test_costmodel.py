"""Tests for the learned unit-cost model (`repro.campaigns.costmodel`)."""

import json
import math

import pytest

from repro.campaigns.costmodel import (
    FEATURE_NAMES,
    CostModel,
    auto_shard_count,
    cost_features,
    fit_cost_model,
    load_cost_model,
    load_default_cost_model,
)
from repro.campaigns.pool import estimate_unit_cost, order_units
from repro.campaigns.spec import UnitSpec, freeze_params
from repro.campaigns.store import UnitRecord


def _unit(dims, length=100, load=None, kind="broadcast", rep=0, **params):
    return UnitSpec(
        experiment="fig1",
        kind=kind,
        algorithm="DB",
        dims=dims,
        length_flits=length,
        seed=0,
        replication=rep,
        load=load,
        params=freeze_params(**params),
    )


def _record(spec, elapsed):
    return UnitRecord(
        unit_hash=spec.unit_hash,
        experiment=spec.experiment,
        spec=spec.as_dict(),
        result={},
        elapsed_s=elapsed,
    )


def _synthetic_records():
    """Records following elapsed = 1e-6 * nodes^1.0 * length^0.5."""
    records = []
    for rep, dims in enumerate(
        [(4, 4, 4), (8, 8, 8), (10, 10, 10), (16, 16, 16), (4, 4), (32, 32)]
    ):
        for length in (32, 100, 512, 2048):
            spec = _unit(dims, length=length, rep=rep)
            elapsed = 1e-6 * math.prod(dims) * math.sqrt(length)
            records.append(_record(spec, elapsed))
    return records


def test_fit_recovers_power_law():
    model = fit_cost_model(_synthetic_records())
    weights = dict(zip(FEATURE_NAMES, model.weights))
    assert weights["log_nodes"] == pytest.approx(1.0, abs=1e-6)
    assert weights["log_length_flits"] == pytest.approx(0.5, abs=1e-6)
    assert model.r_squared == pytest.approx(1.0, abs=1e-9)
    big = _unit((16, 16, 16), length=2048, rep=99)
    small = _unit((4, 4), length=32, rep=99)
    assert model.predict(big) > model.predict(small)
    # Predictions reproduce the generating law.
    assert model.predict(big) == pytest.approx(
        1e-6 * 4096 * math.sqrt(2048), rel=1e-6
    )


def test_fit_requires_enough_samples():
    with pytest.raises(ValueError, match="at least"):
        fit_cost_model(_synthetic_records()[:3])


def test_fit_skips_duplicates_and_nonpositive_timings():
    records = _synthetic_records()
    polluted = records + [records[0]] + [_record(_unit((6, 6), rep=50), 0.0)]
    assert fit_cost_model(polluted).samples == len(records)


def test_model_roundtrip_and_feature_mismatch(tmp_path):
    model = fit_cost_model(_synthetic_records())
    path = model.save(tmp_path / "cost_model.json")
    loaded = load_cost_model(path)
    assert loaded == model
    data = json.loads(path.read_text())
    data["features"] = ["something_else"]
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="fit-cost"):
        load_cost_model(path)


def test_load_default_cost_model_absent_or_corrupt(tmp_path):
    assert load_default_cost_model(tmp_path / "missing.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert load_default_cost_model(bad) is None


def test_estimate_unit_cost_uses_model_when_given():
    model = fit_cost_model(_synthetic_records())
    spec = _unit((8, 8, 8), length=100, rep=7)
    assert estimate_unit_cost(spec, model) == pytest.approx(model.predict(spec))
    assert estimate_unit_cost(spec) != estimate_unit_cost(spec, model)


def test_order_units_adaptive_with_model_is_deterministic():
    model = fit_cost_model(_synthetic_records())
    units = [
        _unit((4, 4), length=32, rep=1),
        _unit((16, 16, 16), length=2048, rep=2),
        _unit((8, 8, 8), length=100, rep=3),
    ]
    ordered = order_units(units, "adaptive", model)
    assert [math.prod(u.dims) for u in ordered] == [4096, 512, 16]
    assert order_units(units, "adaptive", model) == ordered
    # fifo ignores the model entirely.
    assert order_units(units, "fifo", model) == units


def test_traffic_features_scale_with_batch_budget():
    light = _unit((8, 8, 8), load=4.0, kind="traffic", batch_size=5, num_batches=2)
    heavy = _unit(
        (8, 8, 8), load=4.0, kind="traffic", batch_size=50, num_batches=20, rep=1
    )
    names = dict(zip(FEATURE_NAMES, cost_features(heavy)))
    assert names["log_batch_budget"] == pytest.approx(math.log(1000))
    model = CostModel(weights=(0.0, 0.0, 0.0, 0.0, 1.0, 0.0), samples=1, r_squared=1.0)
    assert model.predict(heavy) > model.predict(light)


# ---------------------------------------------------------- --shards auto
def _flat_model(seconds):
    """A model predicting ``seconds`` per source/batch of budget.

    Weights: only the intercept and the budget term are non-zero, so a
    unit with budget B predicts ``seconds * B`` wall seconds — easy to
    reason about in cap/inversion tests.
    """
    return CostModel(
        weights=(math.log(seconds), 0.0, 0.0, 0.0, 1.0, 0.0, 0.0),
        samples=8,
        r_squared=1.0,
    )


def _cell(sources=8, **params):
    return _unit(
        (8, 8, 8), kind="broadcast-cell", sources_count=sources, **params
    )


def test_auto_caps_by_workers_and_replications():
    # No model: a broadcast cell maximises parallelism within the caps.
    assert auto_shard_count(_cell(sources=8), None, workers=4) == 4
    assert auto_shard_count(_cell(sources=3), None, workers=8) == 3
    assert auto_shard_count(_cell(sources=8), None) == 8  # no worker cap
    assert auto_shard_count(_cell(sources=1), None, workers=8) == 1
    assert auto_shard_count(_cell(sources=8), None, workers=1) == 1


def test_auto_inverts_per_shard_budget():
    # 1 s per source, 2 s minimum per shard: an 8-source cell supports
    # at most 4 shards of >= 2 sources each.
    model = _flat_model(1.0)
    assert auto_shard_count(_cell(sources=8), model, workers=8) == 4
    # Expensive sources justify the full fan-out...
    assert auto_shard_count(_cell(sources=8), _flat_model(5.0), workers=8) == 8
    # ...while cheap cells are not worth slicing at all.
    assert auto_shard_count(_cell(sources=8), _flat_model(0.01), workers=8) == 1
    # A custom per-shard budget moves the knee.
    assert (
        auto_shard_count(_cell(sources=8), model, workers=8, min_shard_s=4.0)
        == 2
    )


def test_auto_traffic_needs_model_evidence():
    """The shard count of a traffic point is measurement protocol, so
    without a fitted model `auto` must leave it unsharded — unlike a
    broadcast cell, whose fan-out cannot change the result."""
    point = _unit(
        (8, 8, 8), load=4.0, kind="traffic",
        batch_size=25, num_batches=21, discard=1,
    )
    assert auto_shard_count(point, None, workers=8) == 1
    # With evidence, the inversion applies (even the narrowest shard
    # of the 8-way plan — 2 retained + 1 warm-up batch of 25 obs —
    # clears the 2 s budget at 0.05 s per observation).
    assert auto_shard_count(point, _flat_model(0.05), workers=8) == 8
    # Capped by the retained batch budget, never beyond it.
    narrow = _unit(
        (8, 8, 8), load=4.0, kind="traffic",
        batch_size=25, num_batches=4, discard=1,
    )
    assert auto_shard_count(narrow, _flat_model(10.0), workers=16) == 3


def test_auto_other_kinds_never_shard():
    assert auto_shard_count(_unit((8, 8, 8)), _flat_model(99.0), workers=8) == 1


def test_broadcast_cell_features_scale_with_sources():
    cell = _cell(sources=40)
    names = dict(zip(FEATURE_NAMES, cost_features(cell)))
    assert names["log_batch_budget"] == pytest.approx(math.log(40))
    assert names["shard"] == 0.0
    from repro.campaigns.shards import shard_specs

    shard = shard_specs(cell, 4)[0]
    shard_names = dict(zip(FEATURE_NAMES, cost_features(shard)))
    assert shard_names["log_batch_budget"] == pytest.approx(math.log(10))
    assert shard_names["shard"] == 1.0
    assert estimate_unit_cost(shard) < estimate_unit_cost(cell)


def test_cli_fit_cost_end_to_end(tmp_path, monkeypatch, capsys):
    """fit-cost writes the model and adaptive runs pick it up."""
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["campaign", "run", "fig1", "--scale", "smoke"]) == 0
    assert main(["campaign", "fit-cost", "fig1", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "cost model:" in out and "campaigns/cost_model.json" in out
    assert (tmp_path / "campaigns" / "cost_model.json").exists()
    assert load_default_cost_model() is not None
    # A later adaptive run reports the fitted model in its progress.
    assert (
        main(["campaign", "run", "fig1", "--scale", "smoke", "--schedule", "adaptive"])
        == 0
    )
    assert "using fitted cost model" in capsys.readouterr().out


def test_cli_fit_cost_without_stores(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["campaign", "fit-cost", "fig1"]) == 1
    assert "no stores found" in capsys.readouterr().out
