"""Tests for the campaign engine (`repro.campaigns`).

Covers spec hashing, the JSONL store (including crash-resume), the
worker pool's serial/parallel determinism contract, aggregation back
into experiment rows, and the CLI `campaign` subcommands.
"""

import json

import pytest

from repro.campaigns import (
    CampaignSpec,
    ResultStore,
    UnitRecord,
    UnitSpec,
    aggregate,
    execute_unit,
    freeze_params,
    run_campaign,
)
from repro.cli import main
from repro.experiments import campaign_for, run_fig1, run_fig2, run_traffic_sweep
from repro.experiments.ablations import run_port_count_ablation
from repro.experiments.common import broadcast_units, random_sources
from repro.sim.rng import RandomStreams


def unit(**overrides) -> UnitSpec:
    fields = dict(
        experiment="fig1",
        kind="broadcast",
        algorithm="DB",
        dims=(4, 4, 4),
        length_flits=100,
        seed=0,
        replication=0,
        params=freeze_params(sources_count=2, startup_latency=1.5),
    )
    fields.update(overrides)
    return UnitSpec(**fields)


# ----------------------------------------------------------------- spec
def test_unit_hash_is_stable_and_content_addressed():
    assert unit().unit_hash == unit().unit_hash
    assert unit().unit_hash != unit(algorithm="AB").unit_hash
    assert unit().unit_hash != unit(replication=1).unit_hash
    assert unit().unit_hash != unit(seed=7).unit_hash


def test_unit_params_canonicalised():
    a = freeze_params(b=2, a=1, c=None)
    b = freeze_params(a=1, b=2)
    assert a == b
    assert unit(params=a).unit_hash == unit(params=b).unit_hash


def test_unit_dict_round_trip():
    u = unit(load=None)
    assert UnitSpec.from_dict(u.as_dict()) == u
    t = unit(kind="traffic", load=2.0, params=freeze_params(batch_size=8))
    assert UnitSpec.from_dict(json.loads(json.dumps(t.as_dict()))) == t


def test_cell_key_ignores_replication():
    assert unit().cell_key == unit(replication=1).cell_key
    assert unit().cell_key != unit(algorithm="AB").cell_key


def test_campaign_rejects_duplicate_units():
    with pytest.raises(ValueError):
        CampaignSpec(name="dup", seed=0, units=(unit(), unit()))


def test_campaign_pending_and_hash():
    spec = CampaignSpec(
        name="c", seed=0, units=(unit(), unit(replication=1))
    )
    assert len(spec) == 2
    done = [spec.units[0].unit_hash]
    assert spec.pending(done) == [spec.units[1]]
    assert spec.campaign_hash == spec.campaign_hash
    assert spec.with_seed(9).units[0].seed == 9


def test_with_seed_renames_seed_suffix():
    spec = campaign_for("fig1", "smoke", 0)
    reseeded = spec.with_seed(9)
    assert reseeded.name == "fig1-smoke-s9"
    assert all(u.seed == 9 for u in reseeded.units)


def test_duplicate_grid_points_are_collapsed():
    from repro.experiments import traffic_campaign

    spec = traffic_campaign(
        "fig3", "smoke", 0, loads=[2.0, 2, 4.0], algorithms=["DB"]
    )
    assert [u.load for u in spec.units] == [2.0, 4.0]


# ---------------------------------------------------------------- store
def test_store_append_and_resume(tmp_path):
    store = ResultStore(tmp_path / "c.jsonl")
    assert store.completed_hashes() == set()
    record = UnitRecord(
        unit_hash=unit().unit_hash,
        experiment="fig1",
        spec=unit().as_dict(),
        result={"network_latency": 1.0},
        elapsed_s=0.1,
    )
    store.append(record)
    assert store.completed_hashes() == {unit().unit_hash}
    loaded = store.records()[unit().unit_hash]
    assert loaded.result == {"network_latency": 1.0}
    assert loaded.unit_spec == unit()


def test_store_tolerates_truncated_tail(tmp_path):
    store = ResultStore(tmp_path / "c.jsonl")
    record = UnitRecord(
        unit_hash="abc", experiment="fig1", spec=unit().as_dict(), result={}
    )
    store.append(record)
    with store.path.open("a") as handle:
        handle.write('{"unit_hash": "def", "experiment"')  # crash mid-write
    assert store.completed_hashes() == {"abc"}


def test_store_records_for_orders_by_spec(tmp_path):
    spec = CampaignSpec(
        name="c", seed=0, units=(unit(), unit(replication=1))
    )
    store = ResultStore(tmp_path / "c.jsonl")
    run_campaign(spec, store=store)
    records = store.records_for(spec)
    assert [r.unit_hash for r in records] == spec.unit_hashes()


# ----------------------------------------------------------------- pool
def test_execute_unit_records_result():
    record = execute_unit(unit())
    assert record.unit_hash == unit().unit_hash
    assert record.result["network_latency"] > 0
    assert record.result["delivered"] == 63
    assert record.elapsed_s > 0


def test_execute_unit_unknown_kind():
    with pytest.raises(ValueError):
        execute_unit(unit(kind="nope"))


def test_execute_unit_rejects_bad_replication():
    with pytest.raises(ValueError):
        execute_unit(unit(replication=5, params=freeze_params(sources_count=2)))


def test_run_campaign_rejects_bad_workers():
    spec = CampaignSpec(name="c", seed=0, units=(unit(),))
    with pytest.raises(ValueError):
        run_campaign(spec, workers=0)


def test_parallel_records_identical_to_serial():
    units = broadcast_units(
        "fig1", [(4, 4, 4)], ["RD", "DB"], 64, "smoke", seed=3
    )
    spec = CampaignSpec(name="par", seed=3, units=tuple(units))
    serial = run_campaign(spec, workers=1)
    parallel = run_campaign(spec, workers=2)
    assert serial == parallel


def test_run_campaign_skips_completed_units(tmp_path):
    units = broadcast_units(
        "fig1", [(4, 4, 4)], ["DB"], 64, "smoke", seed=0
    )
    spec = CampaignSpec(name="resume", seed=0, units=tuple(units))
    store = ResultStore(tmp_path / "resume.jsonl")
    first = run_campaign(spec, store=store)

    # Drop the last stored line to simulate an interrupted run; the
    # re-run must recompute only the missing unit and reproduce the
    # original records exactly.
    lines = store.path.read_text().strip().splitlines()
    store.path.write_text("\n".join(lines[:-1]) + "\n")
    assert len(store.completed_hashes()) == len(spec) - 1

    progress_lines = []
    second = run_campaign(spec, store=store, progress=progress_lines.append)
    assert second == first
    assert f"({len(spec) - 1} cached, 1 to run" in progress_lines[0]


def test_campaign_store_keyed_by_content(tmp_path):
    """A store populated at one seed contributes nothing to another."""
    units0 = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "smoke", seed=0)
    units1 = broadcast_units("fig1", [(4, 4, 4)], ["DB"], 64, "smoke", seed=1)
    store = ResultStore(tmp_path / "c.jsonl")
    run_campaign(
        CampaignSpec(name="s0", seed=0, units=tuple(units0)), store=store
    )
    lines = []
    run_campaign(
        CampaignSpec(name="s1", seed=1, units=tuple(units1)),
        store=store,
        progress=lines.append,
    )
    assert "(0 cached" in lines[0]


# ------------------------------------------------------------ aggregate
def test_aggregate_unknown_experiment():
    with pytest.raises(KeyError):
        aggregate("nope", [])


def test_experiment_rows_identical_across_worker_counts():
    serial = run_fig1(scale="smoke", seed=1)
    assert serial == run_fig1(scale="smoke", seed=1, workers=4)
    fig2 = run_fig2(scale="smoke", seed=1)
    assert fig2 == run_fig2(scale="smoke", seed=1, workers=2)


def test_traffic_sweep_through_campaign_engine():
    rows = run_traffic_sweep(
        "fig3", scale="smoke", seed=1, loads=[2.0], algorithms=["DB", "AB"]
    )
    parallel = run_traffic_sweep(
        "fig3",
        scale="smoke",
        seed=1,
        loads=[2.0],
        algorithms=["DB", "AB"],
        workers=2,
    )
    assert rows == parallel


def test_ablation_through_campaign_engine():
    rows = run_port_count_ablation(scale="smoke", seed=0, ports=(1, 2))
    assert len(rows) == 2 * 4
    assert [r.value for r in rows[:4]] == [1.0] * 4
    assert all(r.parameter == "ports_per_node" for r in rows)


def test_run_from_store_matches_fresh_run(tmp_path):
    """Aggregating JSON-round-tripped records gives identical rows."""
    store = ResultStore(tmp_path / "fig1.jsonl")
    fresh = run_fig1(scale="smoke", seed=2)
    stored = run_fig1(scale="smoke", seed=2, store=store)
    resumed = run_fig1(scale="smoke", seed=2, store=store)  # all cached
    assert fresh == stored == resumed


def test_campaign_for_matches_experiment_grid():
    spec = campaign_for("fig1", "smoke", 0)
    assert spec.name == "fig1-smoke-s0"
    # 4 sizes x 4 algorithms x 2 smoke sources
    assert len(spec) == 4 * 4 * 2
    with pytest.raises(KeyError):
        campaign_for("nope")


# -------------------------------------------------------- random sources
def test_random_sources_use_named_stream():
    expected_rng = RandomStreams(5)["sources"]
    expected = [
        tuple(int(expected_rng.integers(0, d)) for d in (4, 4, 4))
        for _ in range(3)
    ]
    assert random_sources((4, 4, 4), 3, 5) == expected


def test_random_sources_reproducible_and_in_range():
    a = random_sources((4, 8), 10, seed=7)
    assert a == random_sources((4, 8), 10, seed=7)
    assert a != random_sources((4, 8), 10, seed=8)
    assert all(0 <= x < 4 and 0 <= y < 8 for x, y in a)


# ------------------------------------------------------------------- CLI
def test_cli_experiment_workers_flag(capsys):
    assert main(["fig1", "--scale", "smoke", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out


def test_cli_campaign_run_status_aggregate(tmp_path, capsys):
    store = str(tmp_path / "fig1.jsonl")
    args = ["fig1", "--scale", "smoke", "--store", store]

    assert main(["campaign", "status"] + args) == 0
    assert "0/32" in capsys.readouterr().out

    assert main(["campaign", "aggregate"] + args) == 1  # incomplete store
    assert "0/32" in capsys.readouterr().out

    assert main(["campaign", "run", "--workers", "2"] + args) == 0
    out = capsys.readouterr().out
    assert "32 to run" in out and "Fig. 1" in out

    assert main(["campaign", "status"] + args) == 0
    assert "32/32" in capsys.readouterr().out

    assert main(["campaign", "run"] + args) == 0
    assert "(32 cached, 0 to run" in capsys.readouterr().out

    out_file = tmp_path / "fig1.csv"
    assert main(["campaign", "aggregate", "--out", str(out_file)] + args) == 0
    assert "Fig. 1" in capsys.readouterr().out
    assert out_file.read_text().startswith("algorithm,")


def test_cli_campaign_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["campaign", "run", "nope"])
