"""Exactness of the mergeable-statistics algebra (`repro.metrics.partial`).

The load-bearing property behind sharded simulation units: however a
batch-means observation stream is cut into chunks — and in whatever
order the chunks come back — merging the chunk partials reproduces the
serial estimator bit for bit (batch means, point estimate, confidence
interval).  Hypothesis drives the splits; every assertion is exact
equality, never approx.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    BatchMeans,
    PartialStat,
    interval_from_partial,
    is_steady_partial,
    merge_partials,
    result_from_partial,
    split_observations,
)


# ------------------------------------------------------------ strategies
def observations(min_size=0, max_size=240):
    return st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=min_size,
        max_size=max_size,
    )


@st.composite
def stream_and_cuts(draw):
    xs = draw(observations())
    batch_size = draw(st.integers(min_value=1, max_value=9))
    n_cuts = draw(st.integers(min_value=0, max_value=8))
    cuts = [
        draw(st.integers(min_value=0, max_value=len(xs)))
        for _ in range(n_cuts)
    ]
    return xs, batch_size, cuts


# ------------------------------------------------------------- properties
@settings(max_examples=200, deadline=None)
@given(stream_and_cuts())
def test_merge_of_any_split_is_exact(case):
    xs, batch_size, cuts = case
    serial = PartialStat.from_observations(xs, batch_size)
    parts = split_observations(xs, batch_size, cuts)
    merged = merge_partials(reversed(parts))  # order must not matter
    assert merged.batch_means == serial.batch_means
    assert merged.head == serial.head
    assert merged.tail == serial.tail
    assert merged.count == serial.count
    assert merged.offset == serial.offset


@settings(max_examples=100, deadline=None)
@given(stream_and_cuts())
def test_merged_result_equals_streaming_estimator(case):
    xs, batch_size, cuts = case
    num_batches = max(len(xs) // batch_size, 1)
    estimator = BatchMeans(
        batch_size=batch_size, num_batches=num_batches, discard=0
    )
    estimator.extend(xs)
    merged = merge_partials(split_observations(xs, batch_size, cuts))
    if not merged.batch_means:
        with pytest.raises(ValueError):
            result_from_partial(merged, discard=0)
        return
    serial = estimator.result()
    recovered = result_from_partial(merged, discard=0)
    assert recovered.batch_means == serial.batch_means
    assert recovered.mean == serial.mean  # exact, not approx
    if serial.interval is not None:
        assert recovered.interval.mean == serial.interval.mean
        assert recovered.interval.half_width == serial.interval.half_width
        assert interval_from_partial(merged).half_width == (
            serial.interval.half_width
        )


@settings(max_examples=100, deadline=None)
@given(observations(min_size=1), st.integers(min_value=1, max_value=9))
def test_partial_round_trips_through_json(xs, batch_size):
    stat = PartialStat.from_observations(xs, batch_size)
    restored = PartialStat.from_dict(json.loads(json.dumps(stat.to_dict())))
    assert restored == stat


# ----------------------------------------------------------------- edges
def test_merge_rejects_gaps_overlaps_and_mixed_batch_size():
    a = PartialStat.from_observations([1.0, 2.0], 2, offset=0)
    gap = PartialStat.from_observations([3.0], 2, offset=5)
    with pytest.raises(ValueError, match="gapped"):
        merge_partials([a, gap])
    overlap = PartialStat.from_observations([3.0], 2, offset=1)
    with pytest.raises(ValueError, match="overlapping"):
        merge_partials([a, overlap])
    other = PartialStat.from_observations([3.0], 3, offset=2)
    with pytest.raises(ValueError, match="batch_size"):
        merge_partials([a, other])
    with pytest.raises(ValueError, match="nothing"):
        merge_partials([])


def test_batchmeans_partial_exports_closed_and_pending_state():
    bm = BatchMeans(batch_size=3, num_batches=4, discard=1)
    bm.extend([1.0, 2.0, 3.0, 4.0, 5.0])
    stat = bm.partial()
    assert stat.batch_means == (2.0,)
    assert stat.tail == (4.0, 5.0)
    assert stat.count == 5
    # result via the partial path is the estimator's own result
    bm.extend([6.0, 7.0, 8.0, 9.0])
    assert result_from_partial(bm.partial(), discard=1) == bm.result()


def test_result_from_partial_requires_whole_stream():
    stat = PartialStat.from_observations([1.0, 2.0, 3.0], 3, offset=3)
    with pytest.raises(ValueError, match="offset"):
        result_from_partial(stat, discard=0)


def test_is_steady_partial_reads_batch_means():
    flat = PartialStat.from_batch_means([5.0, 5.01, 5.0, 5.02], 10)
    trending = PartialStat.from_batch_means([1.0, 2.0, 4.0, 8.0], 10)
    assert is_steady_partial(flat, window=2)
    assert not is_steady_partial(trending, window=2)


def test_from_batch_means_requires_alignment():
    with pytest.raises(ValueError, match="aligned"):
        PartialStat.from_batch_means([1.0], batch_size=4, offset=2)
