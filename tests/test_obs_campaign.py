"""Tracing producers in the campaign engine and simulation kernel.

End-to-end checks that the span/event producers wired into
`repro.campaigns.pool`, `repro.campaigns.store.TracedStore` and the
DES kernel (`Environment.profile()`) emit what `docs/observability.md`
promises — and that tracing never changes a result.
"""

import warnings

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.campaigns.pool import lease_heartbeat
from repro.campaigns.store import ResultStore, SqliteStore, TracedStore
from repro.experiments.common import broadcast_units
from repro.obs.trace import ListSink, Tracer, read_trace_dir
from repro.sim.engine import Environment


def small_spec(name="traced", seed=3, shards=1):
    units = broadcast_units(
        "fig1", [(4, 4, 4)], ["RD", "DB"], 64, "smoke", seed=seed,
        shards=shards,
    )
    return CampaignSpec(name=name, seed=seed, units=tuple(units))


def spans_by_name(records):
    by_name = {}
    for record in records:
        if record.get("type") == "span":
            by_name.setdefault(record["name"], []).append(record)
    return by_name


def events_by_name(records):
    by_name = {}
    for record in records:
        if record.get("type") == "event":
            by_name.setdefault(record["name"], []).append(record)
    return by_name


# ---------------------------------------------------------- traced runs
def test_traced_run_spools_spans_and_changes_nothing(tmp_path):
    spec = small_spec()
    plain = run_campaign(spec)
    traced = run_campaign(spec, trace_dir=tmp_path / "spool")
    assert traced == plain  # tracing must never perturb results

    records = read_trace_dir(tmp_path / "spool")
    spans = spans_by_name(records)
    (campaign,) = spans["campaign"]
    assert campaign["args"]["campaign"] == "traced"
    assert campaign["args"]["units"] == len(spec)
    executes = spans["unit.execute"]
    assert {s["args"]["unit"] for s in executes} == {
        u.unit_hash for u in spec.units
    }
    # Serial run: every execute nests inside the campaign span.
    assert all(s["parent"] == campaign["id"] for s in executes)


def test_traced_sharded_run_emits_merge_spans(tmp_path):
    spec = small_spec(name="sharded", shards=2)
    records_plain = run_campaign(spec, shards=2)
    run_campaign(spec, shards=2, trace_dir=tmp_path / "spool")
    spool = read_trace_dir(tmp_path / "spool")
    spans = spans_by_name(spool)
    merges = spans["unit.merge"]
    assert {m["args"]["unit"] for m in merges} == {
        u.unit_hash for u in spec.units
    }
    assert all(m["args"]["shards"] >= 2 for m in merges)
    # One shard execute per fanned-out slice, more than one per parent.
    assert len(spans["unit.execute"]) > len(merges)
    assert run_campaign(spec, shards=2) == records_plain


def test_traced_lease_store_emits_claims(tmp_path):
    spec = small_spec(name="leases")
    store = SqliteStore(tmp_path / "leases.sqlite")
    run_campaign(spec, store=store, trace_dir=tmp_path / "spool")
    records = read_trace_dir(tmp_path / "spool")
    events = events_by_name(records)
    assert {e["args"]["unit"] for e in events["lease.claim"]} == {
        u.unit_hash for u in spec.units
    }
    spans = spans_by_name(records)
    assert spans["store.try_claim"]  # TracedStore wrapped the claims
    assert all(s["args"]["granted"] for s in spans["store.try_claim"])


def test_traced_cache_hits(tmp_path):
    spec = small_spec(name="cached")
    warm = ResultStore(tmp_path / "warm.jsonl")
    run_campaign(spec, store=warm)
    run_campaign(spec, cache=[warm], trace_dir=tmp_path / "spool")
    records = read_trace_dir(tmp_path / "spool")
    hits = events_by_name(records)["cache.hit"]
    assert {e["args"]["unit"] for e in hits} == {
        u.unit_hash for u in spec.units
    }
    assert spans_by_name(records).get("unit.execute") is None  # all cached


def test_traced_store_delegates(tmp_path):
    inner = ResultStore(tmp_path / "s.jsonl")
    sink = ListSink()
    store = TracedStore(inner, Tracer(sink, pid=1))
    assert store.backend == inner.backend
    assert store.supports_leases == inner.supports_leases
    assert store.path == inner.path
    assert store.describe() == inner.describe()
    assert store.records() == {}
    names = {r["name"] for r in sink.records if r.get("type") == "span"}
    assert "store.records" in names


# ------------------------------------------------------ heartbeat surfacing
class FailingLeaseStore:
    """Lease-capable store whose refreshes always fail."""

    supports_leases = True

    def try_claim(self, unit_hash, owner, ttl_s):
        raise OSError("store unreachable")


def test_heartbeat_failure_warns_and_traces():
    sink = ListSink()
    tracer = Tracer(sink, pid=1, role="worker")
    store = FailingLeaseStore()
    with pytest.warns(RuntimeWarning, match="lease heartbeat .* failed"):
        with lease_heartbeat(
            store, "a" * 40, "owner", ttl_s=0.06, tracer=tracer
        ):
            import time

            time.sleep(0.2)  # several beat attempts at ttl/3 cadence
    errors = events_by_name(sink.records)["heartbeat.error"]
    assert errors
    assert errors[0]["args"]["unit"] == "a" * 40
    assert "unreachable" in errors[0]["args"]["error"]


def test_heartbeat_success_beats_silently():
    class CountingStore:
        supports_leases = True
        claims = 0

        def try_claim(self, unit_hash, owner, ttl_s):
            CountingStore.claims += 1
            return True

    sink = ListSink()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        with lease_heartbeat(
            CountingStore(), "b" * 40, "owner", ttl_s=0.06,
            tracer=Tracer(sink, pid=1),
        ):
            import time

            time.sleep(0.15)
    assert CountingStore.claims >= 1
    assert events_by_name(sink.records)["heartbeat.beat"]


# ------------------------------------------------------------ kernel profile
def test_environment_profile_counts_kernel_work():
    env = Environment()

    def model(env):
        for _ in range(5):
            yield env.timeout(1.0)
        yield env.hold(2.0)

    env.process(model(env))
    env.run()
    prof = env.profile()
    assert prof["timeouts"] >= 5
    assert prof["holds"] >= 1
    assert prof["dispatched"] == (
        prof["holds"] + prof["timeouts"] + prof["events"]
    )
    assert prof["heap_peak"] >= 1
    # Recycled timeouts register as pool hits after the first miss.
    assert prof["timeout_pool_hits"] >= 1
    assert 0.0 <= prof["timeout_pool_hit_rate"] <= 1.0


def test_profile_nonzero_on_fastpath_broadcast():
    from repro.core.executors import EventDrivenExecutor
    from repro.core.registry import get_algorithm
    from repro.experiments.common import paper_config
    from repro.network.network import NetworkSimulator
    from repro.network.topology import Mesh

    mesh = Mesh((4, 4, 4))
    algorithm = get_algorithm("DB")(mesh)
    network = NetworkSimulator(mesh, paper_config(algorithm.ports_required))
    outcome = EventDrivenExecutor(network).execute(
        algorithm.schedule((0, 0, 0)), 32
    )
    assert len(outcome.arrivals) == 63

    prof = network.env.profile()
    assert prof["dispatched"] > 0
    assert prof["heap_peak"] >= 1
    # The idle-network fast path claims header hops in batched windows.
    assert prof["worm_hops_batched"] > 0
    assert prof["worm_batched_ratio"] > 0.5
