"""Tests for the ASCII visualisations (`repro.analysis.visualize`)."""

import pytest

from repro import Mesh, broadcast
from repro.analysis.visualize import arrival_heatmap, receive_step_map
from repro.core import DeterministicBroadcast, RecursiveDoubling


def test_step_map_2d_shape_and_glyphs():
    mesh = Mesh((4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0))
    text = receive_step_map(schedule, mesh)
    lines = text.splitlines()
    assert len(lines) == 1 + 4  # header + ky rows
    grid = "".join(lines[1:])
    assert grid.count("S") == 1
    assert "." not in grid  # full coverage
    # The source sits at the south-west corner → last line, first cell.
    assert lines[-1].split()[0] == "S"


def test_step_map_digits_match_schedule():
    mesh = Mesh((4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0))
    receive = schedule.receive_step()
    text = receive_step_map(schedule, mesh)
    rows = text.splitlines()[1:]
    for y in range(4):
        cells = rows[3 - y].split()
        for x in range(4):
            if (x, y) == (0, 0):
                assert cells[x] == "S"
            else:
                assert cells[x] == str(receive[(x, y)])


def test_step_map_3d_selects_plane():
    mesh = Mesh((4, 4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((1, 1, 2))
    text = receive_step_map(schedule, mesh)
    assert "plane z=2" in text
    other = receive_step_map(schedule, mesh, plane=0)
    assert "plane z=0" in other
    assert "S" not in other.splitlines()[1]  # source not on plane 0


def test_step_map_plane_validation():
    mesh = Mesh((4, 4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0, 0))
    with pytest.raises(ValueError):
        receive_step_map(schedule, mesh, plane=9)


def test_step_map_rejects_high_dims():
    mesh = Mesh((2, 2, 2, 2))
    schedule = RecursiveDoubling(mesh).schedule((0, 0, 0, 0))
    with pytest.raises(ValueError):
        receive_step_map(schedule, mesh)


def test_heatmap_levels_normalised():
    mesh = Mesh((4, 4))
    outcome = broadcast("DB", mesh, (0, 0), 32)
    text = arrival_heatmap(outcome, mesh)
    body = "".join(text.splitlines()[1:])
    assert "S" in body
    assert "9" in body  # someone is last
    assert "0" in body or "1" in body  # someone is early


def test_heatmap_requires_arrivals():
    from repro.core import BroadcastOutcome

    empty = BroadcastOutcome("X", (0, 0), 0.0, {}, 0)
    with pytest.raises(ValueError):
        arrival_heatmap(empty, Mesh((4, 4)))


def test_heatmap_3d_default_plane_is_source():
    mesh = Mesh((4, 4, 4))
    outcome = broadcast("AB", mesh, (2, 2, 1), 32)
    assert "plane z=1" in arrival_heatmap(outcome, mesh)


def test_doctest_example_renders():
    mesh = Mesh((4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0))
    text = receive_step_map(schedule, mesh)
    assert text.splitlines()[-1] == "S 2 2 2"
