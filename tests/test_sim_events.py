"""Unit tests for events, conditions and processes (`repro.sim.event`)."""

import pytest

from repro.sim import Environment, Event, Interrupt


# ---------------------------------------------------------------- events
def test_event_lifecycle():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == 42


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.event().value


def test_double_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_unhandled_event_raises_at_run():
    env = Environment()
    env.event().fail(RuntimeError("lost"))
    with pytest.raises(RuntimeError, match="lost"):
        env.run()


def test_defused_failed_event_does_not_raise():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("lost"))
    ev.defuse()
    env.run()  # no exception


def test_callback_after_processed_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_negative_timeout_raises():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    t = env.timeout(1.0, value="payload")
    env.run()
    assert t.value == "payload"


# ------------------------------------------------------------- conditions
def test_all_of_waits_for_all():
    env = Environment()
    t1, t2 = env.timeout(1.0, "a"), env.timeout(2.0, "b")
    done = []

    def proc(env):
        result = yield env.all_of([t1, t2])
        done.append((env.now, sorted(result.values())))

    env.process(proc(env))
    env.run()
    assert done == [(2.0, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    t1, t2 = env.timeout(5.0, "slow"), env.timeout(1.0, "fast")
    done = []

    def proc(env):
        result = yield env.any_of([t1, t2])
        done.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert done == [(1.0, ["fast"])]


def test_and_or_operators():
    env = Environment()
    t1, t2 = env.timeout(1.0), env.timeout(2.0)
    both = t1 & t2
    either = env.timeout(1.0) | env.timeout(3.0)
    env.run()
    assert both.processed
    assert either.processed


def test_empty_all_of_triggers_immediately():
    env = Environment()
    cond = env.all_of([])
    assert cond.triggered


def test_condition_mixed_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.timeout(1), env2.timeout(1)])


# -------------------------------------------------------------- processes
def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_yielding_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_is_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt(cause="preempt")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [("interrupted", 2.0, "preempt")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [3.0]


def test_join_already_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return "done"

    def late_joiner(env, target):
        yield env.timeout(5.0)
        value = yield target
        return value

    p = env.process(quick(env))
    j = env.process(late_joiner(env, p))
    env.run()
    assert j.value == "done"
