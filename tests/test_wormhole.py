"""Unit tests for wormhole transmission mechanics (`repro.network.wormhole`)."""

import pytest

from repro.network import (
    ChannelTiming,
    FaultModel,
    FaultyChannelError,
    Mesh,
    Message,
    MessageKind,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path


def make_net(dims=(4, 4), ports=2, ts=1.5, beta=0.003):
    return NetworkSimulator(
        Mesh(dims),
        NetworkConfig(startup_latency=ts, flit_time=beta, ports_per_node=ports),
    )


def unicast(src, dst, L=32):
    return Message(source=src, destinations={dst}, length_flits=L)


# ----------------------------------------------------------- basic timing
def test_uncontended_latency_formula():
    """latency = Ts + hops*beta + (L-1)*beta for a lone worm."""
    net = make_net()
    dor = DimensionOrdered(net.topology)
    msg = unicast((0, 0), (3, 3), L=100)
    tx = PathTransmission(net, msg, path=Path(dor.path((0, 0), (3, 3))))
    proc = tx.start()
    result = net.run(until=proc)
    expected = 1.5 + 6 * 0.003 + 99 * 0.003
    assert result.network_latency == pytest.approx(expected)
    assert result.injected_at == pytest.approx(1.5)


def test_single_flit_message_has_no_body_time():
    net = make_net(ts=0.0)
    msg = unicast((0, 0), (1, 0), L=1)
    tx = PathTransmission(net, msg, path=Path([(0, 0), (1, 0)]))
    proc = tx.start()
    result = net.run(until=proc)
    assert result.network_latency == pytest.approx(0.003)


def test_multidestination_arrival_ordering():
    """CPR deliveries arrive in path order, one hop time apart."""
    net = make_net(ts=0.0)
    nodes = [(0, 0), (1, 0), (2, 0), (3, 0)]
    msg = Message(source=(0, 0), destinations=set(nodes[1:]), length_flits=10)
    tx = PathTransmission(net, msg, path=Path(nodes, deliveries=nodes[1:]))
    proc = tx.start()
    result = net.run(until=proc)
    times = [result.arrivals[n] for n in nodes[1:]]
    assert times == sorted(times)
    assert times[1] - times[0] == pytest.approx(0.003)
    assert result.arrivals[(1, 0)] == pytest.approx(0.003 + 9 * 0.003)


def test_transmission_records_deliveries_on_nodes():
    net = make_net()
    msg = unicast((0, 0), (2, 0))
    tx = PathTransmission(net, msg, path=Path([(0, 0), (1, 0), (2, 0)]))
    proc = tx.start()
    net.run(until=proc)
    assert net.node((2, 0)).has_received(msg.uid)
    assert not net.node((1, 0)).has_received(msg.uid)
    assert net.node((0, 0)).sent_count == 1


# ----------------------------------------------------------- contention
def test_channel_contention_serialises_worms():
    """Two worms over the same channel: the second waits for the first."""
    net = make_net(ts=0.0, ports=2)
    path = Path([(0, 0), (1, 0)])
    m1 = unicast((0, 0), (1, 0), L=100)
    m2 = unicast((0, 0), (1, 0), L=100)
    p1 = PathTransmission(net, m1, path=path).start()
    p2 = PathTransmission(net, m2, path=path).start()
    net.run()
    r1, r2 = p1.value, p2.value
    lone = 0.003 + 99 * 0.003
    assert r1.completed_at == pytest.approx(lone)
    # Worm 2's header waits for worm 1 to release the channel.
    assert r2.completed_at == pytest.approx(2 * lone)


def test_wormhole_blocking_holds_upstream_channels():
    """A worm blocked mid-path keeps its acquired channels busy."""
    net = make_net(dims=(5, 1), ts=0.0, ports=2)
    blocker = unicast((2, 0), (3, 0), L=1000)
    pb = PathTransmission(net, blocker, path=Path([(2, 0), (3, 0)])).start()
    # Long worm from 0 wants to cross 2->3; it will block holding 0->1, 1->2.
    crosser = unicast((0, 0), (4, 0), L=1000)
    path = Path([(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)])
    pc = PathTransmission(net, crosser, path=path).start()
    net.run(until=1.0)  # mid-flight: blocker still transmitting
    assert net.channel((0, 0), (1, 0)).busy
    assert net.channel((1, 0), (2, 0)).busy
    net.run()
    assert pc.value.completed_at > pb.value.completed_at


def test_port_budget_serialises_injections():
    """A 1-port node sends two worms back to back, not concurrently."""
    net = make_net(ts=1.0, ports=1)
    m1 = unicast((0, 0), (1, 0), L=100)
    m2 = unicast((0, 0), (0, 1), L=100)
    p1 = PathTransmission(net, m1, path=Path([(0, 0), (1, 0)])).start()
    p2 = PathTransmission(net, m2, path=Path([(0, 0), (0, 1)])).start()
    net.run()
    lone = 1.0 + 0.003 + 99 * 0.003
    assert p1.value.completed_at == pytest.approx(lone)
    assert p2.value.completed_at == pytest.approx(2 * lone)


def test_two_ports_allow_concurrent_injection():
    net = make_net(ts=1.0, ports=2)
    m1 = unicast((0, 0), (1, 0), L=100)
    m2 = unicast((0, 0), (0, 1), L=100)
    p1 = PathTransmission(net, m1, path=Path([(0, 0), (1, 0)])).start()
    p2 = PathTransmission(net, m2, path=Path([(0, 0), (0, 1)])).start()
    net.run()
    lone = 1.0 + 0.003 + 99 * 0.003
    assert p1.value.completed_at == pytest.approx(lone)
    assert p2.value.completed_at == pytest.approx(lone)


# ----------------------------------------------------------- adaptive mode
def test_adaptive_waypoints_route_around_load():
    """With west-first adaptivity the worm avoids the congested channel."""
    from repro.routing import WestFirst

    net = make_net(dims=(3, 3), ts=0.0, ports=3)
    wf = WestFirst(net.topology)
    # Occupy the east channel out of (0,0) with a long worm.
    blocker = unicast((0, 0), (1, 0), L=5000)
    PathTransmission(net, blocker, path=Path([(0, 0), (1, 0)])).start()
    net.run(until=0.001)
    probe = unicast((0, 0), (1, 1), L=2)
    tx = PathTransmission(
        net, probe, waypoints=[(0, 0), (1, 1)], routing=wf, adaptive=True
    )
    proc = tx.start()
    net.run(until=proc)
    # Probe must have gone north first: (0,0)->(0,1)->(1,1).
    assert proc.value.visited == ((0, 0), (0, 1), (1, 1))


def test_waypoint_transmission_requires_routing():
    net = make_net()
    msg = unicast((0, 0), (1, 1))
    with pytest.raises(ValueError):
        PathTransmission(net, msg, waypoints=[(0, 0), (1, 1)])


def test_exactly_one_route_spec():
    net = make_net()
    dor = DimensionOrdered(net.topology)
    msg = unicast((0, 0), (1, 0))
    with pytest.raises(ValueError):
        PathTransmission(net, msg)
    with pytest.raises(ValueError):
        PathTransmission(
            net,
            msg,
            path=Path([(0, 0), (1, 0)]),
            waypoints=[(0, 0), (1, 0)],
            routing=dor,
        )


def test_path_must_contain_destinations():
    net = make_net()
    msg = unicast((0, 0), (3, 3))
    with pytest.raises(ValueError):
        PathTransmission(net, msg, path=Path([(0, 0), (1, 0)]))


# ----------------------------------------------------------- faults
def test_faulty_channel_aborts_deterministic_worm():
    net = make_net(ts=0.0)
    faults = FaultModel(net)
    faults.fail_channel((1, 0), (2, 0))
    msg = unicast((0, 0), (3, 0))
    tx = PathTransmission(
        net, msg, path=Path([(0, 0), (1, 0), (2, 0), (3, 0)])
    )
    proc = tx.start()
    with pytest.raises(FaultyChannelError):
        net.run()
    assert not proc.ok


def test_fault_release_frees_channels():
    net = make_net(ts=0.0)
    FaultModel(net).fail_channel((1, 0), (2, 0))
    msg = unicast((0, 0), (3, 0))
    tx = PathTransmission(net, msg, path=Path([(0, 0), (1, 0), (2, 0), (3, 0)]))
    tx.start()
    try:
        net.run()
    except FaultyChannelError:
        pass
    assert not net.channel((0, 0), (1, 0)).busy
    assert net.node((0, 0)).ports.count == 0


def test_fault_model_symmetric_and_repair():
    net = make_net()
    fm = FaultModel(net)
    fm.fail_channel((0, 0), (1, 0))
    assert net.channel((1, 0), (0, 0)).faulty
    fm.repair_channel((0, 0), (1, 0))
    assert not net.channel((0, 0), (1, 0)).faulty
    assert not fm.faulted_channels


def test_fail_random_links_reproducible():
    net1, net2 = make_net(), make_net()
    f1 = FaultModel(net1).fail_random_links(3)
    f2 = FaultModel(net2).fail_random_links(3)
    assert f1 == f2
    assert len(FaultModel(net1).faulted_channels) == 0  # fresh model, fresh set


# ----------------------------------------------------------- timing helpers
def test_channel_timing_validation():
    with pytest.raises(ValueError):
        ChannelTiming(flit_time=0.0)
    with pytest.raises(ValueError):
        ChannelTiming(router_delay=-1.0)
    t = ChannelTiming(flit_time=0.01, router_delay=0.002)
    assert t.header_hop_time == pytest.approx(0.012)
    assert t.body_time(11) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        t.body_time(0)


def test_message_validation():
    with pytest.raises(ValueError):
        Message(source=(0, 0), destinations=set(), length_flits=8)
    with pytest.raises(ValueError):
        Message(source=(0, 0), destinations={(0, 0)}, length_flits=8)
    with pytest.raises(ValueError):
        Message(source=(0, 0), destinations={(1, 0)}, length_flits=0)
    m = Message(source=(0, 0), destinations={(1, 0), (2, 0)}, length_flits=8)
    assert m.is_multidestination
    with pytest.raises(ValueError):
        m.single_destination()
    u = Message(source=(0, 0), destinations={(1, 0)}, length_flits=8)
    assert u.single_destination() == (1, 0)
    assert u.kind is MessageKind.UNICAST
