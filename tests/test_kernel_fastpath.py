"""Equivalence tests for the kernel fast paths.

The fast-path kernel (``env.hold``, pooled timeouts, immediate resource
grants, hop-batched wormhole walks) must be *event-for-event identical*
to the straightforward reference kernel (``Environment(fastpath=False)``
and per-hop walks).  These tests prove it:

* a property test drives randomly generated process programs — holds,
  timeouts, contended/uncontended resource mixes, mid-request spawns,
  conditions — through both kernels and compares full execution traces;
* wormhole determinism tests compare hop-batched against per-hop walks
  (and against the reference kernel) on contended meshes, including
  adaptive routing;
* unit tests cover the pooling, hold and claim primitives directly.

See ``docs/performance.md`` for the invariants that make this exact.
"""

import random

import pytest

from repro.network import (
    Mesh,
    Message,
    NetworkConfig,
    NetworkSimulator,
    PathTransmission,
)
from repro.routing import DimensionOrdered, Path, WestFirst
from repro.sim import Environment, Interrupt, PriorityResource, Resource, Timeout

# ------------------------------------------------------------ golden traces

OPS = ("hold", "timeout", "acquire", "req_spawn", "spawn", "allof", "anyof")
#: Small delay menu with repeats and zero: plenty of same-instant ties.
DELAYS = (0.0, 0.5, 0.5, 1.0, 1.0, 1.5, 2.0)


def _make_program(rng: random.Random, depth: int = 0) -> list:
    """A random straight-line program for :func:`_interpret`."""
    program = []
    for _ in range(rng.randint(2, 6)):
        op = rng.choice(OPS)
        if op in ("hold", "timeout"):
            program.append((op, rng.choice(DELAYS)))
        elif op == "acquire":
            program.append((op, rng.randrange(3), rng.choice(DELAYS)))
        elif op == "req_spawn" and depth < 2:
            # The tricky interleaving: request a free resource, spawn a
            # process at the same instant, only then yield the request.
            program.append(
                (op, rng.randrange(3), _make_program(rng, depth + 1), rng.choice(DELAYS))
            )
        elif op == "spawn" and depth < 2:
            program.append((op, _make_program(rng, depth + 1)))
        elif op in ("allof", "anyof"):
            program.append((op, [rng.choice(DELAYS) for _ in range(rng.randint(1, 3))]))
    return program


def _interpret(env, program, resources, trace, label):
    for op in program:
        kind = op[0]
        if kind == "hold":
            yield env.hold(op[1])
            trace.append(("hold", label, env.now))
        elif kind == "timeout":
            yield env.timeout(op[1])
            trace.append(("timeout", label, env.now))
        elif kind == "acquire":
            res = resources[op[1]]
            with res.request() as req:
                yield req
                trace.append(
                    ("acq", label, op[1], env.now, res.count, res.queue_length)
                )
                yield env.hold(op[2])
            trace.append(("rel", label, op[1], env.now))
        elif kind == "req_spawn":
            res = resources[op[1]]
            req = res.request()
            env.process(_interpret(env, op[2], resources, trace, label + "s"))
            yield req
            trace.append(("reqspawn", label, op[1], env.now, res.count))
            yield env.hold(op[3])
            res.release(req)
        elif kind == "spawn":
            env.process(_interpret(env, op[1], resources, trace, label + "c"))
            trace.append(("spawn", label, env.now))
        elif kind == "allof":
            result = yield env.all_of([env.timeout(d, d) for d in op[1]])
            trace.append(("allof", label, env.now, sorted(result.values())))
        elif kind == "anyof":
            result = yield env.any_of([env.timeout(d, d) for d in op[1]])
            trace.append(("anyof", label, env.now, sorted(result.values())))
    trace.append(("done", label, env.now))


def _run_scenario(seed: int, fastpath: bool) -> list:
    rng = random.Random(seed)
    programs = [_make_program(rng) for _ in range(5)]
    env = Environment(fastpath=fastpath)
    resources = [
        Resource(env, capacity=1),
        Resource(env, capacity=1),
        Resource(env, capacity=2),
    ]
    trace = []
    for i, program in enumerate(programs):
        env.process(_interpret(env, program, resources, trace, f"p{i}"))
    env.run()
    trace.append(("final", env.now, [r.utilisation() for r in resources]))
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_fastpath_traces_match_reference_kernel(seed):
    """Random contended/uncontended mixes: identical event orderings."""
    assert _run_scenario(seed, fastpath=True) == _run_scenario(seed, fastpath=False)


# ------------------------------------------------- wormhole determinism


def _mesh_transmissions(batch_hops: bool, fastpath: bool = True):
    """Overlapping unicasts + a CPR worm + adaptive worms on a 4x4 mesh."""
    mesh = Mesh((4, 4))
    dor = DimensionOrdered(mesh)
    wf = WestFirst(mesh)
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    net.env._fastpath = fastpath

    results = []

    def launch(msg, **kwargs):
        t = PathTransmission(net, msg, batch_hops=batch_hops, **kwargs)
        results.append(t)
        return t.start()

    def driver(env):
        # Same-instant burst sharing channels (wormhole blocking).
        for i, (src, dst) in enumerate(
            [((0, 0), (3, 3)), ((0, 1), (3, 2)), ((0, 0), (0, 3)), ((2, 0), (2, 3))]
        ):
            launch(
                Message(source=src, destinations={dst}, length_flits=16),
                path=Path(dor.path(src, dst), deliveries=[dst]),
            )
        yield env.hold(0.004)
        # A multi-destination coded-path worm mid-flight of the burst.
        nodes = dor.path((1, 0), (1, 3))
        launch(
            Message(
                source=(1, 0), destinations={(1, 1), (1, 3)}, length_flits=16
            ),
            path=Path(nodes, deliveries=[(1, 1), (1, 3)]),
        )
        # Adaptive waypoint worms sampling channel_load at each branch.
        for src, dst in [((0, 0), (2, 2)), ((0, 3), (3, 0))]:
            launch(
                Message(source=src, destinations={dst}, length_flits=16),
                waypoints=[src, dst],
                routing=wf,
                adaptive=True,
            )

    net.env.process(driver(net.env))
    net.run()
    summary = [
        (t.result.queued_at, t.result.injected_at, t.result.completed_at,
         t.result.visited, sorted(t.result.arrivals.items()))
        for t in results
    ]
    utilisations = sorted(
        ((u, v), round(ch.utilisation(), 12), ch.resource.grants)
        for (u, v), ch in net.channels.items()
    )
    return summary, utilisations, net.now


def _adaptive_race(batch_hops: bool):
    """An adaptive decision point racing a channel release mid-window.

    Regression scenario: a blocker holds channel (1,0)->(2,0) and
    releases it *between* the batched walk's start time and the
    header's per-hop decision time at (1,0).  The batched walk must
    defer the routing decision until the clock reaches the decision
    point, or it samples stale channel loads and takes a different
    route than the per-hop walk.
    """
    mesh = Mesh((3, 3))
    wf = WestFirst(mesh)
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=1))
    env = net.env
    blocked = net.channel((1, 0), (2, 0)).resource

    def blocker(env):
        grant = blocked.request()
        yield grant
        # Release inside the worm's (1,0) hop window: after injection
        # at t=1.5, before the decision at t=1.503.
        yield env.hold(1.5015 - env.now)
        blocked.release(grant)

    env.process(blocker(env))
    msg = Message(source=(0, 0), destinations={(2, 2)}, length_flits=8)
    t = PathTransmission(
        net, msg, waypoints=[(0, 0), (2, 2)], routing=wf, adaptive=True,
        batch_hops=batch_hops,
    )
    t.start()
    net.run()
    return t.result.visited, t.result.completed_at


def test_adaptive_decision_defers_to_per_hop_time():
    assert _adaptive_race(batch_hops=True) == _adaptive_race(batch_hops=False)


def test_hop_batched_walk_matches_per_hop_walk():
    assert _mesh_transmissions(batch_hops=True) == _mesh_transmissions(
        batch_hops=False
    )


def test_hop_batched_walk_matches_reference_kernel():
    assert _mesh_transmissions(batch_hops=True) == _mesh_transmissions(
        batch_hops=False, fastpath=False
    )


# ------------------------------------------------------------ primitives


def test_hold_advances_clock_like_timeout():
    env = Environment()

    def proc(env):
        yield env.hold(1.5)
        yield env.hold(0.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.5


def test_hold_negative_delay_raises():
    env = Environment()

    def proc(env):
        yield env.hold(-1.0)

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


def test_hold_outside_process_degrades_to_timeout():
    env = Environment()
    event = env.hold(2.0)
    assert isinstance(event, Timeout)
    env.run()
    assert env.now == 2.0


def test_hold_until_schedules_exact_absolute_time():
    env = Environment()

    def proc(env):
        yield env.hold(0.1)
        yield env.hold_until(7.25)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 7.25


def test_hold_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.hold_until(4.0)


def test_interrupt_during_hold_is_delivered_and_stale_entry_skipped():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.hold(100.0)
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))
        yield env.hold(1.0)
        log.append(("resumed", env.now))

    def attacker(env, target):
        yield env.hold(2.0)
        target.interrupt(cause="preempt")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [("interrupted", 2.0, "preempt"), ("resumed", 3.0)]
    assert env.now == 100.0  # the stale hold entry still drains the heap


def test_interrupted_rehold_to_same_deadline_keeps_reference_order():
    """A stale hold entry must not impersonate a re-hold to the same time.

    Regression test: P holds to t=10, is interrupted at t=3, and holds
    again to exactly t=10.  The stale marker entry (older insertion
    order) pops first at t=10; resuming P through it would reorder P
    against a competitor whose event also fires at t=10.
    """

    def scenario(fastpath):
        env = Environment(fastpath=fastpath)
        order = []

        def sleeper(env):
            try:
                yield env.hold(10.0)
            except Interrupt:
                yield env.hold(7.0)  # re-hold: deadline is 10.0 again
            order.append("sleeper-resumed")

        def other(env):
            yield env.timeout(8.0)  # spawned at t=2: fires at t=10
            order.append("other-fired")

        def attacker(env, target):
            yield env.timeout(2.0)
            env.process(other(env))  # timeout at t=10, ticket between holds
            yield env.timeout(1.0)
            target.interrupt()

        victim = env.process(sleeper(env))
        env.process(attacker(env, victim))
        env.run()
        return order

    assert scenario(True) == scenario(False) == ["other-fired", "sleeper-resumed"]


def test_unyielded_hold_is_an_error():
    env = Environment()

    def bad(env):
        env.hold(1.0)
        yield env.timeout(2.0)

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="hold"):
        env.run()


def test_timeout_pool_recycles_unreferenced_timeouts():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env._timeout_pool  # drained timeouts were recycled
    recycled = env._timeout_pool[-1]
    fresh = env.timeout(3.0, value="again")
    assert fresh is recycled
    env.run()
    assert fresh.value == "again"
    assert env.now == 5.0


def test_timeout_pool_skips_referenced_timeouts():
    env = Environment()
    kept = env.timeout(1.0, value="keep")
    env.run()
    assert kept.value == "keep"
    assert all(t is not kept for t in env._timeout_pool)


def test_reference_kernel_never_pools():
    env = Environment(fastpath=False)
    env.timeout(1.0)
    env.run()
    assert env._timeout_pool == []


def test_fast_grant_is_visible_before_yield():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    assert req.triggered
    assert res.count == 1 and res.grants == 1


def test_try_acquire_and_claim():
    env = Environment()
    res = Resource(env, capacity=1)
    grant = res.try_acquire()
    assert grant is not None and grant.processed
    assert res.try_acquire() is None
    assert res.claim(object()) is False
    res.release(grant)
    token = object()
    assert res.claim(token, at=0.0) is True
    assert res.count == 1
    res.release(token)
    assert res.count == 0


def test_try_acquire_respects_priority_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    holder = res.request(priority=0)
    waiter = res.request(priority=1)
    assert res.try_acquire() is None  # a waiter is queued
    assert res.claim(object()) is False
    res.release(waiter)
    res.release(holder)
    assert res.try_acquire() is not None


def test_condition_over_fast_granted_requests():
    env = Environment()
    res = Resource(env, capacity=2)

    def proc(env, res):
        first, second = res.request(), res.request()
        result = yield env.all_of([first, second])
        return len(result)

    p = env.process(proc(env, res))
    env.run()
    assert p.value == 2
