"""Tests for the analytic and event-driven broadcast executors.

The central invariant: on a contention-free schedule the two executors
agree *exactly*; with contention the event-driven executor can only be
slower.
"""

import math

import pytest

from repro.core import (
    AdaptiveBroadcast,
    BroadcastOutcome,
    DeterministicBroadcast,
    EventDrivenExecutor,
    ExtendedDominatingNodes,
    RecursiveDoubling,
    UnitStepExecutor,
)
from repro.network import Mesh, NetworkConfig, NetworkSimulator

ALL = [RecursiveDoubling, ExtendedDominatingNodes, DeterministicBroadcast, AdaptiveBroadcast]


def run_both(cls, dims, source, L=100, ports=None):
    mesh = Mesh(dims)
    algo = cls(mesh)
    ports = ports or algo.ports_required
    config = NetworkConfig(ports_per_node=ports)
    schedule = algo.schedule(source)
    analytic = UnitStepExecutor(mesh, config).execute(schedule, length_flits=L)
    net = NetworkSimulator(mesh, config)
    executor = EventDrivenExecutor(
        net, adaptive_routing=AdaptiveBroadcast.make_routing(mesh)
    )
    event = executor.execute(schedule, length_flits=L)
    return analytic, event


# ------------------------------------------------------------ delivery set
@pytest.mark.parametrize("cls", ALL)
def test_both_executors_deliver_everywhere(cls):
    analytic, event = run_both(cls, (4, 4, 4), (1, 2, 3))
    assert analytic.delivered_count == 63
    assert event.delivered_count == 63
    assert set(analytic.arrivals) == set(event.arrivals)


# ------------------------------------------------------------ agreement
@pytest.mark.parametrize("cls", [DeterministicBroadcast, AdaptiveBroadcast, RecursiveDoubling])
def test_executors_agree_on_contention_free_schedules(cls):
    """DB/AB/RD single broadcasts are contention-free by construction."""
    analytic, event = run_both(cls, (6, 6, 6), (2, 3, 4))
    for node, t in analytic.arrivals.items():
        assert event.arrivals[node] == pytest.approx(t), node


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("dims", [(4, 4, 4), (8, 8, 8), (5, 6, 3)])
def test_event_never_beats_analytic(cls, dims):
    source = tuple(d // 2 for d in dims)
    analytic, event = run_both(cls, dims, source, L=32)
    for node, t in analytic.arrivals.items():
        assert event.arrivals[node] >= t - 1e-9, node


def test_analytic_latency_closed_form_db_corner():
    """Hand-computed DB timing from a corner source on 4x4x4."""
    mesh = Mesh((4, 4, 4))
    config = NetworkConfig(
        startup_latency=1.5, flit_time=0.003, ports_per_node=2
    )
    schedule = DeterministicBroadcast(mesh).schedule((0, 0, 0))
    outcome = UnitStepExecutor(mesh, config).execute(schedule, length_flits=100)
    body = 99 * 0.003
    # Step 1: source (corner A) -> B over 9 hops.
    t_b = 1.5 + 9 * 0.003 + body
    assert outcome.arrivals[(3, 3, 3)] == pytest.approx(t_b)
    # Step 2: A's pillar reaches (0,0,1) after 1 hop.
    assert outcome.arrivals[(0, 0, 1)] == pytest.approx(1.5 + 1 * 0.003 + body)


def test_outcome_statistics():
    outcome = BroadcastOutcome(
        algorithm="X",
        source=(0, 0),
        start_time=10.0,
        arrivals={(1, 0): 12.0, (2, 0): 14.0, (3, 0): 16.0},
        total_sends=3,
    )
    assert outcome.network_latency == pytest.approx(6.0)
    assert outcome.mean_latency == pytest.approx(4.0)
    expected_cv = outcome.latency_std / 4.0
    assert outcome.coefficient_of_variation == pytest.approx(expected_cv)
    assert outcome.delivered_count == 3


def test_outcome_empty_raises():
    outcome = BroadcastOutcome("X", (0, 0), 0.0, {}, 0)
    with pytest.raises(ValueError):
        outcome.network_latency


def test_outcome_zero_mean_cv():
    outcome = BroadcastOutcome("X", (0, 0), 0.0, {(1, 0): 0.0}, 1)
    assert outcome.coefficient_of_variation == 0.0


# ------------------------------------------------------------ orderings
def test_latency_ordering_matches_paper_fig1():
    """Single-source broadcast: RD slowest, then EDN, then DB, then AB."""
    results = {}
    for cls in ALL:
        _, event = run_both(cls, (8, 8, 8), (3, 4, 5))
        results[cls.name] = event.network_latency
    assert results["RD"] > results["EDN"] > results["DB"] > results["AB"]


def test_cv_ordering_matches_paper_fig2():
    """Node-level variation (source-averaged): AB lowest; DB/AB beat EDN.

    The paper's Tables 1-2 show positive DB/AB improvement over EDN and
    AB's CV below DB's; those orderings are structural and must hold.
    (The paper's RD-vs-EDN ordering is not structurally recoverable —
    see EXPERIMENTS.md.)
    """
    import numpy as np

    mesh_dims = (8, 8, 8)
    rng = np.random.default_rng(7)
    sources = [tuple(int(rng.integers(0, d)) for d in mesh_dims) for _ in range(8)]
    results = {}
    for cls in ALL:
        cvs = []
        for source in sources:
            _, event = run_both(cls, mesh_dims, source)
            cvs.append(event.coefficient_of_variation)
        results[cls.name] = float(np.mean(cvs))
    assert results["AB"] < results["DB"]
    assert results["AB"] < results["EDN"]
    assert results["AB"] < results["RD"]
    assert results["DB"] < results["EDN"]


def test_db_ab_latency_flat_rd_grows():
    """Paper Fig. 1: DB/AB scale; RD latency grows with network size."""
    lat = {name: [] for name in ("RD", "DB", "AB")}
    for dims in [(4, 4, 4), (8, 8, 8)]:
        for cls in (RecursiveDoubling, DeterministicBroadcast, AdaptiveBroadcast):
            _, event = run_both(cls, dims, (0, 0, 0))
            lat[cls.name].append(event.network_latency)
    rd_growth = lat["RD"][1] / lat["RD"][0]
    db_growth = lat["DB"][1] / lat["DB"][0]
    ab_growth = lat["AB"][1] / lat["AB"][0]
    assert rd_growth > db_growth
    assert rd_growth > ab_growth


# ------------------------------------------------------------ misc modes
def test_event_executor_requires_routing_for_adaptive():
    mesh = Mesh((4, 4, 4))
    schedule = AdaptiveBroadcast(mesh).schedule((1, 1, 1))
    net = NetworkSimulator(mesh, NetworkConfig(ports_per_node=2))
    executor = EventDrivenExecutor(net)  # no adaptive routing
    with pytest.raises(ValueError):
        executor.execute(schedule, length_flits=16)


def test_analytic_rejects_causality_violation():
    from repro.core import BroadcastSchedule, BroadcastStep, PathSend
    from repro.routing import Path

    bad = BroadcastSchedule(
        algorithm="bad",
        source=(0, 0),
        steps=[
            BroadcastStep(
                index=1,
                sends=[
                    PathSend(
                        source=(3, 3),  # never received anything
                        deliveries=frozenset({(2, 3)}),
                        path=Path([(3, 3), (2, 3)]),
                    )
                ],
            )
        ],
    )
    with pytest.raises(ValueError):
        UnitStepExecutor(Mesh((4, 4))).execute(bad, length_flits=8)


def test_port_serialisation_in_analytic_executor():
    """With 1 port the analytic executor serialises same-node sends."""
    mesh = Mesh((8, 8, 8))
    schedule = ExtendedDominatingNodes(mesh).schedule((0, 0, 0))
    one_port = UnitStepExecutor(
        mesh, NetworkConfig(ports_per_node=1)
    ).execute(schedule, length_flits=100)
    three_port = UnitStepExecutor(
        mesh, NetworkConfig(ports_per_node=3)
    ).execute(schedule, length_flits=100)
    assert one_port.network_latency > three_port.network_latency


def test_start_time_offsets_arrivals():
    mesh = Mesh((4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0))
    a = UnitStepExecutor(mesh).execute(schedule, length_flits=16, start_time=0.0)
    b = UnitStepExecutor(mesh).execute(schedule, length_flits=16, start_time=100.0)
    assert b.network_latency == pytest.approx(a.network_latency)
    assert min(b.arrivals.values()) >= 100.0


def test_cv_is_dimensionless_under_flit_scaling():
    """CV should not change when all times scale together."""
    mesh = Mesh((4, 4, 4))
    schedule = DeterministicBroadcast(mesh).schedule((0, 0, 0))
    small = UnitStepExecutor(
        mesh, NetworkConfig(startup_latency=1.5, flit_time=0.003, ports_per_node=2)
    ).execute(schedule, length_flits=100)
    scaled = UnitStepExecutor(
        mesh, NetworkConfig(startup_latency=15.0, flit_time=0.03, ports_per_node=2)
    ).execute(schedule, length_flits=100)
    assert scaled.coefficient_of_variation == pytest.approx(
        small.coefficient_of_variation
    )
    assert not math.isnan(small.coefficient_of_variation)
